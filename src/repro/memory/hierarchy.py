"""The validation-platform memory hierarchy of Section IV.

The paper's simulated system couples each core with an L1 instruction
cache, an L1 data cache and a *unified* L2.  This module wires the cache
levels together over :class:`MainMemory` and exposes the interface the
timing CPU models consume: every access returns both the value and the
modelled latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import Cache, CacheConfig
from .mainmem import MainMemory


@dataclass
class HierarchyConfig:
    """Cache geometry for the whole hierarchy (paper Section IV defaults)."""

    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        "l1i", size_bytes=32 * 1024, assoc=2, line_bytes=64, hit_latency=1))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        "l1d", size_bytes=64 * 1024, assoc=2, line_bytes=64, hit_latency=1))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        "l2", size_bytes=2 * 1024 * 1024, assoc=8, line_bytes=64,
        hit_latency=10))
    memory_latency: int = 100


class MemoryHierarchy:
    """L1I + L1D over a unified L2 over DRAM."""

    def __init__(self, memory: MainMemory,
                 config: HierarchyConfig | None = None) -> None:
        self.memory = memory
        self.config = config or HierarchyConfig()
        self.l2 = Cache(self.config.l2,
                        memory_latency=self.config.memory_latency)
        self.l1i = Cache(self.config.l1i, next_level=self.l2)
        self.l1d = Cache(self.config.l1d, next_level=self.l2)

    # -- functional + timing access paths -------------------------------------

    def fetch(self, pc: int) -> tuple[int, int]:
        """Instruction fetch: returns (word, latency)."""
        word = self.memory.fetch(pc)
        return word, self.l1i.access(pc)

    def read(self, addr: int, size: int,
             pc: int | None = None) -> tuple[int, int]:
        value = self.memory.read(addr, size, pc=pc)
        return value, self.l1d.access(addr)

    def write(self, addr: int, size: int, value: int,
              pc: int | None = None) -> int:
        self.memory.write(addr, size, value, pc=pc)
        return self.l1d.access(addr, write=True)

    # -- bookkeeping -----------------------------------------------------------

    def stats(self) -> dict:
        return {
            "l1i": self.l1i.stats.as_dict(),
            "l1d": self.l1d.stats.as_dict(),
            "l2": self.l2.stats.as_dict(),
        }

    def snapshot(self) -> dict:
        return {"l1i": self.l1i.snapshot(), "l1d": self.l1d.snapshot(),
                "l2": self.l2.snapshot()}

    def restore(self, snap: dict) -> None:
        self.l1i.restore(snap["l1i"])
        self.l1d.restore(snap["l1d"])
        self.l2.restore(snap["l2"])
