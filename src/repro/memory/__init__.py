"""Classic memory system: sparse main memory + cache hierarchy."""

from .cache import Cache, CacheConfig, CacheStats
from .hierarchy import HierarchyConfig, MemoryHierarchy
from .mainmem import PAGE_SIZE, MainMemory, Region

__all__ = [
    "Cache", "CacheConfig", "CacheStats", "HierarchyConfig",
    "MainMemory", "MemoryHierarchy", "PAGE_SIZE", "Region",
]
