"""Sparse paged physical memory.

The simulated machine exposes a 64-bit address space backed by 4 KiB
pages that are allocated on demand, but only inside regions explicitly
mapped by the kernel (text, data, heap, stack).  Accesses outside mapped
regions raise :class:`UnmappedAccess` and misaligned accesses raise
:class:`MisalignedAccess` — exactly the architectural behaviour that turns
fault-corrupted addresses into the *Crashed* outcome class of the paper.
"""

from __future__ import annotations

import struct

from ..isa.traps import MisalignedAccess, UnmappedAccess

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

_STRUCT_BY_SIZE = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}


class Region:
    """A mapped address-space region with a human-readable name."""

    __slots__ = ("name", "start", "end", "writable")

    def __init__(self, name: str, start: int, end: int,
                 writable: bool = True) -> None:
        if end <= start:
            raise ValueError(f"empty region {name}")
        self.name = name
        self.start = start
        self.end = end
        self.writable = writable

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Region {self.name} 0x{self.start:x}-0x{self.end:x}"
                f"{'' if self.writable else ' ro'}>")


class MainMemory:
    """Byte-addressable sparse memory with region-based protection."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        self._regions: list[Region] = []

    # -- region management ----------------------------------------------------

    def map_region(self, name: str, start: int, size: int,
                   writable: bool = True) -> Region:
        """Map *size* bytes starting at *start*; overlaps are rejected."""
        region = Region(name, start, start + size, writable)
        for existing in self._regions:
            if region.start < existing.end and existing.start < region.end:
                raise ValueError(
                    f"region {name} overlaps {existing.name}")
        self._regions.append(region)
        return region

    def unmap_region(self, name: str) -> None:
        self._regions = [r for r in self._regions if r.name != name]

    def region_of(self, addr: int) -> Region | None:
        for region in self._regions:
            if region.contains(addr):
                return region
        return None

    def grow_region(self, name: str, new_end: int) -> None:
        """Extend a region (the ``brk`` syscall uses this for the heap)."""
        for region in self._regions:
            if region.name == name:
                if new_end < region.end:
                    raise ValueError("regions never shrink")
                region.end = new_end
                return
        raise KeyError(name)

    # -- raw access -----------------------------------------------------------

    def read(self, addr: int, size: int, pc: int | None = None) -> int:
        self._check(addr, size, write=False, pc=pc)
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        return struct.unpack_from(_STRUCT_BY_SIZE[size], page,
                                  addr & PAGE_MASK)[0]

    def write(self, addr: int, size: int, value: int,
              pc: int | None = None) -> None:
        self._check(addr, size, write=True, pc=pc)
        index = addr >> PAGE_SHIFT
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        struct.pack_into(_STRUCT_BY_SIZE[size], page, addr & PAGE_MASK,
                         value & ((1 << (8 * size)) - 1))

    def fetch(self, pc: int) -> int:
        """Instruction fetch: a 4-byte aligned read from an executable
        region.  PC corruption (a GemFI fault location) lands here."""
        return self.read(pc, 4, pc=pc)

    # -- bulk helpers (loader / checkpointing / workload I/O) -----------------

    def write_bytes(self, addr: int, blob: bytes) -> None:
        for offset, byte in enumerate(blob):
            self.write(addr + offset, 1, byte)

    def read_bytes(self, addr: int, length: int) -> bytes:
        return bytes(self.read(addr + i, 1) for i in range(length))

    def peek_bytes(self, addr: int, length: int) -> bytes:
        """Postmortem read that bypasses region protection (missing pages
        read as zeros).  Campaign classifiers use this to extract output
        arrays after the process has exited and been unmapped."""
        out = bytearray()
        while length > 0:
            page = self._pages.get(addr >> PAGE_SHIFT)
            offset = addr & PAGE_MASK
            chunk = min(length, PAGE_SIZE - offset)
            if page is None:
                out += bytes(chunk)
            else:
                out += page[offset:offset + chunk]
            addr += chunk
            length -= chunk
        return bytes(out)

    # -- internals ------------------------------------------------------------

    def _check(self, addr: int, size: int, write: bool,
               pc: int | None) -> None:
        if size not in _STRUCT_BY_SIZE:
            raise ValueError(f"unsupported access size {size}")
        if addr % size:
            raise MisalignedAccess(addr, size, pc=pc)
        if addr < 0 or addr >= 1 << 64:
            raise UnmappedAccess(addr & ((1 << 64) - 1), pc=pc)
        region = self.region_of(addr)
        if region is None:
            raise UnmappedAccess(addr, pc=pc)
        if write and not region.writable:
            raise UnmappedAccess(addr, pc=pc)

    # -- checkpoint support ----------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "pages": {idx: bytes(page) for idx, page in self._pages.items()},
            "regions": [(r.name, r.start, r.end, r.writable)
                        for r in self._regions],
        }

    def restore(self, snap: dict) -> None:
        self._pages = {idx: bytearray(page)
                       for idx, page in snap["pages"].items()}
        self._regions = [
            Region(name, start, end, writable)
            for name, start, end, writable in snap["regions"]
        ]
