"""Set-associative cache model (gem5 "classic" memory system analogue).

Caches here are *tag-only* timing models: they track which lines are
resident (for hit/miss accounting and latency) while data always lives in
:class:`~repro.memory.mainmem.MainMemory`.  This is the standard
functional-first simulation split and keeps coherence trivial for the
single-core configurations the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int = 32 * 1024
    assoc: int = 2
    line_bytes: int = 64
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError(
                f"{self.name}: size must be a multiple of assoc*line")
        self.num_sets = self.size_bytes // (self.assoc * self.line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{self.name}: set count must be a power of 2")


@dataclass
class CacheStats:
    """Per-cache statistics, included in the gem5-style stats dump."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits, "misses": self.misses,
            "evictions": self.evictions, "writebacks": self.writebacks,
            "miss_rate": round(self.miss_rate, 6),
        }


class _Line:
    __slots__ = ("tag", "dirty", "lru")

    def __init__(self, tag: int, lru: int) -> None:
        self.tag = tag
        self.dirty = False
        self.lru = lru


class Cache:
    """One level of a write-back, write-allocate, LRU cache."""

    def __init__(self, config: CacheConfig,
                 next_level: "Cache | None" = None,
                 memory_latency: int = 100) -> None:
        self.config = config
        self.next_level = next_level
        self.memory_latency = memory_latency
        self.stats = CacheStats()
        self._sets: list[dict[int, _Line]] = [
            {} for _ in range(config.num_sets)
        ]
        self._clock = 0

    def access(self, addr: int, write: bool = False) -> int:
        """Model one access; returns the latency in ticks."""
        self._clock += 1
        cfg = self.config
        line_addr = addr // cfg.line_bytes
        set_index = line_addr & (cfg.num_sets - 1)
        tag = line_addr >> cfg.num_sets.bit_length() - 1
        lines = self._sets[set_index]

        line = lines.get(tag)
        if line is not None:
            self.stats.hits += 1
            line.lru = self._clock
            if write:
                line.dirty = True
            return cfg.hit_latency

        self.stats.misses += 1
        fill_latency = (self.next_level.access(addr, write=False)
                        if self.next_level is not None
                        else self.memory_latency)
        if len(lines) >= cfg.assoc:
            victim_tag = min(lines, key=lambda t: lines[t].lru)
            victim = lines.pop(victim_tag)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
                if self.next_level is not None:
                    fill_latency += self.next_level.access(
                        self._addr_of(victim_tag, set_index), write=True)
                else:
                    fill_latency += self.memory_latency
        new_line = _Line(tag, self._clock)
        new_line.dirty = write
        lines[tag] = new_line
        return cfg.hit_latency + fill_latency

    def contains(self, addr: int) -> bool:
        cfg = self.config
        line_addr = addr // cfg.line_bytes
        set_index = line_addr & (cfg.num_sets - 1)
        tag = line_addr >> cfg.num_sets.bit_length() - 1
        return tag in self._sets[set_index]

    def flush(self) -> None:
        """Invalidate every line (used across checkpoint restores)."""
        self._sets = [{} for _ in range(self.config.num_sets)]

    def _addr_of(self, tag: int, set_index: int) -> int:
        cfg = self.config
        line_addr = (tag << (cfg.num_sets.bit_length() - 1)) | set_index
        return line_addr * cfg.line_bytes

    def snapshot(self) -> dict:
        return {
            "clock": self._clock,
            "stats": vars(self.stats).copy(),
            "sets": [
                [(tag, line.dirty, line.lru)
                 for tag, line in lines.items()]
                for lines in self._sets
            ],
        }

    def restore(self, snap: dict) -> None:
        self._clock = snap["clock"]
        for key, value in snap["stats"].items():
            setattr(self.stats, key, value)
        self._sets = []
        for entries in snap["sets"]:
            lines: dict[int, _Line] = {}
            for tag, dirty, lru in entries:
                line = _Line(tag, lru)
                line.dirty = dirty
                lines[tag] = line
            self._sets.append(lines)
