"""Command-line interface — the gem5-style front end of the tool.

Usage mirrors the paper's workflow (Section III.B): compile or assemble
an application, hand the simulator a fault-description input file on the
command line, run, and inspect the postmortem report / statistics.

    gemfi run app.mc --fault-file faults.txt --cpu o3 --stats stats.txt
    gemfi campaign --workload dct --scale tiny -n 50 [--prune]
    gemfi campaign -w pi -n 20 --flight 32 --share-dir /mnt/share/pi
    gemfi analyze --workload dct --scale tiny -n 200
    gemfi workloads
    gemfi sample-size --confidence 0.99 --margin 0.01

Observability surfaces (repro.telemetry):

    gemfi trace app.mc --fault-file faults.txt --trace-file run.jsonl
    gemfi trace --follow run.jsonl
    gemfi trace app.mc --cpu o3 --pipe -o pipe.jsonl
    gemfi pipeview pipe.jsonl
    gemfi status /mnt/share/campaign [--watch 5]
    gemfi stats-diff golden.txt faulty.txt [--tolerance 0.02]
    gemfi report /mnt/share/campaign --format html -o report.html
    gemfi coverage /mnt/share/campaign [--json|--format md]
    gemfi profile dct --cpu o3 [--json] [--folded out.folded] [--sample]
    gemfi campaign -w pi -n 20 --share-dir /mnt/share/pi --trace
    gemfi timeline /mnt/share/pi -o trace.json    # Perfetto-loadable
    gemfi dashboard /mnt/share/pi [--once]        # live view + alerts

Campaign-as-a-service (repro.service):

    gemfi serve /var/lib/gemfi --port 8642        # API + dispatcher
    gemfi submit --url http://host:8642 -w dct -n 50 --wait
    gemfi jobs --url http://host:8642
    gemfi fetch --url http://host:8642 <digest> -o results.json

(`python -m repro ...` works identically.)
"""

from __future__ import annotations

import argparse
import math
import sys

from .campaign import (
    CampaignRunner,
    SEUGenerator,
    render_location_table,
    sample_size,
)
from .compiler import compile_source
from .core import FaultInjector, parse_fault_file
from .sim import SimConfig, Simulator
from .workloads import WORKLOAD_NAMES, build


def _load_program(path: str) -> str:
    """Return assembly text for *path* (.mc MiniC is compiled; .s/.asm
    is passed through)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith((".s", ".asm")):
        return text
    return compile_source(text)


def cmd_run(args: argparse.Namespace) -> int:
    faults = []
    if args.fault_file:
        with open(args.fault_file, "r", encoding="utf-8") as handle:
            faults.extend(parse_fault_file(handle.read()))
    for line in args.fault or ():
        faults.extend(parse_fault_file(line))

    injector = FaultInjector(faults)
    config = SimConfig(cpu_model=args.cpu,
                       switch_to_atomic_after_fi=args.switch_to_atomic)
    sim = Simulator(config, injector=injector)
    sim.load(_load_program(args.program), "app")
    result = sim.run(max_instructions=args.max_instructions)

    process = sim.process(0)
    print(f"status      : {result.status}")
    print(f"process     : {process.state.value}"
          + (f" ({process.crash_reason})" if process.crash_reason
             else f" exit={process.exit_code}"))
    print(f"instructions: {result.instructions}  ticks: {result.ticks}")
    console = process.console_text()
    if console:
        print("--- console ---")
        print(console, end="" if console.endswith("\n") else "\n")
    if injector.records:
        print("--- injections ---")
        for record in injector.records:
            print(f"  {record.fault.describe()}")
            print(f"    pc={record.pc:#x} window-instr="
                  f"{record.instruction_count} {record.detail} "
                  f"{record.before:#x}->{record.after:#x} "
                  f"propagated={record.propagated}")
    if args.stats:
        with open(args.stats, "w", encoding="utf-8") as handle:
            handle.write(sim.stats_dump())
        print(f"stats written to {args.stats}")
    return 0 if process.state.value == "exited" else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    spec = build(args.workload, args.scale)
    print(f"# {spec.description}")
    runner = CampaignRunner(spec, detailed_model=args.detailed_model)
    print(f"# golden: window={runner.golden.profile.committed} "
          f"instructions, boot={runner.golden.boot_instructions}")
    if args.flight:
        log = runner.enable_flight(args.flight)
        print(f"# flight recorder: interval={log.interval}, "
              f"{len(log.intervals)} digests, {len(log.stores)} stores")
    location = None
    if args.location:
        from .core import LocationKind
        location = LocationKind(args.location)
    if args.share_dir:
        # Shared-directory (NoW) mode: publish the experiments and the
        # checkpoint, drain the queue with local worker processes, and
        # leave the share behind for gemfi status / gemfi report.
        from .campaign import SharedDirCampaign, outcome_counts
        campaign = SharedDirCampaign(args.share_dir, args.workload,
                                     args.scale)
        generator = SEUGenerator(runner.golden.profile, seed=args.seed)
        faults = generator.batch(args.experiments, location=location)
        campaign.publish(runner, faults, seed=args.seed,
                         flight=args.flight or None,
                         trace=args.trace)
        results = campaign.run_local(workers=args.workers)
        counts = outcome_counts(results)
        print(f"# share: {args.share_dir} — {len(results)} results")
        for name, count in sorted(counts.items()):
            print(f"#   {name:10s} {count}")
        print(f"# inspect with: gemfi status {args.share_dir} / "
              f"gemfi report {args.share_dir}")
        if args.trace:
            print(f"# span tracing on: gemfi timeline {args.share_dir} "
                  f"/ gemfi dashboard {args.share_dir}")
        return 0
    if args.trace:
        print("# warning: --trace needs --share-dir (span tracing "
              "follows the NoW campaign protocol); ignoring",
              file=sys.stderr)
    progress = lambda done, total: print(  # noqa: E731
        f"\r# {done}/{total}", end="", file=sys.stderr)
    if args.prune:
        if args.detailed_model is not None:
            print("# warning: liveness verdicts for fetch/decode sites "
                  "assume an in-order frontend; --detailed-model o3 "
                  "fetches speculatively and may time them differently",
                  file=sys.stderr)
        plan = runner.pruned_generator(seed=args.seed).plan(
            args.experiments, location=location)
        print(f"# pruned: {plan.total} sites -> {plan.experiments} "
              f"simulations ({plan.masked_count} provably masked, "
              f"{plan.collapsed} collapsed into classes; "
              f"{plan.fraction_saved:.0%} saved)")
        results = runner.run_pruned(plan, progress=progress)
    else:
        generator = SEUGenerator(runner.golden.profile, seed=args.seed)
        faults = generator.batch(args.experiments, location=location)
        results = runner.run_campaign(faults, progress=progress)
    print(file=sys.stderr)
    print(render_location_table(
        results, title=f"{args.workload} ({args.scale}) — "
                       f"{args.experiments} experiments, "
                       f"seed {args.seed}"))
    if args.flight:
        diverged = sum(1 for r in results
                       if getattr(r, "divergence", None))
        print(f"# flight recorder: {diverged}/{len(results)} runs "
              f"reached an architectural divergence")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Liveness analysis report: how much of a sampled campaign the
    pruner would skip, and why."""
    from .campaign import kish_effective_sample_size
    spec = build(args.workload, args.scale)
    print(f"# {spec.description}")
    runner = CampaignRunner(spec)
    trace = runner.ensure_trace()
    print(f"window instructions : {runner.golden.profile.committed}")
    print(f"trace events        : {len(trace.events)}"
          + (" (tainted)" if trace.tainted else ""))
    location = None
    if args.location:
        from .core import LocationKind
        location = LocationKind(args.location)
    plan = runner.pruned_generator(seed=args.seed).plan(
        args.experiments, location=location)
    print(f"sampled fault sites : {plan.total}")
    print(f"provably masked     : {plan.masked_count}")
    for reason, count in sorted(plan.reason_counts().items()):
        print(f"  {reason:28s} {count}")
    print(f"live classes        : {plan.experiments} "
          f"(+{plan.collapsed} collapsed members)")
    print(f"experiments saved   : {plan.saved} "
          f"({plan.fraction_saved:.1%})")
    weights = plan.weights()
    if weights:
        n_eff = kish_effective_sample_size(weights)
        print(f"effective n (Kish)  : {n_eff:.1f} over "
              f"{plan.experiments} weighted runs")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one program with the trace bus attached and stream (or ring-
    buffer) the JSONL lifecycle events; or tail a live trace file."""
    from .telemetry import JsonlFileSink, RingBufferSink, TraceBus

    if args.follow:
        from .telemetry import follow_jsonl
        path = args.program or args.trace_file
        if not path:
            print("trace --follow needs the JSONL file to tail",
                  file=sys.stderr)
            return 2
        try:
            for event in follow_jsonl(path, poll=args.poll,
                                      idle_timeout=args.idle_timeout):
                print(event.to_json(), flush=True)
        except KeyboardInterrupt:
            pass
        return 0
    if not args.program:
        print("trace needs a program (or --follow FILE)",
              file=sys.stderr)
        return 2

    faults = []
    if args.fault_file:
        with open(args.fault_file, "r", encoding="utf-8") as handle:
            faults.extend(parse_fault_file(handle.read()))
    for line in args.fault or ():
        faults.extend(parse_fault_file(line))

    bus = TraceBus(pipe_trace=args.pipe)
    ring = None
    sink = None
    if args.ring:
        ring = RingBufferSink(capacity=args.ring)
        bus.attach(ring)
    else:
        sink = JsonlFileSink(args.trace_file if args.trace_file
                             else sys.stdout)
        bus.attach(sink)

    injector = FaultInjector(faults)
    config = SimConfig(cpu_model=args.cpu)
    sim = Simulator(config, injector=injector, bus=bus)
    # The injector parsed its faults before the bus existed; report the
    # armed configuration at the head of the trace.
    for fault in faults:
        bus.emit("fault_armed", fault=fault.describe())
    sim.load(_load_program(args.program), "app")
    result = sim.run(max_instructions=args.max_instructions)
    bus.close()

    if ring is not None:
        print(ring.dump_jsonl(), end="")
        if ring.dropped:
            print(f"# ring buffer dropped {ring.dropped} older events",
                  file=sys.stderr)
    events = (ring.dropped + len(ring.events)) if ring is not None \
        else sink.count
    process = sim.process(0)
    print(f"# status={result.status} process={process.state.value} "
          f"events={events}", file=sys.stderr)
    return 0 if process.state.value == "exited" else 1


def cmd_status(args: argparse.Namespace) -> int:
    """Live status of a shared-directory campaign (optionally a
    self-refreshing watch loop)."""
    import time as _time

    from .telemetry import read_status, render_status

    def show() -> None:
        status = read_status(args.share_dir,
                             stale_claim_seconds=args.stale_seconds,
                             heartbeat_timeout=args.heartbeat_timeout,
                             coverage=args.coverage)
        if args.json:
            import json
            print(json.dumps(status.as_dict(), indent=2,
                             sort_keys=True))
        else:
            print(render_status(status))

    if not args.watch:
        show()
        return 0
    iterations = 0
    try:
        while True:
            if not args.json:
                # Rehome the cursor and clear: each refresh repaints
                # one screen instead of scroll-stacking frames.
                print("\x1b[H\x1b[2J", end="")
            show()
            sys.stdout.flush()
            iterations += 1
            if args.watch_count and iterations >= args.watch_count:
                return 0
            _time.sleep(args.watch)
    except KeyboardInterrupt:
        print()
        return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    """Merge a traced campaign's span logs into one Chrome trace-event
    JSON, loadable at https://ui.perfetto.dev or chrome://tracing."""
    from .telemetry import (
        render_span_tree,
        render_timeline,
        timeline_summary,
        validate_trace,
    )
    if args.tree:
        text = render_span_tree(args.share_dir)
        if not text:
            print("# no span records on the share — was the campaign "
                  "run with --trace?", file=sys.stderr)
            return 2
        print(text)
        return 0
    try:
        text = render_timeline(args.share_dir, timebase=args.timebase,
                               slots=args.slots, indent=args.indent)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    events = validate_trace(text)
    summary = timeline_summary(args.share_dir)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"# {summary['experiments']} experiments / {events} "
              f"events -> {args.output}", file=sys.stderr)
        print("# open it at https://ui.perfetto.dev (or "
              "chrome://tracing)", file=sys.stderr)
    else:
        print(text, end="")
    if summary["open_spans"]:
        print(f"# note: {summary['open_spans']} span(s) still open "
              f"(in-flight or dead workers) — not on the timeline",
              file=sys.stderr)
    if not summary["experiments"]:
        print("# no experiment spans on the share — was the campaign "
              "run with --trace?", file=sys.stderr)
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    """Live campaign dashboard: status, workers x current experiment,
    and the watchdog alert strip (also journalled to alerts.jsonl).

    With ``--url --job``, frames are rendered server-side by the
    campaign service (``GET /v1/jobs/{id}/dashboard``) — no filesystem
    access to the share needed."""
    import time as _time

    if args.url:
        if not args.job:
            print("error: --url needs --job (which job's dashboard?)",
                  file=sys.stderr)
            return 2
        from .service import ServiceClient, ServiceError
        client = ServiceClient(args.url)
        try:
            while True:
                try:
                    frame = client.dashboard(args.job)
                except ServiceError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
                if not args.once:
                    print("\x1b[H\x1b[2J", end="")
                job = frame.get("job", {})
                print(f"# job {job.get('id')}  state={job.get('state')}"
                      f"  tenant={job.get('tenant')}")
                if frame.get("text"):
                    print(frame["text"])
                else:
                    print("# no campaign share yet (job still queued)")
                sys.stdout.flush()
                if args.once:
                    return 0
                if job.get("state") in ("done", "failed", "cancelled"):
                    return 0
                _time.sleep(args.interval)
        except KeyboardInterrupt:
            print()
            return 0
        finally:
            client.close()

    if not args.share_dir:
        print("error: give a share directory (or --url --job)",
              file=sys.stderr)
        return 2
    from .telemetry import (
        WatchdogConfig,
        append_alerts,
        render_dashboard,
    )
    config = WatchdogConfig(
        heartbeat_timeout=args.heartbeat_timeout,
        stale_claim_seconds=args.stale_seconds)
    try:
        while True:
            text, alerts = render_dashboard(args.share_dir, config)
            if not args.once:
                print("\x1b[H\x1b[2J", end="")
            print(text)
            sys.stdout.flush()
            if alerts and not args.no_alerts:
                append_alerts(args.share_dir, alerts)
            if args.once:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def cmd_stats_diff(args: argparse.Namespace) -> int:
    """Section IV.A validation: diff two stats dumps."""
    from .telemetry import diff_stats
    with open(args.a, "r", encoding="utf-8") as handle:
        a_text = handle.read()
    with open(args.b, "r", encoding="utf-8") as handle:
        b_text = handle.read()
    differences = diff_stats(a_text, b_text, tolerance=args.tolerance)
    if not differences:
        print(f"0 differences: {args.a} and {args.b} are statistically "
              f"identical")
        return 0
    for line in differences:
        print(line)
    print(f"{len(differences)} differences")
    return 1


def cmd_pipeview(args: argparse.Namespace) -> int:
    """Render an O3 pipeline timeline from a captured JSONL trace."""
    from .telemetry import read_jsonl, render_from_events
    events = read_jsonl(sys.stdin) if args.trace == "-" \
        else read_jsonl(args.trace)
    print(render_from_events(events))
    return 0


def _load_summary(ref: str, url: str | None = None,
                  tenant: str = "default"):
    """Resolve a `gemfi compare` operand — a share directory, a
    summary/diff JSON file, or (with *url*) a job id / baseline name
    on a running service — into a CampaignSummary."""
    import json
    import os

    from .analysis.diff import CampaignSummary
    if os.path.isdir(ref):
        return CampaignSummary.from_share(ref)
    if os.path.isfile(ref):
        with open(ref, "r", encoding="utf-8") as handle:
            return CampaignSummary.from_payload(json.load(handle))
    if url:
        from .service import ServiceClient
        client = ServiceClient(url, tenant=tenant)
        try:
            return CampaignSummary.from_payload(client.summary(ref))
        finally:
            client.close()
    raise ValueError(
        f"{ref!r} is neither a share directory nor a summary JSON "
        f"file (pass --url to resolve job ids / baseline names)")


def cmd_report(args: argparse.Namespace) -> int:
    """Aggregate a campaign share directory into an outcome report."""
    from .telemetry import load_share, render_report
    report = load_share(args.share_dir)
    baseline = None
    if args.baseline:
        from .analysis.diff import CampaignDiff, CampaignSummary
        from .service import ServiceError
        try:
            base = _load_summary(args.baseline, url=args.url,
                                 tenant=args.tenant)
        except (ServiceError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        head = CampaignSummary.from_share(args.share_dir)
        baseline = CampaignDiff(base, head).payload
    text = render_report(report, fmt=args.format, baseline=baseline)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"# {report.experiments} experiments -> {args.output}",
              file=sys.stderr)
    else:
        print(text, end="")
    return 0


def cmd_coverage(args: argparse.Namespace) -> int:
    """Fault-space coverage analytics of a campaign share: space
    visited, per-dimension outcome heatmaps with Wilson intervals,
    and margin convergence."""
    import json
    import os

    from .analysis.coverage import (
        DIMENSIONS,
        coverage_from_share,
        render_coverage_markdown,
        render_coverage_tables,
        render_heatmap_table,
    )
    space = coverage_from_share(args.share_dir,
                                confidence=args.confidence,
                                margin=args.margin)
    payload = space.as_dict()
    if args.format == "json":
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    elif args.format == "md":
        name = os.path.basename(os.path.normpath(args.share_dir))
        text = render_coverage_markdown(payload, name=name)
    elif args.dimension:
        if args.dimension not in DIMENSIONS:
            print(f"# unknown dimension '{args.dimension}' "
                  f"(choose from {', '.join(DIMENSIONS)})",
                  file=sys.stderr)
            return 2
        text = render_heatmap_table(payload, args.dimension) + "\n"
    else:
        text = render_coverage_tables(payload)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"# {space.accounted} experiments -> {args.output}",
              file=sys.stderr)
    else:
        print(text, end="")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Differential campaign analytics: significance-tested outcome
    deltas between two campaigns (share dirs, summary JSON files, or
    --url + job ids / baseline names), with --gate exiting nonzero on
    a significant regression — the outcome-distribution analogue of
    the CI KIPS gate."""
    import json

    from .analysis.diff import (
        CampaignDiff,
        render_diff_markdown,
        render_diff_text,
    )
    from .service import ServiceError
    try:
        base = _load_summary(args.base, url=args.url,
                             tenant=args.tenant)
        head = _load_summary(args.head, url=args.url,
                             tenant=args.tenant)
        diff = CampaignDiff(base, head, confidence=args.confidence,
                            margin=args.margin)
    except (ServiceError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = diff.payload
    if args.format == "json":
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    elif args.format == "md":
        text = render_diff_markdown(payload)
    else:
        text = render_diff_text(payload)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"# verdict: {diff.verdict} -> {args.output}",
              file=sys.stderr)
    else:
        print(text, end="")
    if args.gate and diff.regressed:
        print(f"# gate: outcome distribution regressed "
              f"(margin ±{args.margin * 100:g}%, "
              f"{args.confidence * 100:g}% confidence)",
              file=sys.stderr)
        return 1
    return 0


def cmd_store_verify(args: argparse.Namespace) -> int:
    """Integrity-sweep a service content store: recompute every
    object's digest and list corrupt/orphaned entries, exiting
    nonzero when anything is wrong."""
    import json
    import os

    from .service.store import ContentStore
    root = args.data_dir
    if os.path.isdir(os.path.join(root, "store", "objects")):
        root = os.path.join(root, "store")  # service data dir
    elif not os.path.isdir(os.path.join(root, "objects")):
        print(f"error: {args.data_dir!r} has no content store "
              f"(expected store/objects/ or objects/)",
              file=sys.stderr)
        return 2
    report = ContentStore(root).verify_all()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"# {report['checked']} objects checked: "
              f"{len(report['corrupt'])} corrupt, "
              f"{len(report['orphaned'])} orphaned")
        for digest in report["corrupt"]:
            print(f"corrupt  {digest}")
        for path in report["orphaned"]:
            print(f"orphaned {path}")
    return 0 if report["ok"] else 1


def cmd_profile(args: argparse.Namespace) -> int:
    """Self-profile one run: where does host time go, and how fast is
    the simulator (KIPS / ticks-per-second)?"""
    import json

    from .telemetry.profiler import (
        Profiler,
        SamplingProfiler,
        sim_rates,
    )

    if args.workload in WORKLOAD_NAMES:
        spec = build(args.workload, args.scale)
        asm = compile_source(spec.source)
        name = args.workload
    else:
        asm = _load_program(args.workload)
        name = "app"

    faults = []
    if args.fault_file:
        with open(args.fault_file, "r", encoding="utf-8") as handle:
            faults.extend(parse_fault_file(handle.read()))
    for line in args.fault or ():
        faults.extend(parse_fault_file(line))

    injector = FaultInjector(faults)
    config = SimConfig(cpu_model=args.cpu)
    sim = Simulator(config, injector=injector)
    sim.load(asm, name)
    profiler = Profiler().install(sim)
    sampler = None
    if args.sample:
        sampler = SamplingProfiler(hz=args.sample)
        try:
            sampler.start()
        except ValueError as exc:
            print(f"# sampling unavailable: {exc}", file=sys.stderr)
            sampler = None
    result = sim.run(max_instructions=args.max_instructions)
    if sampler is not None:
        sampler.stop()

    wall = profiler.wall_seconds
    rates = sim_rates(result.instructions, result.ticks, wall)
    if args.folded:
        folded = sampler.folded() if args.folded_source == "sample" \
            and sampler is not None else profiler.folded()
        with open(args.folded, "w", encoding="utf-8") as handle:
            handle.write(folded)
    if args.json:
        payload = {
            "workload": name,
            "cpu": args.cpu,
            "status": result.status,
            "instructions": result.instructions,
            "ticks": result.ticks,
            "wall_seconds": wall,
            "kips": rates["kips"],
            "ticks_per_second": rates["ticks_per_second"],
            "host_seconds_per_instruction":
                rates["host_seconds_per_instruction"],
            "attribution": profiler.attribution(),
            "coverage": profiler.coverage(),
        }
        if sampler is not None:
            payload["samples"] = sampler.samples
            payload["sample_attribution"] = sampler.attribution()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"workload    : {name} ({args.cpu})  status={result.status}")
        print(f"instructions: {result.instructions}  "
              f"ticks: {result.ticks}")
        print(f"wall        : {wall:.4f}s  {rates['kips']:.1f} KIPS  "
              f"{rates['ticks_per_second']:.0f} ticks/s")
        print("--- host-time attribution ---")
        print(profiler.render_table())
        if sampler is not None:
            print(f"--- sampled ({sampler.samples} samples) ---")
            print(sampler.render_table())
        if args.folded:
            print(f"# folded stacks -> {args.folded} "
                  f"(flamegraph.pl / speedscope)")
    if args.stats:
        with open(args.stats, "w", encoding="utf-8") as handle:
            handle.write(sim.stats_dump())
    profiler.uninstall()
    return 0


def cmd_workloads(_args: argparse.Namespace) -> int:
    for name in WORKLOAD_NAMES:
        spec = build(name, "small")
        print(f"{name:12s} {spec.description}")
    return 0


def cmd_sample_size(args: argparse.Namespace) -> int:
    population = math.inf if args.population is None else args.population
    n = sample_size(population, confidence=args.confidence,
                    error_margin=args.margin)
    pop_text = "inf" if population == math.inf else str(population)
    print(f"N={pop_text} confidence={args.confidence} "
          f"margin={args.margin} -> n={n}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the campaign service: HTTP API on a background thread,
    job dispatch on this (main) thread so campaign workers can fork."""
    from .service import Service
    from .telemetry import WatchdogConfig
    service = Service(args.data_dir, host=args.host, port=args.port,
                      default_quota=args.quota,
                      lease_seconds=args.lease_seconds,
                      watchdog_config=WatchdogConfig(),
                      ui=args.ui,
                      history_interval=args.history_interval,
                      history_retention=args.history_retention)
    service.start_http()
    print(f"# gemfi service on {service.url}  data={args.data_dir}",
          file=sys.stderr)
    if args.ui:
        print(f"# web console on {service.url}/ui", file=sys.stderr)
    print(f"# submit with: gemfi submit --url {service.url} "
          f"-w dct -n 20", file=sys.stderr)
    try:
        service.dispatch_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a campaign job to a running service."""
    import json

    from .service import ServiceClient, ServiceError
    client = ServiceClient(args.url, tenant=args.tenant)
    spec = {"workload": args.workload, "scale": args.scale,
            "experiments": args.experiments, "seed": args.seed,
            "location": args.location, "workers": args.workers,
            "trace": args.trace}
    try:
        job = client.submit(spec, priority=args.priority,
                            reuse=not args.no_reuse)
        if args.wait and job["state"] not in ("done", "failed",
                                              "cancelled"):
            job = client.wait(job["id"], timeout=args.timeout,
                              poll=args.poll)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(job, indent=2, sort_keys=True))
    else:
        print(f"job     : {job['id']}  state={job['state']}"
              + (f"  (reused {job['reused_from']})"
                 if job.get("reused_from") else ""))
        print(f"spec    : {job['spec_digest']}")
        if job.get("result_digest"):
            print(f"results : {job['result_digest']}")
            print(f"fetch   : gemfi fetch --url {args.url} "
                  f"{job['result_digest']}")
        if job.get("error"):
            print(f"error   : {job['error']}")
    if job["state"] == "failed":
        return 1
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    """List jobs (and queue/tenant state) on a running service."""
    import json

    from .service import ServiceClient, ServiceError
    client = ServiceClient(args.url, tenant=args.tenant)
    try:
        listing = client.jobs(tenant=args.tenant
                              if args.mine else None)
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()
    if args.json:
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0
    print(f"# queue depth: {listing['queue_depth']}")
    for tenant, counts in sorted(listing["tenants"].items()):
        states = " ".join(f"{state}={count}" for state, count
                          in sorted(counts.items()))
        print(f"# tenant {tenant}: {states}")
    for job in listing["jobs"]:
        spec = job["spec"]
        print(f"{job['id']}  {job['state']:9s} p{job['priority']} "
              f"{job['tenant']:10s} {spec['workload']}/{spec['scale']} "
              f"n={spec['experiments']} seed={spec['seed']}"
              + (f"  -> {job['result_digest'][:12]}"
                 if job.get("result_digest") else ""))
    return 0


def cmd_usage(args: argparse.Namespace) -> int:
    """Per-tenant usage metering from a running service: completed
    jobs, experiments, simulated instructions and campaign wall time
    (persisted in the queue database across restarts)."""
    import json

    from .service import ServiceClient, ServiceError
    client = ServiceClient(args.url, tenant=args.tenant)
    try:
        usage = client.usage(tenant=args.tenant if args.mine else None)
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()
    if args.json:
        print(json.dumps(usage, indent=2, sort_keys=True))
        return 0
    if not usage:
        print("# no metered usage yet")
        return 0
    print(f"{'tenant':<16} {'jobs':>6} {'experiments':>12} "
          f"{'instructions':>14} {'wall_s':>10}")
    for tenant, totals in sorted(usage.items()):
        print(f"{tenant:<16} {totals['jobs']:>6} "
              f"{totals['experiments']:>12} "
              f"{totals['instructions']:>14} "
              f"{totals['wall_seconds']:>10.2f}")
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    """Recorded metrics time series from a running service
    (GET /v1/history): one line per series with sample count, range
    and latest value; --series prints one series' points."""
    import json

    from .service import ServiceClient, ServiceError
    client = ServiceClient(args.url, tenant=args.tenant)
    try:
        payload = client.history(prefix=args.prefix,
                                 since=args.since, limit=args.limit)
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    meta = payload["meta"]
    history = payload["history"]
    print(f"# {meta['series']} series, {meta['samples']} samples, "
          f"round {meta['rounds']}  (every {meta['interval']}s, "
          f"keep {meta['retention']}/series)")
    if args.series:
        points = history.get(args.series)
        if points is None:
            print(f"error: no series {args.series!r} recorded",
                  file=sys.stderr)
            return 1
        for stamp, value in points:
            print(f"{stamp:.3f} {value:g}")
        return 0
    if not history:
        print("# no samples recorded yet")
        return 0
    width = max(len(name) for name in history)
    for name in sorted(history):
        points = history[name]
        values = [value for _, value in points]
        print(f"{name:<{width}} n={len(points):>4} "
              f"min={min(values):<12g} max={max(values):<12g} "
              f"last={values[-1]:g}")
    return 0


def cmd_fetch(args: argparse.Namespace) -> int:
    """Fetch a stored artifact by digest (or a job's results/report)
    and verify the content address on the way out."""
    import hashlib

    from .service import ServiceClient, ServiceError
    client = ServiceClient(args.url, tenant=args.tenant)
    try:
        if args.digest.startswith("job-"):
            job = client.job(args.digest)
            if args.report:
                text = client.report(args.digest)
                data = text.encode("utf-8")
                digest = None
            else:
                digest = job.get("result_digest")
                if not digest:
                    print(f"error: job {args.digest} has no results "
                          f"(state={job['state']})", file=sys.stderr)
                    return 1
                data = client.fetch(digest)
        else:
            digest = args.digest
            data = client.fetch(digest)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if digest is not None:
        actual = hashlib.sha256(data).hexdigest()
        if actual != digest:
            print(f"error: digest mismatch: asked {digest}, "
                  f"got {actual}", file=sys.stderr)
            return 1
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(data)
        print(f"# {len(data)} bytes -> {args.output}"
              + ("  (sha256 verified)" if digest else ""),
              file=sys.stderr)
    else:
        sys.stdout.write(data.decode("utf-8", "replace"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gemfi",
        description="GemFI: fault injection on a full-system simulator "
                    "(DSN 2014 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="simulate one program, optionally injecting faults")
    run_p.add_argument("program",
                       help="MiniC source (.mc/.py) or assembly (.s)")
    run_p.add_argument("--fault-file", "-f",
                       help="Listing-1 style fault input file")
    run_p.add_argument("--fault", action="append",
                       help="inline fault description (repeatable)")
    run_p.add_argument("--cpu", default="atomic",
                       choices=("atomic", "timing", "inorder", "o3"))
    run_p.add_argument("--max-instructions", type=int,
                       default=50_000_000)
    run_p.add_argument("--stats", help="write a stats dump to this file")
    run_p.add_argument("--switch-to-atomic", action="store_true",
                       help="drop to AtomicSimple once the fault commits")
    run_p.set_defaults(func=cmd_run)

    camp_p = sub.add_parser(
        "campaign", help="run an SEU campaign on a paper workload")
    camp_p.add_argument("--workload", "-w", default="dct",
                        choices=WORKLOAD_NAMES)
    camp_p.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "medium", "paper"))
    camp_p.add_argument("--experiments", "-n", type=int, default=40)
    camp_p.add_argument("--seed", type=int, default=0)
    camp_p.add_argument("--location", default=None,
                        help="pin the fault location (e.g. pc, fetch, "
                             "int_reg)")
    camp_p.add_argument("--detailed-model", default=None,
                        choices=(None, "o3", "inorder", "timing"),
                        help="inject in this model, then switch to "
                             "atomic (paper methodology)")
    camp_p.add_argument("--prune", action="store_true",
                        help="skip provably-masked sites and collapse "
                             "equivalent live sites (repro.analysis)")
    camp_p.add_argument("--flight", type=int, nargs="?", const=32,
                        default=None, metavar="INTERVAL",
                        help="enable the fault-propagation flight "
                             "recorder (digest every INTERVAL committed "
                             "instructions; default 32)")
    camp_p.add_argument("--share-dir", default=None,
                        help="run as a shared-directory (NoW) campaign "
                             "rooted here, leaving the share behind for "
                             "gemfi status / gemfi report")
    camp_p.add_argument("--workers", type=int, default=2,
                        help="local worker processes in --share-dir "
                             "mode")
    camp_p.add_argument("--trace", action="store_true",
                        help="span-trace the campaign (share mode): "
                             "workers append span logs for gemfi "
                             "timeline / gemfi dashboard")
    camp_p.set_defaults(func=cmd_campaign)

    ana_p = sub.add_parser(
        "analyze",
        help="liveness analysis: report what a pruned campaign saves")
    ana_p.add_argument("--workload", "-w", default="dct",
                       choices=WORKLOAD_NAMES)
    ana_p.add_argument("--scale", default="tiny",
                       choices=("tiny", "small", "medium", "paper"))
    ana_p.add_argument("--experiments", "-n", type=int, default=200)
    ana_p.add_argument("--seed", type=int, default=0)
    ana_p.add_argument("--location", default=None,
                       help="pin the fault location (e.g. pc, fetch, "
                            "int_reg)")
    ana_p.set_defaults(func=cmd_analyze)

    trace_p = sub.add_parser(
        "trace",
        help="run one program with the structured trace bus attached")
    trace_p.add_argument("program", nargs="?", default=None,
                         help="MiniC source (.mc/.py) or assembly (.s); "
                              "with --follow, the JSONL file to tail")
    trace_p.add_argument("--fault-file", "-f",
                         help="Listing-1 style fault input file")
    trace_p.add_argument("--fault", action="append",
                         help="inline fault description (repeatable)")
    trace_p.add_argument("--cpu", default="atomic",
                         choices=("atomic", "timing", "inorder", "o3"))
    trace_p.add_argument("--max-instructions", type=int,
                         default=50_000_000)
    trace_p.add_argument("--trace-file", "-o",
                         help="write JSONL events here instead of stdout")
    trace_p.add_argument("--ring", type=int, default=0,
                         help="keep only the last N events (crash "
                              "post-mortem mode)")
    trace_p.add_argument("--pipe", action="store_true",
                         help="also capture per-instruction O3 pipeline "
                              "events (for gemfi pipeview)")
    trace_p.add_argument("--follow", action="store_true",
                         help="tail a JSONL trace file being written by "
                              "a live run instead of simulating")
    trace_p.add_argument("--poll", type=float, default=0.2,
                         help="--follow poll interval in seconds")
    trace_p.add_argument("--idle-timeout", type=float, default=None,
                         help="--follow stops after this many seconds "
                              "without a new event (default: forever)")
    trace_p.set_defaults(func=cmd_trace)

    pipe_p = sub.add_parser(
        "pipeview",
        help="render an O3 fetch->commit timeline from a --pipe trace")
    pipe_p.add_argument("trace",
                        help="JSONL trace file ('-' reads stdin)")
    pipe_p.set_defaults(func=cmd_pipeview)

    status_p = sub.add_parser(
        "status",
        help="live status of a shared-directory (NoW) campaign")
    status_p.add_argument("share_dir",
                          help="the campaign share directory")
    status_p.add_argument("--stale-seconds", type=float, default=600.0,
                          help="claims older than this with no result "
                               "count as stale")
    status_p.add_argument("--heartbeat-timeout", type=float,
                          default=120.0,
                          help="workers silent longer than this are "
                               "not counted live")
    status_p.add_argument("--json", action="store_true",
                          help="machine-readable output")
    status_p.add_argument("--coverage", action="store_true",
                          help="append the fault-space coverage frame "
                               "(space visited, Wilson-interval "
                               "outcome rates, margin convergence)")
    status_p.add_argument("--watch", type=float, default=0.0,
                          metavar="SECONDS",
                          help="re-read and re-print the status every "
                               "SECONDS until interrupted")
    status_p.add_argument("--watch-count", type=int, default=0,
                          help="stop --watch after N refreshes "
                               "(0 = until interrupted)")
    status_p.set_defaults(func=cmd_status)

    tl_p = sub.add_parser(
        "timeline",
        help="merge a traced campaign's span logs into Chrome "
             "trace-event JSON (Perfetto / chrome://tracing)")
    tl_p.add_argument("share_dir",
                      help="the campaign share directory")
    tl_p.add_argument("--output", "-o", default=None,
                      help="write the trace JSON here instead of stdout")
    tl_p.add_argument("--timebase", default="host",
                      choices=("host", "ticks"),
                      help="host = real wall-clock tracks; ticks = "
                           "deterministic simulated-tick layout "
                           "(byte-identical across same-seed reruns)")
    tl_p.add_argument("--slots", type=int, default=None,
                      help="workstation slots for --timebase ticks "
                           "(default: the workers that heartbeated)")
    tl_p.add_argument("--indent", type=int, default=None,
                      help="pretty-print the JSON with this indent")
    tl_p.add_argument("--tree", action="store_true",
                      help="print the span tree as indented text "
                           "instead of trace-event JSON (service jobs "
                           "root at their originating HTTP request)")
    tl_p.set_defaults(func=cmd_timeline)

    dash_p = sub.add_parser(
        "dashboard",
        help="live campaign dashboard with watchdog alerts")
    dash_p.add_argument("share_dir", nargs="?", default=None,
                        help="the campaign share directory (omit "
                             "with --url)")
    dash_p.add_argument("--url", default=None,
                        help="drive the dashboard from a campaign "
                             "service instead of a local share")
    dash_p.add_argument("--job", default=None,
                        help="job id to watch (with --url)")
    dash_p.add_argument("--interval", type=float, default=2.0,
                        help="refresh interval in seconds")
    dash_p.add_argument("--once", action="store_true",
                        help="print one frame and exit (scripts/CI)")
    dash_p.add_argument("--no-alerts", action="store_true",
                        help="do not journal alerts to alerts.jsonl")
    dash_p.add_argument("--stale-seconds", type=float, default=600.0,
                        help="claim-age fallback for workers that "
                             "never heartbeated")
    dash_p.add_argument("--heartbeat-timeout", type=float,
                        default=120.0,
                        help="workers silent longer than this are "
                             "presumed dead")
    dash_p.set_defaults(func=cmd_dashboard)

    diff_p = sub.add_parser(
        "stats-diff",
        help="diff two stats dumps (Section IV.A validation)")
    diff_p.add_argument("a", help="baseline stats dump")
    diff_p.add_argument("b", help="comparison stats dump")
    diff_p.add_argument("--tolerance", type=float, default=0.0,
                        help="ignore relative differences up to this "
                             "fraction on timing-sensitive counters "
                             "(ticks/cycles/latencies); default 0 = "
                             "strict")
    diff_p.set_defaults(func=cmd_stats_diff)

    report_p = sub.add_parser(
        "report",
        help="aggregate a campaign share into an outcome report")
    report_p.add_argument("share_dir",
                         help="the campaign share directory")
    report_p.add_argument("--format", default="md",
                          choices=("md", "html"))
    report_p.add_argument("--output", "-o", default=None,
                          help="write here instead of stdout")
    report_p.add_argument("--baseline", default=None,
                          help="append a 'vs baseline' diff section: "
                               "a share dir, summary JSON file, or "
                               "(with --url) a job id / baseline name")
    report_p.add_argument("--url", default=None,
                          help="campaign service URL for resolving "
                               "--baseline job ids / baseline names")
    report_p.add_argument("--tenant", default="default")
    report_p.set_defaults(func=cmd_report)

    cmp_p = sub.add_parser(
        "compare",
        help="differential campaign analytics: significance-tested "
             "outcome deltas between two campaigns, with an optional "
             "regression gate")
    cmp_p.add_argument("base",
                       help="baseline campaign: share dir, summary "
                            "JSON file, or (with --url) a job id / "
                            "baseline name")
    cmp_p.add_argument("head",
                       help="head campaign (same forms as base)")
    cmp_p.add_argument("--url", default=None,
                       help="campaign service URL for resolving job "
                            "ids / baseline names")
    cmp_p.add_argument("--tenant", default="default")
    cmp_p.add_argument("--format", default="table",
                       choices=("table", "md", "json"),
                       help="aligned delta tables (default), "
                            "Markdown, or the raw JSON payload")
    cmp_p.add_argument("--json", dest="format", action="store_const",
                       const="json",
                       help="shorthand for --format json")
    cmp_p.add_argument("--md", dest="format", action="store_const",
                       const="md",
                       help="shorthand for --format md")
    cmp_p.add_argument("--confidence", type=float, default=0.95,
                       help="Newcombe interval confidence level for "
                            "per-class deltas (default 0.95)")
    cmp_p.add_argument("--margin", type=float, default=0.02,
                       help="minimum absolute rate delta to call a "
                            "class changed (default 0.02 = +-2%%)")
    cmp_p.add_argument("--output", "-o", default=None,
                       help="write here instead of stdout")
    cmp_p.add_argument("--gate", action="store_true",
                       help="exit 1 when the overall verdict is "
                            "'regressed' (CI regression gate)")
    cmp_p.set_defaults(func=cmd_compare)

    store_p = sub.add_parser(
        "store",
        help="campaign-service content store maintenance")
    store_sub = store_p.add_subparsers(dest="store_command",
                                       required=True)
    verify_p = store_sub.add_parser(
        "verify",
        help="recompute every stored object's digest; exit 1 on "
             "corrupt or orphaned entries")
    verify_p.add_argument("--data-dir", required=True,
                          help="service data dir (or the store root "
                               "itself)")
    verify_p.add_argument("--json", action="store_true",
                          help="emit the raw verification report")
    verify_p.set_defaults(func=cmd_store_verify)

    cov_p = sub.add_parser(
        "coverage",
        help="fault-space coverage analytics: space visited, outcome "
             "heatmaps with Wilson intervals, margin convergence")
    cov_p.add_argument("share_dir",
                       help="the campaign share directory")
    cov_p.add_argument("--format", default="table",
                       choices=("table", "md", "json"),
                       help="aligned heatmap tables (default), "
                            "Markdown, or the raw JSON payload")
    cov_p.add_argument("--json", dest="format", action="store_const",
                       const="json",
                       help="shorthand for --format json")
    cov_p.add_argument("--dimension", default=None,
                       help="render only this heatmap dimension "
                            "(table format): location, bit, "
                            "time_decile, register, pc_region")
    cov_p.add_argument("--confidence", type=float, default=0.99,
                       help="Wilson interval confidence level "
                            "(default 0.99)")
    cov_p.add_argument("--margin", type=float, default=0.01,
                       help="convergence margin on outcome-rate "
                            "half-widths (default 0.01 = +-1%%)")
    cov_p.add_argument("--output", "-o", default=None,
                       help="write here instead of stdout")
    cov_p.set_defaults(func=cmd_coverage)

    prof_p = sub.add_parser(
        "profile",
        help="self-profile the simulator: host-time attribution and "
             "sim-rate (KIPS) for one run")
    prof_p.add_argument("workload",
                        help="paper workload name, MiniC source "
                             "(.mc/.py) or assembly (.s)")
    prof_p.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "medium", "paper"),
                        help="workload scale (workload names only)")
    prof_p.add_argument("--cpu", default="atomic",
                        choices=("atomic", "timing", "inorder", "o3"))
    prof_p.add_argument("--fault-file", "-f",
                        help="Listing-1 style fault input file")
    prof_p.add_argument("--fault", action="append",
                        help="inline fault description (repeatable)")
    prof_p.add_argument("--max-instructions", type=int,
                        default=50_000_000)
    prof_p.add_argument("--json", action="store_true",
                        help="machine-readable output")
    prof_p.add_argument("--folded", metavar="FILE",
                        help="write folded flame-graph stacks here")
    prof_p.add_argument("--folded-source", default="timers",
                        choices=("timers", "sample"),
                        help="which profile feeds --folded")
    prof_p.add_argument("--sample", type=int, nargs="?", const=97,
                        default=None, metavar="HZ",
                        help="also run the SIGPROF sampling profiler "
                             "(default 97 Hz)")
    prof_p.add_argument("--stats",
                        help="write a stats dump (incl. host.* gauges) "
                             "to this file")
    prof_p.set_defaults(func=cmd_profile)

    list_p = sub.add_parser("workloads",
                            help="list the paper's benchmarks")
    list_p.set_defaults(func=cmd_workloads)

    serve_p = sub.add_parser(
        "serve",
        help="run the campaign service (HTTP API + job dispatcher)")
    serve_p.add_argument("data_dir",
                         help="service state directory (queue.db, "
                              "content store, per-job shares)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8642,
                         help="TCP port (0 = pick a free one)")
    serve_p.add_argument("--quota", type=int, default=0,
                         help="default per-tenant cap on active "
                              "(queued+leased) jobs; 0 = unlimited")
    serve_p.add_argument("--lease-seconds", type=float, default=600.0,
                         help="job lease length; a dispatcher that "
                              "dies is recovered after this long")
    serve_p.add_argument("--ui", action="store_true",
                         help="serve the embedded web console at /ui "
                              "(stdlib-rendered, zero dependencies)")
    serve_p.add_argument("--history-interval", type=float,
                         default=5.0, metavar="SECONDS",
                         help="metrics-history sampling interval; "
                              "<= 0 disables the recorder")
    serve_p.add_argument("--history-retention", type=int,
                         default=720, metavar="SAMPLES",
                         help="samples kept per series (ring "
                              "retention; default 720 = 1h at 5s)")
    serve_p.set_defaults(func=cmd_serve)

    sub_p = sub.add_parser(
        "submit", help="submit a campaign job to a running service")
    sub_p.add_argument("--url", default="http://127.0.0.1:8642",
                       help="service URL (see gemfi serve)")
    sub_p.add_argument("--tenant", default="default")
    sub_p.add_argument("--workload", "-w", default="dct",
                       choices=WORKLOAD_NAMES)
    sub_p.add_argument("--scale", default="tiny",
                       choices=("tiny", "small", "medium", "paper"))
    sub_p.add_argument("--experiments", "-n", type=int, default=40)
    sub_p.add_argument("--seed", type=int, default=0)
    sub_p.add_argument("--location", default=None,
                       help="pin the fault location (e.g. pc, fetch, "
                            "int_reg)")
    sub_p.add_argument("--workers", type=int, default=1,
                       help="worker processes for this job (0/1 = run "
                            "inside the dispatcher)")
    sub_p.add_argument("--priority", type=int, default=0,
                       help="higher runs first")
    sub_p.add_argument("--no-reuse", action="store_true",
                       help="run even if an identical job already "
                            "finished (skip result dedup)")
    sub_p.add_argument("--trace", action="store_true",
                       help="span-trace the campaign; its tree roots "
                            "at this submit request (gemfi timeline "
                            "--tree on the job's share)")
    sub_p.add_argument("--wait", action="store_true",
                       help="block until the job is terminal")
    sub_p.add_argument("--timeout", type=float, default=600.0,
                       help="--wait limit in seconds")
    sub_p.add_argument("--poll", type=float, default=0.5,
                       help="--wait poll interval in seconds")
    sub_p.add_argument("--json", action="store_true",
                       help="print the final job record as JSON")
    sub_p.set_defaults(func=cmd_submit)

    jobs_p = sub.add_parser(
        "jobs", help="list jobs on a running service")
    jobs_p.add_argument("--url", default="http://127.0.0.1:8642")
    jobs_p.add_argument("--tenant", default="default")
    jobs_p.add_argument("--mine", action="store_true",
                        help="only this tenant's jobs")
    jobs_p.add_argument("--json", action="store_true")
    jobs_p.set_defaults(func=cmd_jobs)

    usage_p = sub.add_parser(
        "usage",
        help="per-tenant usage metering from a running service")
    usage_p.add_argument("--url", default="http://127.0.0.1:8642")
    usage_p.add_argument("--tenant", default="default")
    usage_p.add_argument("--mine", action="store_true",
                         help="only this tenant's usage")
    usage_p.add_argument("--json", action="store_true")
    usage_p.set_defaults(func=cmd_usage)

    hist_p = sub.add_parser(
        "history",
        help="recorded metrics time series from a running service")
    hist_p.add_argument("--url", default="http://127.0.0.1:8642")
    hist_p.add_argument("--tenant", default="default")
    hist_p.add_argument("--prefix", default=None,
                        help="only series whose name starts with this "
                             "(e.g. queue., usage.kips)")
    hist_p.add_argument("--since", type=float, default=None,
                        help="only samples newer than this UNIX time")
    hist_p.add_argument("--limit", type=int, default=None,
                        help="newest N samples per series")
    hist_p.add_argument("--series", default=None,
                        help="print this one series' points "
                             "(time value per line)")
    hist_p.add_argument("--json", action="store_true",
                        help="print the raw /v1/history payload")
    hist_p.set_defaults(func=cmd_history)

    fetch_p = sub.add_parser(
        "fetch",
        help="fetch a stored artifact by digest (sha256-verified), "
             "or a job's results by job id")
    fetch_p.add_argument("digest",
                         help="a SHA-256 digest, or a job-... id "
                              "(fetches its result set)")
    fetch_p.add_argument("--url", default="http://127.0.0.1:8642")
    fetch_p.add_argument("--tenant", default="default")
    fetch_p.add_argument("--report", action="store_true",
                         help="with a job id: fetch the markdown "
                              "report instead of the result set")
    fetch_p.add_argument("--output", "-o", default=None,
                         help="write here instead of stdout")
    fetch_p.set_defaults(func=cmd_fetch)

    size_p = sub.add_parser(
        "sample-size",
        help="Leveugle DATE'09 statistical campaign sizing")
    size_p.add_argument("--population", type=int, default=None)
    size_p.add_argument("--confidence", type=float, default=0.99)
    size_p.add_argument("--margin", type=float, default=0.01)
    size_p.set_defaults(func=cmd_sample_size)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # `gemfi history | head` (or any table command piped into a
        # pager that exits early) closes stdout mid-print; point the
        # fd at devnull so the interpreter-exit flush stays quiet too.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
