"""MiniC intrinsic functions.

Intrinsics compile to inline instruction sequences or syscalls rather
than calls; the GemFI API pair (``fi_activate_inst`` /
``fi_read_init_all``) compiles to the pseudo-instructions of opcode 0x01,
exactly like the paper's m5op-based intrinsics (Listing 2).
"""

from __future__ import annotations

from ..system import syscalls as sc

INT = "int"
FLOAT = "float"


def _same_as_arg(arg_types: list[str]) -> str:
    return arg_types[0] if arg_types else INT


# name -> return type (or callable(arg_types) -> type).
INTRINSIC_TYPES: dict[str, object] = {
    "fi_activate_inst": INT,
    "fi_read_init_all": INT,
    "print_int": INT,
    "print_float": INT,
    "print_char": INT,
    "print_str": INT,
    "exit": INT,
    "getpid": INT,
    "sched_yield": INT,
    "ticks": INT,
    "float": FLOAT,
    "int": INT,
    "sqrt": FLOAT,
    "abs": _same_as_arg,
    "spawn": INT,
    "join": INT,
    "min": lambda ts: FLOAT if FLOAT in ts else INT,
    "max": lambda ts: FLOAT if FLOAT in ts else INT,
}

# Syscall numbers for the straightforward syscall-backed intrinsics.
SYSCALL_INTRINSICS = {
    "print_int": sc.SYS_PRINT_INT,
    "print_float": sc.SYS_PRINT_FLOAT,
    "print_char": sc.SYS_PRINT_CHAR,
    "exit": sc.SYS_EXIT,
    "getpid": sc.SYS_GETPID,
    "sched_yield": sc.SYS_YIELD,
    "ticks": sc.SYS_TICKS,
    "join": sc.SYS_JOIN,
}

ARG_COUNTS = {
    "fi_activate_inst": 1,
    "fi_read_init_all": 0,
    "print_int": 1,
    "print_float": 1,
    "print_char": 1,
    "print_str": 1,
    "exit": 1,
    "getpid": 0,
    "sched_yield": 0,
    "ticks": 0,
    "float": 1,
    "int": 1,
    "sqrt": 1,
    "abs": 1,
    "spawn": 2,
    "join": 1,
    "min": 2,
    "max": 2,
}
