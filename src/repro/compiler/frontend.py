"""MiniC front end: parsing, symbols and type inference.

MiniC is a restricted, statically-typed language with Python *syntax*
(parsed with :mod:`ast`) compiled to the Alpha-like ISA.  It substitutes
for the paper's GCC Alpha cross-compiler: benchmarks written in MiniC get
real register allocation, loop nests, call frames and memory traffic, so
fault-injection outcomes depend on the same structural properties as the
paper's compiled C codes.

Supported subset
----------------
* two scalar types: ``int`` (i64) and ``float`` (IEEE-754 binary64);
* module-level declarations: scalar globals (``N = 10``), arrays
  (``A = iarray(64)``, ``B = farray(16)``, ``C = iarray_init([1, 2])``,
  ``D = farray_init([0.5, 2.0])``) and functions;
* statements: assignment, augmented assignment, ``if``/``elif``/``else``,
  ``while``, ``for i in range(...)``, ``break``/``continue``, ``return``,
  expression statements;
* expressions: literals, variables, 1-D array indexing, arithmetic,
  comparisons, boolean logic, calls, and the intrinsics listed in
  :mod:`repro.compiler.intrinsics`.

Parameters default to ``int``; annotate with ``: float`` for FP.  A
function returning ``float`` must annotate ``-> float`` (or be inferable
from its return expressions).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

INT = "int"
FLOAT = "float"

ARRAY_DECLS = {"iarray": INT, "farray": FLOAT,
               "iarray_init": INT, "farray_init": FLOAT}
# Function-local (stack-allocated) arrays.
LOCAL_ARRAY_DECLS = {"ilocal": INT, "flocal": FLOAT}


class CompileError(Exception):
    """Any MiniC front-end or code-generation error."""

    def __init__(self, message: str, node: ast.AST | None = None) -> None:
        if node is not None and hasattr(node, "lineno"):
            message = f"line {node.lineno}: {message}"
        super().__init__(message)


@dataclass
class ArrayInfo:
    name: str
    elem_type: str
    size: int
    init: list | None = None

    @property
    def label(self) -> str:
        return f"g_{self.name}"


@dataclass
class GlobalScalar:
    name: str
    type: str
    init: int | float = 0

    @property
    def label(self) -> str:
        return f"g_{self.name}"


@dataclass
class FuncInfo:
    name: str
    params: list[tuple[str, str]]
    ret_type: str
    node: ast.FunctionDef
    locals_types: dict[str, str] = field(default_factory=dict)
    # name -> (elem_type, size) for stack-allocated ilocal()/flocal().
    local_arrays: dict[str, tuple[str, int]] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"fn_{self.name}"


@dataclass
class ProgramInfo:
    functions: dict[str, FuncInfo] = field(default_factory=dict)
    arrays: dict[str, ArrayInfo] = field(default_factory=dict)
    globals: dict[str, GlobalScalar] = field(default_factory=dict)

    def lookup_type(self, name: str) -> str | None:
        if name in self.globals:
            return self.globals[name].type
        return None


def parse_program(source: str) -> ProgramInfo:
    """Parse MiniC source and build the program-level symbol table."""
    try:
        module = ast.parse(source)
    except SyntaxError as exc:
        raise CompileError(f"syntax error: {exc}") from exc

    program = ProgramInfo()
    for node in module.body:
        if isinstance(node, ast.FunctionDef):
            _collect_function(program, node)
        elif isinstance(node, ast.Assign):
            _collect_global(program, node)
        elif isinstance(node, (ast.Expr, ast.AnnAssign)):
            raise CompileError(
                "only functions and global declarations are allowed at "
                "module level", node)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            continue  # tolerated so sources read as valid Python modules
        else:
            raise CompileError(
                f"unsupported module-level statement "
                f"{type(node).__name__}", node)
    if "main" not in program.functions:
        raise CompileError("program must define a main() function")
    if program.functions["main"].params:
        raise CompileError("main() takes no parameters")

    for func in program.functions.values():
        func.locals_types = _infer_locals(program, func)
    _infer_return_types(program)
    return program


# -- collection ----------------------------------------------------------------


def _collect_function(program: ProgramInfo, node: ast.FunctionDef) -> None:
    if node.name in program.functions:
        raise CompileError(f"duplicate function '{node.name}'", node)
    params: list[tuple[str, str]] = []
    args = node.args
    if args.vararg or args.kwonlyargs or args.kwarg or args.defaults \
            or args.posonlyargs:
        raise CompileError(
            "only plain positional parameters are supported", node)
    if len(args.args) > 6:
        raise CompileError("at most 6 parameters are supported", node)
    for arg in args.args:
        params.append((arg.arg, _annotation_type(arg.annotation)))
    ret_type = _annotation_type(node.returns) if node.returns else ""
    program.functions[node.name] = FuncInfo(
        name=node.name, params=params, ret_type=ret_type, node=node)


def _annotation_type(annotation) -> str:
    if annotation is None:
        return INT
    if isinstance(annotation, ast.Name) and annotation.id in (INT, FLOAT):
        return annotation.id
    if isinstance(annotation, ast.Constant) and annotation.value is None:
        return INT
    raise CompileError("annotations must be 'int' or 'float'", annotation)


def _collect_global(program: ProgramInfo, node: ast.Assign) -> None:
    if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
        raise CompileError("globals must be simple assignments", node)
    name = node.targets[0].id
    if name in program.arrays or name in program.globals:
        raise CompileError(f"duplicate global '{name}'", node)
    value = node.value

    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
            and value.func.id in ARRAY_DECLS:
        elem_type = ARRAY_DECLS[value.func.id]
        if value.func.id.endswith("_init"):
            init = _const_list(value, elem_type)
            program.arrays[name] = ArrayInfo(name, elem_type,
                                             len(init), init)
        else:
            if len(value.args) != 1:
                raise CompileError("array decl takes one size", node)
            size = _const_int(value.args[0])
            if size <= 0:
                raise CompileError("array size must be positive", node)
            program.arrays[name] = ArrayInfo(name, elem_type, size)
        return

    if isinstance(value, ast.Constant):
        if isinstance(value.value, bool) or not isinstance(
                value.value, (int, float)):
            raise CompileError("global initialiser must be int or float",
                               node)
        kind = FLOAT if isinstance(value.value, float) else INT
        program.globals[name] = GlobalScalar(name, kind, value.value)
        return
    if isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.USub) \
            and isinstance(value.operand, ast.Constant):
        inner = value.operand.value
        kind = FLOAT if isinstance(inner, float) else INT
        program.globals[name] = GlobalScalar(name, kind, -inner)
        return
    raise CompileError("unsupported global initialiser", node)


def _const_int(node) -> int:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    raise CompileError("expected integer constant", node)


def _const_list(call: ast.Call, elem_type: str) -> list:
    if len(call.args) != 1 or not isinstance(call.args[0],
                                             (ast.List, ast.Tuple)):
        raise CompileError("expected a literal list of constants", call)
    out = []
    for element in call.args[0].elts:
        negative = False
        if isinstance(element, ast.UnaryOp) and \
                isinstance(element.op, ast.USub):
            negative = True
            element = element.operand
        if not isinstance(element, ast.Constant) or not isinstance(
                element.value, (int, float)):
            raise CompileError("array initialiser items must be numeric "
                               "constants", element)
        value = -element.value if negative else element.value
        if elem_type == FLOAT:
            value = float(value)
        elif isinstance(value, float):
            raise CompileError("float constant in int array", element)
        out.append(value)
    return out


# -- type inference ------------------------------------------------------------


def _infer_locals(program: ProgramInfo, func: FuncInfo) -> dict[str, str]:
    """Infer local-variable types from assignments (fixed point)."""
    types: dict[str, str] = dict(func.params)
    func.local_arrays = _collect_local_arrays(program, func)
    changed = True
    guard = 0
    while changed:
        changed = False
        guard += 1
        if guard > 20:  # pragma: no cover - defensive
            raise CompileError("type inference did not converge",
                               func.node)
        for node in ast.walk(func.node):
            target = None
            value_type = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                target = node.targets[0].id
                if target in func.local_arrays:
                    continue  # the ilocal()/flocal() declaration itself
                value_type = _expr_type(program, types, node.value,
                                        func.local_arrays)
            elif isinstance(node, ast.AugAssign) and \
                    isinstance(node.target, ast.Name):
                target = node.target.id
                value_type = _expr_type(program, types, node.value,
                                        func.local_arrays)
                existing = types.get(target)
                if existing is not None:
                    value_type = _merge(existing, value_type)
            elif isinstance(node, ast.For) and \
                    isinstance(node.target, ast.Name):
                target = node.target.id
                value_type = INT
            if target is None or value_type is None:
                continue
            if target in func.local_arrays:
                continue  # the declaration statement itself
            if target in program.arrays:
                raise CompileError(
                    f"cannot assign to array '{target}'", node)
            if target in program.globals:
                continue  # assignment to a global scalar
            if types.get(target) != value_type:
                types[target] = _merge(types.get(target), value_type)
                changed = True
    return types


def _merge(existing: str | None, new: str) -> str:
    if existing is None:
        return new
    if existing == new:
        return existing
    # int assigned into a float variable is fine; float into int promotes
    # the variable to float (one type per variable for its whole life).
    return FLOAT


def _expr_type(program: ProgramInfo, local_types: dict[str, str],
               node: ast.expr,
               local_arrays: dict | None = None) -> str:
    """Static type of an expression ('int' or 'float')."""
    from .intrinsics import INTRINSIC_TYPES

    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool):
            raise CompileError("bool literals are not supported", node)
        if isinstance(node.value, float):
            return FLOAT
        if isinstance(node.value, int):
            return INT
        raise CompileError("unsupported literal", node)
    if isinstance(node, ast.Name):
        if node.id in local_types:
            return local_types[node.id]
        if node.id in program.globals:
            return program.globals[node.id].type
        if node.id in program.arrays:
            raise CompileError(
                f"array '{node.id}' used without an index", node)
        return INT  # not yet inferred; the fixed point converges
    if isinstance(node, ast.Subscript):
        if not isinstance(node.value, ast.Name):
            raise CompileError("only arrays can be indexed", node)
        name = node.value.id
        if name in program.arrays:
            return program.arrays[name].elem_type
        if local_arrays and name in local_arrays:
            return local_arrays[name][0]
        raise CompileError(
            f"'{name}' is not a global or local array", node)
    if isinstance(node, ast.BinOp):
        left = _expr_type(program, local_types, node.left,
                          local_arrays)
        right = _expr_type(program, local_types, node.right,
                           local_arrays)
        if isinstance(node.op, ast.Div):
            return FLOAT
        if isinstance(node.op, (ast.FloorDiv, ast.Mod)):
            if left == FLOAT or right == FLOAT:
                raise CompileError("// and % need integer operands", node)
            return INT
        if isinstance(node.op, (ast.LShift, ast.RShift, ast.BitAnd,
                                ast.BitOr, ast.BitXor)):
            if left == FLOAT or right == FLOAT:
                raise CompileError("bitwise ops need integer operands",
                                   node)
            return INT
        return FLOAT if FLOAT in (left, right) else INT
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.Not):
            return INT
        return _expr_type(program, local_types, node.operand,
                          local_arrays)
    if isinstance(node, (ast.Compare, ast.BoolOp)):
        return INT
    if isinstance(node, ast.Call):
        if not isinstance(node.func, ast.Name):
            raise CompileError("only direct calls are supported", node)
        name = node.func.id
        if name in INTRINSIC_TYPES:
            ret = INTRINSIC_TYPES[name]
            if callable(ret):
                arg_types = [_expr_type(program, local_types, a,
                                        local_arrays)
                             for a in node.args]
                return ret(arg_types)
            return ret
        if name in program.functions:
            return program.functions[name].ret_type or INT
        raise CompileError(f"unknown function '{name}'", node)
    if isinstance(node, ast.IfExp):
        body = _expr_type(program, local_types, node.body,
                          local_arrays)
        orelse = _expr_type(program, local_types, node.orelse,
                            local_arrays)
        return _merge(body, orelse)
    raise CompileError(
        f"unsupported expression {type(node).__name__}", node)


def _infer_return_types(program: ProgramInfo) -> None:
    """Infer missing return types from return statements (two rounds, so
    forward calls settle)."""
    for _ in range(2):
        for func in program.functions.values():
            if func.node.returns is not None:
                continue  # explicitly annotated
            inferred = INT
            for node in ast.walk(func.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    t = _expr_type(program, func.locals_types,
                                   node.value, func.local_arrays)
                    if t == FLOAT:
                        inferred = FLOAT
            func.ret_type = inferred


def expr_type(program: ProgramInfo, func: FuncInfo,
              node: ast.expr) -> str:
    """Public expression-type helper used by the code generator."""
    return _expr_type(program, func.locals_types, node,
                      func.local_arrays)


def _collect_local_arrays(program: ProgramInfo,
                          func: FuncInfo) -> dict[str, tuple[str, int]]:
    """Find ``name = ilocal(N)`` / ``flocal(N)`` declarations."""
    arrays: dict[str, tuple[str, int]] = {}
    for node in ast.walk(func.node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id in LOCAL_ARRAY_DECLS):
            continue
        name = node.targets[0].id
        if name in arrays:
            raise CompileError(
                f"local array '{name}' declared twice", node)
        if name in program.arrays or name in program.globals:
            raise CompileError(
                f"'{name}' shadows a global declaration", node)
        size = _const_int(node.value.args[0]) \
            if len(node.value.args) == 1 else 0
        if not 0 < size <= 4096:
            raise CompileError(
                "local array size must be a constant in [1, 4096]",
                node)
        arrays[name] = (LOCAL_ARRAY_DECLS[node.value.func.id], size)
    return arrays
