"""MiniC compiler: Python-syntax MiniC -> Alpha-like assembly."""

from .codegen import ModuleCodegen, compile_source
from .frontend import (
    ArrayInfo,
    CompileError,
    FLOAT,
    FuncInfo,
    GlobalScalar,
    INT,
    ProgramInfo,
    parse_program,
)

__all__ = [
    "ArrayInfo", "CompileError", "FLOAT", "FuncInfo", "GlobalScalar",
    "INT", "ModuleCodegen", "ProgramInfo", "compile_source",
    "parse_program",
]
