"""MiniC code generator: AST -> Alpha-like assembly.

Register conventions (Alpha ABI):

* expression temporaries: ``t0``-``t11`` (caller-saved) for integers,
  ``f10``-``f15``/``f22``-``f30`` for floats;
* the first six integer/float scalar locals live in callee-saved
  registers ``s0``-``s5`` / ``f2``-``f9`` — loop iterators therefore sit
  in integer registers that are live across long spans, the property the
  paper's Fig. 5 analysis attributes the high crash rate of integer
  register faults to;
* remaining locals spill to the stack frame; arrays are global;
* arguments in ``a0``-``a5`` / ``f16``-``f21`` by position, results in
  ``v0`` / ``f0``; ``at`` (r28) is the addressing scratch register.

Temporaries live in an explicit free list; values in flight across a
call are spilled to a per-frame call-save area (re-entrant for nested
calls in argument lists).
"""

from __future__ import annotations

import ast

from .frontend import (
    CompileError,
    FLOAT,
    FuncInfo,
    INT,
    ProgramInfo,
    expr_type,
    parse_program,
)
from .intrinsics import ARG_COUNTS, INTRINSIC_TYPES, SYSCALL_INTRINSICS

INT_TEMPS = [f"t{i}" for i in range(12)]
FP_TEMPS = [f"f{i}" for i in range(10, 16)] + \
    [f"f{i}" for i in range(22, 31)]
INT_SAVED = [f"s{i}" for i in range(6)]
FP_SAVED = [f"f{i}" for i in range(2, 10)]
CALL_SAVE_SLOTS = 64

_INT_BINOPS = {
    ast.Add: "addq", ast.Sub: "subq", ast.Mult: "mulq",
    ast.FloorDiv: "divq", ast.Mod: "remq", ast.BitAnd: "and",
    ast.BitOr: "bis", ast.BitXor: "xor", ast.LShift: "sll",
    ast.RShift: "sra",
}
_FP_BINOPS = {
    ast.Add: "addt", ast.Sub: "subt", ast.Mult: "mult", ast.Div: "divt",
}
# (mnemonic, swap operands, invert result)
_INT_COMPARES = {
    ast.Eq: ("cmpeq", False, False),
    ast.NotEq: ("cmpeq", False, True),
    ast.Lt: ("cmplt", False, False),
    ast.LtE: ("cmple", False, False),
    ast.Gt: ("cmplt", True, False),
    ast.GtE: ("cmple", True, False),
}
_FP_COMPARES = {
    ast.Eq: ("cmpteq", False, False),
    ast.NotEq: ("cmpteq", False, True),
    ast.Lt: ("cmptlt", False, False),
    ast.LtE: ("cmptle", False, False),
    ast.Gt: ("cmptlt", True, False),
    ast.GtE: ("cmptle", True, False),
}


class _FunctionCodegen:
    """Code generation context for one function."""

    def __init__(self, module: "ModuleCodegen", func: FuncInfo) -> None:
        self.module = module
        self.program = module.program
        self.func = func
        self.lines: list[str] = []
        self.int_free = list(INT_TEMPS)
        self.fp_free = list(FP_TEMPS)
        self.cs_depth = 0
        self.max_cs_depth = 0
        self._label_counter = 0
        self._loop_stack: list[tuple[str, str]] = []
        self.storage: dict[str, tuple[str, object]] = {}
        self._layout_frame()

    # -- frame layout ------------------------------------------------------------

    def _layout_frame(self) -> None:
        func = self.func
        int_regs = list(INT_SAVED)
        fp_regs = list(FP_SAVED)
        stack_slots = 0
        # Parameters first (they are also locals), then other locals in
        # first-appearance order.
        names = [name for name, _ in func.params]
        for name in func.locals_types:
            if name not in names:
                names.append(name)
        for name in names:
            kind = func.locals_types[name]
            if kind == INT and int_regs:
                self.storage[name] = ("ireg", int_regs.pop(0))
            elif kind == FLOAT and fp_regs:
                self.storage[name] = ("freg", fp_regs.pop(0))
            else:
                self.storage[name] = ("stack", stack_slots)
                stack_slots += 1
        # Stack-allocated local arrays follow the scalar spill slots.
        self.local_array_info: dict[str, tuple[int, str, int]] = {}
        for name, (elem_type, size) in func.local_arrays.items():
            self.local_array_info[name] = (stack_slots, elem_type, size)
            stack_slots += size
        self.used_int_saved = [r for r in INT_SAVED if r not in int_regs]
        self.used_fp_saved = [r for r in FP_SAVED if r not in fp_regs]
        self.stack_local_slots = stack_slots
        # Frame: ra | saved int | saved fp | stack locals | call-save.
        self.saved_base = 8
        self.locals_base = self.saved_base + 8 * (
            len(self.used_int_saved) + len(self.used_fp_saved))
        self.callsave_base = self.locals_base + 8 * stack_slots
        frame = self.callsave_base + 8 * CALL_SAVE_SLOTS
        self.frame_size = (frame + 15) & ~15

    def _local_offset(self, slot: int) -> int:
        return self.locals_base + 8 * slot

    # -- emission helpers ----------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("    " + text)

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f".{hint}_{self.func.name}_{self._label_counter}"

    # -- temp management --------------------------------------------------------------

    def alloc(self, kind: str) -> str:
        pool = self.int_free if kind == INT else self.fp_free
        if not pool:
            raise CompileError(
                f"expression too deep: out of {kind} temporaries in "
                f"function '{self.func.name}'")
        return pool.pop(0)

    def free(self, reg: str) -> None:
        if reg in INT_TEMPS:
            self.int_free.insert(0, reg)
        elif reg in FP_TEMPS:
            self.fp_free.insert(0, reg)
        # saved registers and ABI registers are never pool-managed

    def _in_use(self) -> list[str]:
        return [r for r in INT_TEMPS if r not in self.int_free] + \
            [r for r in FP_TEMPS if r not in self.fp_free]

    # -- function skeleton -----------------------------------------------------------

    def generate(self) -> list[str]:
        func = self.func
        body_lines = self._generate_body()
        out: list[str] = [f"{func.label}:"]
        out.append(f"    lda sp, -{self.frame_size}(sp)")
        out.append("    stq ra, 0(sp)")
        offset = self.saved_base
        for reg in self.used_int_saved:
            out.append(f"    stq {reg}, {offset}(sp)")
            offset += 8
        for reg in self.used_fp_saved:
            out.append(f"    stt {reg}, {offset}(sp)")
            offset += 8
        # Move incoming arguments into their storage.
        for index, (name, kind) in enumerate(func.params):
            where, loc = self.storage[name]
            if kind == INT:
                src = f"a{index}"
                if where == "ireg":
                    out.append(f"    mov {src}, {loc}")
                else:
                    out.append(
                        f"    stq {src}, {self._local_offset(loc)}(sp)")
            else:
                src = f"f{16 + index}"
                if where == "freg":
                    out.append(f"    fmov {src}, {loc}")
                else:
                    out.append(
                        f"    stt {src}, {self._local_offset(loc)}(sp)")
        out.extend(body_lines)
        # Epilogue.
        out.append(f".Lret_{func.name}:")
        out.append("    ldq ra, 0(sp)")
        offset = self.saved_base
        for reg in self.used_int_saved:
            out.append(f"    ldq {reg}, {offset}(sp)")
            offset += 8
        for reg in self.used_fp_saved:
            out.append(f"    ldt {reg}, {offset}(sp)")
            offset += 8
        out.append(f"    lda sp, {self.frame_size}(sp)")
        out.append("    ret")
        return out

    def _generate_body(self) -> list[str]:
        body = self.func.node.body
        start = 0
        if body and isinstance(body[0], ast.Expr) and \
                isinstance(body[0].value, ast.Constant) and \
                isinstance(body[0].value.value, str):
            start = 1  # docstring
        for stmt in body[start:]:
            self.stmt(stmt)
        # Fall-through return (value 0 / 0.0).
        if self.func.ret_type == FLOAT:
            self.emit("fmov f31, f0")
        else:
            self.emit("clr v0")
        return self.lines

    # -- statements ----------------------------------------------------------------------

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            self._stmt_assign(node)
        elif isinstance(node, ast.AugAssign):
            op_node = ast.BinOp(
                left=_load_of(node.target), op=node.op, right=node.value)
            ast.copy_location(op_node, node)
            ast.fix_missing_locations(op_node)
            assign = ast.Assign(targets=[node.target], value=op_node)
            ast.copy_location(assign, node)
            self._stmt_assign(assign)
        elif isinstance(node, ast.If):
            self._stmt_if(node)
        elif isinstance(node, ast.While):
            self._stmt_while(node)
        elif isinstance(node, ast.For):
            self._stmt_for(node)
        elif isinstance(node, ast.Return):
            self._stmt_return(node)
        elif isinstance(node, ast.Break):
            if not self._loop_stack:
                raise CompileError("break outside loop", node)
            self.emit(f"br {self._loop_stack[-1][0]}")
        elif isinstance(node, ast.Continue):
            if not self._loop_stack:
                raise CompileError("continue outside loop", node)
            self.emit(f"br {self._loop_stack[-1][1]}")
        elif isinstance(node, ast.Expr):
            kind, reg = self.expr(node.value)
            if reg is not None:
                self.free(reg)
        elif isinstance(node, ast.Pass):
            pass
        else:
            raise CompileError(
                f"unsupported statement {type(node).__name__}", node)

    def _stmt_assign(self, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            raise CompileError("chained assignment not supported", node)
        target = node.targets[0]
        if isinstance(target, ast.Name) and \
                target.id in self.local_array_info:
            if not (isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                    and node.value.func.id in ("ilocal", "flocal")):
                raise CompileError(
                    f"cannot reassign local array '{target.id}'", node)
            self._zero_local_array(target.id)
            return
        if isinstance(target, ast.Name):
            dest_type = self._name_type(target.id, node)
            kind, reg = self.expr(node.value)
            reg = self._coerce(kind, dest_type, reg)
            self._store_name(target.id, dest_type, reg, node)
            self.free(reg)
            return
        if isinstance(target, ast.Subscript):
            self._store_subscript(target, node.value)
            return
        raise CompileError("unsupported assignment target", node)

    def _stmt_if(self, node: ast.If) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif") if node.orelse else else_label
        self.cond_false(node.test, else_label)
        for stmt in node.body:
            self.stmt(stmt)
        if node.orelse:
            self.emit(f"br {end_label}")
            self.emit_label(else_label)
            for stmt in node.orelse:
                self.stmt(stmt)
        self.emit_label(end_label)

    def _stmt_while(self, node: ast.While) -> None:
        if node.orelse:
            raise CompileError("while/else not supported", node)
        top = self.new_label("wtop")
        end = self.new_label("wend")
        self.emit_label(top)
        self.cond_false(node.test, end)
        self._loop_stack.append((end, top))
        for stmt in node.body:
            self.stmt(stmt)
        self._loop_stack.pop()
        self.emit(f"br {top}")
        self.emit_label(end)

    def _stmt_for(self, node: ast.For) -> None:
        if node.orelse:
            raise CompileError("for/else not supported", node)
        if not isinstance(node.target, ast.Name):
            raise CompileError("for target must be a variable", node)
        call = node.iter
        if not (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id == "range" and 1 <= len(call.args) <= 3):
            raise CompileError("for loops iterate over range(...)", node)
        var = node.target.id
        if len(call.args) == 1:
            start_node: ast.expr = ast.Constant(value=0)
            ast.copy_location(start_node, node)
            stop_node = call.args[0]
            step = 1
        else:
            start_node = call.args[0]
            stop_node = call.args[1]
            step = 1
            if len(call.args) == 3:
                step = _const_step(call.args[2])

        kind, reg = self.expr(start_node)
        reg = self._coerce(kind, INT, reg)
        self._store_name(var, INT, reg, node)
        self.free(reg)

        top = self.new_label("ftop")
        cont = self.new_label("fcont")
        end = self.new_label("fend")
        self.emit_label(top)
        # Loop condition: i < stop (or i > stop for negative step).
        ikind, ireg = self._load_name(var, node)
        skind, sreg = self.expr(stop_node)
        sreg = self._coerce(skind, INT, sreg)
        flag = self.alloc(INT)
        if step > 0:
            self.emit(f"cmplt {ireg}, {sreg}, {flag}")
        else:
            self.emit(f"cmplt {sreg}, {ireg}, {flag}")
        self.emit(f"beq {flag}, {end}")
        self.free(flag)
        self.free(sreg)
        self.free(ireg)

        self._loop_stack.append((end, cont))
        for stmt in node.body:
            self.stmt(stmt)
        self._loop_stack.pop()

        self.emit_label(cont)
        _, ireg = self._load_name(var, node)
        if 0 <= step < 256:
            self.emit(f"addq {ireg}, {step}, {ireg}")
        elif -256 < step < 0:
            self.emit(f"subq {ireg}, {-step}, {ireg}")
        else:
            raise CompileError("range step must be within (-256, 256)",
                               node)
        self._store_name(var, INT, ireg, node)
        self.free(ireg)
        self.emit(f"br {top}")
        self.emit_label(end)

    def _stmt_return(self, node: ast.Return) -> None:
        ret_type = self.func.ret_type or INT
        if node.value is not None:
            kind, reg = self.expr(node.value)
            reg = self._coerce(kind, ret_type, reg)
            if ret_type == FLOAT:
                self.emit(f"fmov {reg}, f0")
            else:
                self.emit(f"mov {reg}, v0")
            self.free(reg)
        else:
            if ret_type == FLOAT:
                self.emit("fmov f31, f0")
            else:
                self.emit("clr v0")
        self.emit(f"br .Lret_{self.func.name}")

    # -- conditions -----------------------------------------------------------------------

    def cond_false(self, node: ast.expr, false_label: str) -> None:
        """Emit code that branches to *false_label* when the condition is
        false and falls through when true."""
        if isinstance(node, ast.BoolOp):
            if isinstance(node.op, ast.And):
                for value in node.values:
                    self.cond_false(value, false_label)
                return
            true_label = self.new_label("ortrue")
            for value in node.values[:-1]:
                self.cond_true(value, true_label)
            self.cond_false(node.values[-1], false_label)
            self.emit_label(true_label)
            return
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            self.cond_true(node.operand, false_label)
            return
        if isinstance(node, ast.Compare):
            self._compare_branch(node, false_label, branch_when_true=False)
            return
        if isinstance(node, ast.Constant):
            if not node.value:
                self.emit(f"br {false_label}")
            return
        kind, reg = self.expr(node)
        if kind == FLOAT:
            self.emit(f"fbeq {reg}, {false_label}")
        else:
            self.emit(f"beq {reg}, {false_label}")
        self.free(reg)

    def cond_true(self, node: ast.expr, true_label: str) -> None:
        """Branch to *true_label* when the condition is true."""
        if isinstance(node, ast.BoolOp):
            if isinstance(node.op, ast.Or):
                for value in node.values:
                    self.cond_true(value, true_label)
                return
            false_label = self.new_label("andfalse")
            for value in node.values[:-1]:
                self.cond_false(value, false_label)
            self.cond_true(node.values[-1], true_label)
            self.emit_label(false_label)
            return
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            self.cond_false(node.operand, true_label)
            return
        if isinstance(node, ast.Compare):
            self._compare_branch(node, true_label, branch_when_true=True)
            return
        if isinstance(node, ast.Constant):
            if node.value:
                self.emit(f"br {true_label}")
            return
        kind, reg = self.expr(node)
        if kind == FLOAT:
            self.emit(f"fbne {reg}, {true_label}")
        else:
            self.emit(f"bne {reg}, {true_label}")
        self.free(reg)

    def _compare_branch(self, node: ast.Compare, label: str,
                        branch_when_true: bool) -> None:
        flag, invert = self._compare_flag(node)
        want_taken = branch_when_true != invert
        if isinstance(flag, tuple):  # float flag register
            reg = flag[1]
            self.emit(f"{'fbne' if want_taken else 'fbeq'} {reg}, {label}")
            self.free(reg)
        else:
            self.emit(f"{'bne' if want_taken else 'beq'} {flag}, {label}")
            self.free(flag)

    def _compare_flag(self, node: ast.Compare):
        """Evaluate a comparison into a flag.  Returns (reg, invert) for
        int flags, ((FLOAT, reg), invert) for FP flag registers."""
        if len(node.ops) != 1 or len(node.comparators) != 1:
            raise CompileError("chained comparisons not supported", node)
        left_t = expr_type(self.program, self.func, node.left)
        right_t = expr_type(self.program, self.func,
                            node.comparators[0])
        use_float = FLOAT in (left_t, right_t)
        table = _FP_COMPARES if use_float else _INT_COMPARES
        entry = table.get(type(node.ops[0]))
        if entry is None:
            raise CompileError(
                f"unsupported comparison {type(node.ops[0]).__name__}",
                node)
        mnemonic, swap, invert = entry
        lkind, lreg = self.expr(node.left)
        rkind, rreg = self.expr(node.comparators[0])
        if use_float:
            lreg = self._coerce(lkind, FLOAT, lreg)
            rreg = self._coerce(rkind, FLOAT, rreg)
            a, b = (rreg, lreg) if swap else (lreg, rreg)
            flag = self.alloc(FLOAT)
            self.emit(f"{mnemonic} {a}, {b}, {flag}")
            self.free(lreg)
            self.free(rreg)
            return (FLOAT, flag), invert
        a, b = (rreg, lreg) if swap else (lreg, rreg)
        flag = self.alloc(INT)
        self.emit(f"{mnemonic} {a}, {b}, {flag}")
        self.free(lreg)
        self.free(rreg)
        return flag, invert

    # -- expressions -----------------------------------------------------------------------

    def expr(self, node: ast.expr) -> tuple[str, str]:
        """Generate code computing *node*; returns (type, temp register).
        The caller owns (and must free) the returned register."""
        if isinstance(node, ast.Constant):
            return self._expr_const(node)
        if isinstance(node, ast.Name):
            return self._load_name(node.id, node)
        if isinstance(node, ast.Subscript):
            return self._load_subscript(node)
        if isinstance(node, ast.BinOp):
            return self._expr_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._expr_unary(node)
        if isinstance(node, ast.Compare):
            return self._expr_compare_value(node)
        if isinstance(node, ast.BoolOp):
            return self._expr_bool_value(node)
        if isinstance(node, ast.Call):
            return self._expr_call(node)
        if isinstance(node, ast.IfExp):
            return self._expr_ifexp(node)
        raise CompileError(
            f"unsupported expression {type(node).__name__}", node)

    def _expr_const(self, node: ast.Constant) -> tuple[str, str]:
        value = node.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise CompileError("unsupported literal", node)
        if isinstance(value, float):
            reg = self.alloc(FLOAT)
            if value == 0.0:
                self.emit(f"fmov f31, {reg}")
            else:
                label = self.module.float_const(value)
                self.emit(f"la at, {label}")
                self.emit(f"ldt {reg}, 0(at)")
            return FLOAT, reg
        reg = self.alloc(INT)
        if -(1 << 31) <= value < (1 << 31) - (1 << 15):
            self.emit(f"ldi {reg}, {value}")
        else:
            label = self.module.int_const(value)
            self.emit(f"la at, {label}")
            self.emit(f"ldq {reg}, 0(at)")
        return INT, reg

    def _name_type(self, name: str, node) -> str:
        if name in self.local_array_info:
            raise CompileError(
                f"local array '{name}' used without an index", node)
        if name in self.func.locals_types:
            return self.func.locals_types[name]
        if name in self.program.globals:
            return self.program.globals[name].type
        if name in self.program.arrays:
            raise CompileError(
                f"array '{name}' used without an index", node)
        raise CompileError(f"unknown variable '{name}'", node)

    def _load_name(self, name: str, node) -> tuple[str, str]:
        kind = self._name_type(name, node)
        if name in self.storage:
            where, loc = self.storage[name]
            if where == "ireg":
                reg = self.alloc(INT)
                self.emit(f"mov {loc}, {reg}")
                return kind, reg
            if where == "freg":
                reg = self.alloc(FLOAT)
                self.emit(f"fmov {loc}, {reg}")
                return kind, reg
            reg = self.alloc(kind)
            insn = "ldq" if kind == INT else "ldt"
            self.emit(f"{insn} {reg}, {self._local_offset(loc)}(sp)")
            return kind, reg
        scalar = self.program.globals[name]
        reg = self.alloc(kind)
        self.emit(f"la at, {scalar.label}")
        self.emit(f"{'ldq' if kind == INT else 'ldt'} {reg}, 0(at)")
        return kind, reg

    def _store_name(self, name: str, kind: str, reg: str, node) -> None:
        if name in self.storage:
            where, loc = self.storage[name]
            if where == "ireg":
                self.emit(f"mov {reg}, {loc}")
            elif where == "freg":
                self.emit(f"fmov {reg}, {loc}")
            else:
                insn = "stq" if kind == INT else "stt"
                self.emit(f"{insn} {reg}, {self._local_offset(loc)}(sp)")
            return
        if name in self.program.globals:
            scalar = self.program.globals[name]
            self.emit(f"la at, {scalar.label}")
            self.emit(f"{'stq' if kind == INT else 'stt'} {reg}, 0(at)")
            return
        raise CompileError(f"unknown variable '{name}'", node)

    def _zero_local_array(self, name: str) -> None:
        """Stack memory holds whatever earlier frames left behind;
        declarations zero their slots for Python-like semantics."""
        base_slot, _, size = self.local_array_info[name]
        if size <= 16:
            for slot in range(size):
                offset = self._local_offset(base_slot + slot)
                self.emit(f"stq zero, {offset}(sp)")
            return
        counter = self.alloc(INT)
        addr = self.alloc(INT)
        self.emit(f"lda {addr}, {self._local_offset(base_slot)}(sp)")
        self.emit(f"ldi {counter}, {size}")
        top = self.new_label("zloop")
        self.emit_label(top)
        self.emit(f"stq zero, 0({addr})")
        self.emit(f"addq {addr}, 8, {addr}")
        self.emit(f"subq {counter}, 1, {counter}")
        self.emit(f"bgt {counter}, {top}")
        self.free(addr)
        self.free(counter)

    def _array_addr(self, node: ast.Subscript) -> tuple[str, str]:
        """Compute the element address; returns (elem_type, addr_reg)."""
        if not isinstance(node.value, ast.Name):
            raise CompileError("only arrays can be indexed", node)
        name = node.value.id
        kind, ireg = self.expr(node.slice)
        if kind != INT:
            raise CompileError("array index must be an int", node)
        addr = self.alloc(INT)
        if name in self.local_array_info:
            base_slot, elem_type, _ = self.local_array_info[name]
            self.emit(f"s8addq {ireg}, sp, {addr}")
            self.emit(f"lda {addr}, "
                      f"{self._local_offset(base_slot)}({addr})")
            self.free(ireg)
            return elem_type, addr
        if name not in self.program.arrays:
            raise CompileError(
                f"'{name}' is not a global or local array", node)
        array = self.program.arrays[name]
        self.emit(f"la at, {array.label}")
        self.emit(f"s8addq {ireg}, at, {addr}")
        self.free(ireg)
        return array.elem_type, addr

    def _load_subscript(self, node: ast.Subscript) -> tuple[str, str]:
        elem_type, addr = self._array_addr(node)
        reg = self.alloc(elem_type)
        self.emit(f"{'ldq' if elem_type == INT else 'ldt'} {reg}, "
                  f"0({addr})")
        self.free(addr)
        return elem_type, reg

    def _store_subscript(self, target: ast.Subscript,
                         value: ast.expr) -> None:
        kind, reg = self.expr(value)
        elem_type, addr = self._array_addr(target)
        reg = self._coerce(kind, elem_type, reg)
        self.emit(f"{'stq' if elem_type == INT else 'stt'} {reg}, "
                  f"0({addr})")
        self.free(addr)
        self.free(reg)

    def _expr_binop(self, node: ast.BinOp) -> tuple[str, str]:
        left_t = expr_type(self.program, self.func, node.left)
        right_t = expr_type(self.program, self.func, node.right)
        use_float = isinstance(node.op, ast.Div) or \
            FLOAT in (left_t, right_t)
        if use_float:
            if type(node.op) not in _FP_BINOPS:
                raise CompileError(
                    f"operator {type(node.op).__name__} not supported on "
                    "floats", node)
            lk, lreg = self.expr(node.left)
            lreg = self._coerce(lk, FLOAT, lreg)
            rk, rreg = self.expr(node.right)
            rreg = self._coerce(rk, FLOAT, rreg)
            self.emit(f"{_FP_BINOPS[type(node.op)]} {lreg}, {rreg}, "
                      f"{lreg}")
            self.free(rreg)
            return FLOAT, lreg
        if type(node.op) not in _INT_BINOPS:
            raise CompileError(
                f"operator {type(node.op).__name__} not supported", node)
        _, lreg = self.expr(node.left)
        # Tiny-literal fast path mirrors what a real compiler emits.
        if isinstance(node.right, ast.Constant) and \
                isinstance(node.right.value, int) and \
                0 <= node.right.value < 256 and \
                not isinstance(node.right.value, bool):
            self.emit(f"{_INT_BINOPS[type(node.op)]} {lreg}, "
                      f"{node.right.value}, {lreg}")
            return INT, lreg
        _, rreg = self.expr(node.right)
        self.emit(f"{_INT_BINOPS[type(node.op)]} {lreg}, {rreg}, {lreg}")
        self.free(rreg)
        return INT, lreg

    def _expr_unary(self, node: ast.UnaryOp) -> tuple[str, str]:
        if isinstance(node.op, ast.Not):
            kind, reg = self.expr(node.operand)
            if kind == FLOAT:
                raise CompileError("'not' needs an int operand", node)
            self.emit(f"cmpeq {reg}, 0, {reg}")
            return INT, reg
        if isinstance(node.op, ast.USub):
            kind, reg = self.expr(node.operand)
            if kind == FLOAT:
                self.emit(f"fneg {reg}, {reg}")
            else:
                self.emit(f"negq {reg}, {reg}")
            return kind, reg
        if isinstance(node.op, ast.UAdd):
            return self.expr(node.operand)
        if isinstance(node.op, ast.Invert):
            kind, reg = self.expr(node.operand)
            if kind == FLOAT:
                raise CompileError("'~' needs an int operand", node)
            self.emit(f"not {reg}, {reg}")
            return INT, reg
        raise CompileError("unsupported unary operator", node)

    def _expr_compare_value(self, node: ast.Compare) -> tuple[str, str]:
        flag, invert = self._compare_flag(node)
        if isinstance(flag, tuple):
            freg = flag[1]
            reg = self.alloc(INT)
            done = self.new_label("fcmp")
            self.emit(f"ldi {reg}, {0 if not invert else 1}")
            self.emit(f"fbeq {freg}, {done}")
            self.emit(f"ldi {reg}, {1 if not invert else 0}")
            self.emit_label(done)
            self.free(freg)
            return INT, reg
        if invert:
            self.emit(f"xor {flag}, 1, {flag}")
        return INT, flag

    def _expr_bool_value(self, node: ast.BoolOp) -> tuple[str, str]:
        reg = self.alloc(INT)
        end = self.new_label("bool")
        if isinstance(node.op, ast.And):
            false_label = self.new_label("boolf")
            self.cond_false(node, false_label)
            self.emit(f"ldi {reg}, 1")
            self.emit(f"br {end}")
            self.emit_label(false_label)
            self.emit(f"ldi {reg}, 0")
        else:
            true_label = self.new_label("boolt")
            self.cond_true(node, true_label)
            self.emit(f"ldi {reg}, 0")
            self.emit(f"br {end}")
            self.emit_label(true_label)
            self.emit(f"ldi {reg}, 1")
        self.emit_label(end)
        return INT, reg

    def _expr_ifexp(self, node: ast.IfExp) -> tuple[str, str]:
        body_t = expr_type(self.program, self.func, node.body)
        orelse_t = expr_type(self.program, self.func, node.orelse)
        result_t = FLOAT if FLOAT in (body_t, orelse_t) else INT
        result = self.alloc(result_t)
        else_label = self.new_label("ifexp_else")
        end = self.new_label("ifexp_end")
        self.cond_false(node.test, else_label)
        kind, reg = self.expr(node.body)
        reg = self._coerce(kind, result_t, reg)
        self._move(reg, result, result_t)
        self.free(reg)
        self.emit(f"br {end}")
        self.emit_label(else_label)
        kind, reg = self.expr(node.orelse)
        reg = self._coerce(kind, result_t, reg)
        self._move(reg, result, result_t)
        self.free(reg)
        self.emit_label(end)
        return result_t, result

    def _move(self, src: str, dst: str, kind: str) -> None:
        if src == dst:
            return
        self.emit(f"{'fmov' if kind == FLOAT else 'mov'} {src}, {dst}")

    # -- calls -----------------------------------------------------------------------------

    def _expr_call(self, node: ast.Call) -> tuple[str, str]:
        if not isinstance(node.func, ast.Name):
            raise CompileError("only direct calls are supported", node)
        name = node.func.id
        if node.keywords:
            raise CompileError("keyword arguments not supported", node)
        if name in INTRINSIC_TYPES:
            return self._expr_intrinsic(name, node)
        if name not in self.program.functions:
            raise CompileError(f"unknown function '{name}'", node)
        callee = self.program.functions[name]
        if len(node.args) != len(callee.params):
            raise CompileError(
                f"{name}() takes {len(callee.params)} arguments, "
                f"got {len(node.args)}", node)

        saved = self._spill_live()
        arg_regs: list[tuple[str, str]] = []
        for arg_node, (_, param_t) in zip(node.args, callee.params):
            kind, reg = self.expr(arg_node)
            reg = self._coerce(kind, param_t, reg)
            arg_regs.append((param_t, reg))
        for index, (param_t, reg) in enumerate(arg_regs):
            if param_t == INT:
                self.emit(f"mov {reg}, a{index}")
            else:
                self.emit(f"fmov {reg}, f{16 + index}")
            self.free(reg)
        self.emit(f"bsr ra, {callee.label}")
        ret_t = callee.ret_type or INT
        # Reload spilled temporaries first: v0/f0 are outside the temp
        # pool, so the result survives; allocating the result register
        # afterwards guarantees it cannot collide with a reloaded temp.
        self._reload_live(saved)
        result = self.alloc(ret_t)
        self._move("f0" if ret_t == FLOAT else "v0", result, ret_t)
        return ret_t, result

    def _expr_intrinsic(self, name: str, node: ast.Call) -> \
            tuple[str, str]:
        expected = ARG_COUNTS[name]
        if len(node.args) != expected:
            raise CompileError(
                f"{name}() takes {expected} argument(s)", node)

        if name == "fi_read_init_all":
            self.emit("fi_read_init")
            reg = self.alloc(INT)
            self.emit(f"clr {reg}")
            return INT, reg
        if name == "fi_activate_inst":
            kind, reg = self.expr(node.args[0])
            reg = self._coerce(kind, INT, reg)
            self.emit(f"mov {reg}, a0")
            self.emit("fi_activate")
            self.emit(f"clr {reg}")
            return INT, reg
        if name == "float":
            kind, reg = self.expr(node.args[0])
            return FLOAT, self._coerce(kind, FLOAT, reg)
        if name == "int":
            kind, reg = self.expr(node.args[0])
            return INT, self._coerce(kind, INT, reg)
        if name == "sqrt":
            kind, reg = self.expr(node.args[0])
            reg = self._coerce(kind, FLOAT, reg)
            self.emit(f"sqrtt {reg}, {reg}")
            return FLOAT, reg
        if name == "abs":
            kind, reg = self.expr(node.args[0])
            if kind == FLOAT:
                self.emit(f"cpys f31, {reg}, {reg}")
                return FLOAT, reg
            tmp = self.alloc(INT)
            self.emit(f"negq {reg}, {tmp}")
            self.emit(f"cmovge {reg}, {reg}, {tmp}")
            self.free(reg)
            return INT, tmp
        if name in ("min", "max"):
            left_t = expr_type(self.program, self.func, node.args[0])
            right_t = expr_type(self.program, self.func, node.args[1])
            use_float = FLOAT in (left_t, right_t)
            target_t = FLOAT if use_float else INT
            ak, areg = self.expr(node.args[0])
            areg = self._coerce(ak, target_t, areg)
            bk, breg = self.expr(node.args[1])
            breg = self._coerce(bk, target_t, breg)
            if use_float:
                flag = self.alloc(FLOAT)
                self.emit(f"cmptlt {areg}, {breg}, {flag}")
                # min: take a when a < b; max: take a when not (a < b).
                mnemonic = "fcmovne" if name == "min" else "fcmoveq"
                self.emit(f"{mnemonic} {flag}, {areg}, {breg}")
                self.free(flag)
                self.free(areg)
                return FLOAT, breg
            flag = self.alloc(INT)
            self.emit(f"cmplt {areg}, {breg}, {flag}")
            mnemonic = "cmovne" if name == "min" else "cmoveq"
            self.emit(f"{mnemonic} {flag}, {areg}, {breg}")
            self.free(flag)
            self.free(areg)
            return INT, breg
        if name == "spawn":
            # spawn(function_name, argument) -> thread pid.  The first
            # argument must name a user-defined function; its address is
            # materialised directly (there are no function pointers in
            # MiniC expressions).
            target = node.args[0]
            if not (isinstance(target, ast.Name)
                    and target.id in self.program.functions):
                raise CompileError(
                    "spawn() needs a user-defined function name as its "
                    "first argument", node)
            callee = self.program.functions[target.id]
            if len(callee.params) > 1:
                raise CompileError(
                    "spawned functions take at most one int argument",
                    node)
            kind, reg = self.expr(node.args[1])
            reg = self._coerce(kind, INT, reg)
            self.emit(f"mov {reg}, a1")
            self.free(reg)
            self.emit(f"la a0, {callee.label}")
            self.emit("ldi v0, 9")
            self.emit("callsys")
            result = self.alloc(INT)
            self._move("v0", result, INT)
            return INT, result
        if name == "print_str":
            arg = node.args[0]
            if not (isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)):
                raise CompileError(
                    "print_str takes a string literal", node)
            label, length = self.module.string_const(arg.value)
            self.emit("ldi a0, 1")
            self.emit(f"la a1, {label}")
            self.emit(f"ldi a2, {length}")
            self.emit("ldi v0, 1")
            self.emit("callsys")
            reg = self.alloc(INT)
            self.emit(f"clr {reg}")
            return INT, reg
        if name in SYSCALL_INTRINSICS:
            number = SYSCALL_INTRINSICS[name]
            if expected:
                kind, reg = self.expr(node.args[0])
                if name == "print_float":
                    reg = self._coerce(kind, FLOAT, reg)
                    self.emit(f"ftoit {reg}, a0")
                else:
                    reg = self._coerce(kind, INT, reg)
                    self.emit(f"mov {reg}, a0")
                self.free(reg)
            self.emit(f"ldi v0, {number}")
            self.emit("callsys")
            result = self.alloc(INT)
            self._move("v0", result, INT)
            return INT, result
        raise CompileError(f"unhandled intrinsic '{name}'", node)

    def _spill_live(self) -> list[tuple[str, int]]:
        live = self._in_use()
        saved: list[tuple[str, int]] = []
        for reg in live:
            slot = self.cs_depth
            self.cs_depth += 1
            if self.cs_depth > CALL_SAVE_SLOTS:
                raise CompileError(
                    "call nesting too deep: call-save area exhausted")
            self.max_cs_depth = max(self.max_cs_depth, self.cs_depth)
            offset = self.callsave_base + 8 * slot
            if reg in INT_TEMPS:
                self.emit(f"stq {reg}, {offset}(sp)")
                self.int_free.append(reg)
            else:
                self.emit(f"stt {reg}, {offset}(sp)")
                self.fp_free.append(reg)
            saved.append((reg, slot))
        return saved

    def _reload_live(self, saved: list[tuple[str, int]]) -> None:
        for reg, slot in reversed(saved):
            offset = self.callsave_base + 8 * slot
            if reg in INT_TEMPS:
                self.emit(f"ldq {reg}, {offset}(sp)")
                self.int_free.remove(reg)
            else:
                self.emit(f"ldt {reg}, {offset}(sp)")
                self.fp_free.remove(reg)
            self.cs_depth -= 1

    # -- coercion ---------------------------------------------------------------------------

    def _coerce(self, from_t: str, to_t: str, reg: str) -> str:
        """Convert *reg* to *to_t*, returning the (possibly new) register.
        Frees the input register when a new one is allocated."""
        if from_t == to_t:
            return reg
        if from_t == INT and to_t == FLOAT:
            freg = self.alloc(FLOAT)
            self.emit(f"itoft {reg}, {freg}")
            self.emit(f"cvtqt {freg}, {freg}")
            self.free(reg)
            return freg
        # float -> int: C-style truncation toward zero.
        tmp = self.alloc(FLOAT)
        self.emit(f"cvttq {reg}, {tmp}")
        ireg = self.alloc(INT)
        self.emit(f"ftoit {tmp}, {ireg}")
        self.free(tmp)
        self.free(reg)
        return ireg


def _load_of(target: ast.expr) -> ast.expr:
    """Build the load expression matching an assignment target."""
    if isinstance(target, ast.Name):
        node = ast.Name(id=target.id, ctx=ast.Load())
    elif isinstance(target, ast.Subscript):
        node = ast.Subscript(
            value=ast.Name(id=target.value.id, ctx=ast.Load())
            if isinstance(target.value, ast.Name) else target.value,
            slice=target.slice, ctx=ast.Load())
    else:
        raise CompileError("unsupported augmented-assignment target",
                           target)
    ast.copy_location(node, target)
    ast.fix_missing_locations(node)
    return node


def _const_step(node: ast.expr) -> int:
    negative = False
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        negative = True
        node = node.operand
    if not (isinstance(node, ast.Constant)
            and isinstance(node.value, int)):
        raise CompileError("range step must be an integer constant", node)
    step = -node.value if negative else node.value
    if step == 0:
        raise CompileError("range step must not be zero", node)
    return step


class ModuleCodegen:
    """Whole-program code generation."""

    def __init__(self, program: ProgramInfo) -> None:
        self.program = program
        self._float_consts: dict[float, str] = {}
        self._int_consts: dict[int, str] = {}
        self._strings: dict[str, tuple[str, int]] = {}

    def float_const(self, value: float) -> str:
        key = value
        if key not in self._float_consts:
            self._float_consts[key] = f"c_f{len(self._float_consts)}"
        return self._float_consts[key]

    def int_const(self, value: int) -> str:
        if value not in self._int_consts:
            self._int_consts[value] = f"c_i{len(self._int_consts)}"
        return self._int_consts[value]

    def string_const(self, text: str) -> tuple[str, int]:
        if text not in self._strings:
            label = f"c_s{len(self._strings)}"
            self._strings[text] = (label, len(text.encode("utf-8")))
        return self._strings[text]

    def generate(self) -> str:
        lines: list[str] = ["    .text"]
        # Entry wrapper: call fn_main, then exit(main's return value).
        lines.append("main:")
        lines.append("    bsr ra, fn_main")
        lines.append("    mov v0, a0")
        lines.append("    ldi v0, 0")
        lines.append("    callsys")
        for func in self.program.functions.values():
            gen = _FunctionCodegen(self, func)
            lines.extend(gen.generate())
        lines.append("    .data")
        for array in self.program.arrays.values():
            lines.append(f"{array.label}:")
            if array.init is None:
                lines.append(f"    .space {8 * array.size}")
            elif array.elem_type == INT:
                for value in array.init:
                    lines.append(f"    .quad {value}")
            else:
                for value in array.init:
                    lines.append(f"    .double {value!r}")
        for scalar in self.program.globals.values():
            lines.append(f"{scalar.label}:")
            if scalar.type == INT:
                lines.append(f"    .quad {int(scalar.init)}")
            else:
                lines.append(f"    .double {float(scalar.init)!r}")
        for value, label in self._int_consts.items():
            lines.append(f"{label}:")
            lines.append(f"    .quad {value}")
        for value, label in self._float_consts.items():
            lines.append(f"{label}:")
            lines.append(f"    .double {value!r}")
        for text, (label, _) in self._strings.items():
            escaped = text.replace("\\", "\\\\").replace('"', '\\"') \
                .replace("\n", "\\n").replace("\t", "\\t")
            lines.append(f"{label}:")
            lines.append(f'    .asciiz "{escaped}"')
        return "\n".join(lines) + "\n"


def compile_source(source: str) -> str:
    """Compile MiniC source text to assembly text."""
    program = parse_program(source)
    return ModuleCodegen(program).generate()
