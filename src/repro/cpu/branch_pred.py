"""Tournament branch predictor (the paper's validation platform couples
the core with a tournament predictor, Section IV).

Classic Alpha-21264-style arrangement: a local predictor (per-branch
history feeding saturating counters), a global predictor (shared history
register) and a chooser that learns which of the two to trust per global
history.  A branch target buffer (BTB) supplies indirect-jump targets and
a return-address stack (RAS) predicts subroutine returns.
"""

from __future__ import annotations

from ..isa import instructions as ins
from ..isa.instructions import Decoded


class _CounterTable:
    """A table of 2-bit saturating counters."""

    __slots__ = ("counters", "mask")

    def __init__(self, size: int, init: int = 1) -> None:
        if size & (size - 1):
            raise ValueError("table size must be a power of two")
        self.counters = [init] * size
        self.mask = size - 1

    def taken(self, index: int) -> bool:
        return self.counters[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        index &= self.mask
        value = self.counters[index]
        if taken:
            if value < 3:
                self.counters[index] = value + 1
        elif value > 0:
            self.counters[index] = value - 1


class TournamentPredictor:
    """Local + global + chooser, with BTB and RAS."""

    def __init__(self, local_size: int = 1024, global_size: int = 4096,
                 btb_size: int = 4096, ras_depth: int = 16) -> None:
        self.local_history = [0] * local_size
        self.local_counters = _CounterTable(local_size)
        self.global_counters = _CounterTable(global_size)
        self.chooser = _CounterTable(global_size, init=2)
        self.global_history = 0
        self._local_mask = local_size - 1
        self._global_mask = global_size - 1
        self.btb: dict[int, int] = {}
        self.btb_size = btb_size
        self.ras: list[int] = []
        self.ras_depth = ras_depth
        self.lookups = 0
        self.mispredicts = 0

    # -- prediction -------------------------------------------------------------

    def predict(self, pc: int, d: Decoded) -> tuple[bool, int]:
        """Predict (taken, next_pc) for a control instruction at *pc*."""
        self.lookups += 1
        fallthrough = pc + 4
        if d.kind == ins.KIND_BR:
            target = fallthrough + 4 * d.disp
            if d.opcode == ins.OP_BSR or d.ra == 26:
                self._push_ras(fallthrough)
            return True, target
        if d.kind == ins.KIND_JUMP:
            if d.ra == 31 and self.ras:  # looks like a return
                return True, self.ras.pop()
            self._push_ras(fallthrough)
            target = self.btb.get(pc)
            return True, target if target is not None else fallthrough
        # Conditional branch: tournament direction prediction.
        local_index = (pc >> 2) & self._local_mask
        local_hist = self.local_history[local_index]
        local_taken = self.local_counters.taken(local_hist)
        global_taken = self.global_counters.taken(self.global_history)
        use_global = self.chooser.taken(self.global_history)
        taken = global_taken if use_global else local_taken
        if taken:
            target = self.btb.get(pc, fallthrough + 4 * d.disp)
            return True, target
        return False, fallthrough

    # -- training ----------------------------------------------------------------

    def update(self, pc: int, d: Decoded, taken: bool,
               actual_next: int, predicted_next: int) -> None:
        if actual_next != predicted_next:
            self.mispredicts += 1
        if d.kind in (ins.KIND_BRANCH, ins.KIND_FBRANCH):
            local_index = (pc >> 2) & self._local_mask
            local_hist = self.local_history[local_index]
            local_taken = self.local_counters.taken(local_hist)
            global_taken = self.global_counters.taken(self.global_history)
            if local_taken != global_taken:
                self.chooser.update(self.global_history,
                                    global_taken == taken)
            self.local_counters.update(local_hist, taken)
            self.global_counters.update(self.global_history, taken)
            self.local_history[local_index] = \
                ((local_hist << 1) | taken) & self.local_counters.mask
            self.global_history = \
                ((self.global_history << 1) | taken) & self._global_mask
        if taken:
            self._learn_target(pc, actual_next)

    def _learn_target(self, pc: int, target: int) -> None:
        if len(self.btb) >= self.btb_size and pc not in self.btb:
            self.btb.pop(next(iter(self.btb)))
        self.btb[pc] = target

    def _push_ras(self, address: int) -> None:
        self.ras.append(address)
        if len(self.ras) > self.ras_depth:
            self.ras.pop(0)

    # -- stats / checkpoint --------------------------------------------------------

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict:
        return {
            "local_history": list(self.local_history),
            "local_counters": list(self.local_counters.counters),
            "global_counters": list(self.global_counters.counters),
            "chooser": list(self.chooser.counters),
            "global_history": self.global_history,
            "btb": dict(self.btb),
            "ras": list(self.ras),
            "lookups": self.lookups,
            "mispredicts": self.mispredicts,
        }

    def restore(self, snap: dict) -> None:
        self.local_history = list(snap["local_history"])
        self.local_counters.counters = list(snap["local_counters"])
        self.global_counters.counters = list(snap["global_counters"])
        self.chooser.counters = list(snap["chooser"])
        self.global_history = snap["global_history"]
        self.btb = dict(snap["btb"])
        self.ras = list(snap["ras"])
        self.lookups = snap["lookups"]
        self.mispredicts = snap["mispredicts"]
