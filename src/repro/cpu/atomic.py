"""AtomicSimple CPU model: one instruction per tick, no memory timing.

The fastest of gem5's four models and the one the paper's campaign
methodology switches *to* once the injected fault has committed or
squashed (Section IV.B.1).
"""

from __future__ import annotations

from .base import Core


class AtomicSimpleCPU:
    """1-IPC functional model."""

    model_name = "atomic"

    def __init__(self, core: Core) -> None:
        self.core = core

    def step(self) -> tuple[int, int]:
        """Serve one instruction; returns (ticks, instructions)."""
        self.core.serve_instruction(timing=False)
        return 1, 1

    def drain(self) -> None:
        """No internal state to flush (model-switch support)."""
        bus = self.core.bus
        if bus is not None:
            bus.emit("cpu_drain", model=self.model_name)

    def snapshot(self) -> dict:
        return {}

    def restore(self, snap: dict) -> None:
        pass
