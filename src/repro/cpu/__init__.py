"""The four gem5 CPU models: atomic, timing, in-order and O3."""

from .atomic import AtomicSimpleCPU
from .base import Core, StepResult
from .branch_pred import TournamentPredictor
from .inorder import InOrderCPU
from .o3 import O3CPU
from .timing import TimingSimpleCPU

CPU_MODELS = {
    "atomic": AtomicSimpleCPU,
    "timing": TimingSimpleCPU,
    "inorder": InOrderCPU,
    "o3": O3CPU,
}

__all__ = [
    "AtomicSimpleCPU", "Core", "CPU_MODELS", "InOrderCPU", "O3CPU",
    "StepResult", "TimingSimpleCPU", "TournamentPredictor",
]
