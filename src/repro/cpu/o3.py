"""O3 CPU model: speculative, superscalar, out-of-order timing.

The front end fetches and decodes along the *predicted* path (tournament
predictor + BTB + RAS) into a reorder buffer.  GemFI's fetch- and
decode-stage hooks fire at front-end time, so faults can land on
wrong-path instructions and be absorbed when the branch resolves — the
squash behaviour the paper's methodology depends on ("the simulation
continues until the affected instruction commits or squashes").

The back end executes architecturally *at commit*, in program order, so
functional results are bit-identical to AtomicSimple; out-of-orderness is
captured by a dataflow scoreboard (per-register ready cycles, per-class
latencies, commit width) that determines how many instructions retire per
cycle.  Mispredicted branches squash all younger in-flight entries and
pay a redirect penalty.
"""

from __future__ import annotations

from ..isa import instructions as ins
from ..isa.disasm import disassemble
from ..isa.registers import MASK64
from ..isa.traps import SimTrap
from .base import Core
from .branch_pred import TournamentPredictor
from .inorder import op_latency

_FRONTEND_DEPTH = 3      # fetch-to-issue pipeline stages
_MISPREDICT_PENALTY = 8  # redirect bubbles


class _Entry:
    """One reorder-buffer slot."""

    __slots__ = ("pc", "decoded", "pred_next", "fetch_cycle",
                 "exception", "serializing", "result", "complete", "seq")

    def __init__(self, pc: int, decoded, pred_next: int,
                 fetch_cycle: int, exception: SimTrap | None = None,
                 serializing: bool = False, seq: int = 0) -> None:
        self.pc = pc
        self.decoded = decoded
        self.pred_next = pred_next
        self.fetch_cycle = fetch_cycle
        self.exception = exception
        self.serializing = serializing
        self.result = None       # cached execution outcome (execute once)
        self.complete = 0        # scoreboard completion cycle
        self.seq = seq           # lifetime fetch order (gemfi pipeview)


class O3CPU:
    """Out-of-order model with speculation and squash."""

    model_name = "o3"

    def __init__(self, core: Core, rob_size: int = 64,
                 fetch_width: int = 4, commit_width: int = 4,
                 predictor: TournamentPredictor | None = None) -> None:
        self.core = core
        self.rob_size = rob_size
        self.fetch_width = fetch_width
        self.commit_width = commit_width
        self.predictor = predictor or TournamentPredictor()
        self.cycle = 0
        self.rob: list[_Entry] = []
        self.fetch_pc = None        # None = follow arch.pc
        self.fetch_stall_until = 0
        self.fetch_blocked = False  # waiting on a serializing instruction
        self.reg_ready: dict[tuple[str, int], int] = {}
        self.squashed_instructions = 0
        self.rob_hwm = 0            # ROB occupancy high-water mark
        self.rename_stalls = 0      # cycles the frontend found the ROB full
        self.fetch_seq = 0          # lifetime fetch counter (pipeview ids)

    def _next_seq(self) -> int:
        self.fetch_seq += 1
        return self.fetch_seq

    # -- the per-cycle step -------------------------------------------------------

    def step(self) -> tuple[int, int]:
        """Advance at least one cycle; returns (ticks, committed).

        The cycle counter can jump forward when the ROB head needs
        several cycles to complete; the jump is reported in ``ticks`` so
        the simulator's global tick clock stays aligned.
        """
        start = self.cycle
        self.cycle += 1
        self._frontend()
        if len(self.rob) > self.rob_hwm:
            self.rob_hwm = len(self.rob)
        committed = self._commit()
        return self.cycle - start, committed

    # -- front end ------------------------------------------------------------------

    def _frontend(self) -> None:
        core = self.core
        if self.fetch_blocked or self.cycle < self.fetch_stall_until:
            return
        if len(self.rob) >= self.rob_size:
            self.rename_stalls += 1
            return
        if self.fetch_pc is None:
            self.fetch_pc = core.arch.pc
        fi_thread = core.fi_thread
        inj = core.injector if fi_thread is not None else None

        fetched = 0
        while fetched < self.fetch_width and len(self.rob) < self.rob_size:
            pc = self.fetch_pc & MASK64
            try:
                word, fetch_lat = core.hier.fetch(pc)
            except SimTrap as trap:
                # Deferred: the fault only matters if this entry commits.
                self.rob.append(_Entry(pc, None, pc + 4, self.cycle,
                                       exception=trap,
                                       seq=self._next_seq()))
                self.fetch_blocked = True
                return
            if fetch_lat > 1:
                self.fetch_stall_until = self.cycle + fetch_lat - 1
            if inj is not None and inj.hot_fetch:
                word = inj.on_fetch(core, fi_thread, pc, word)
            try:
                decoded = core.decode_cache.decode(word)
            except SimTrap as trap:
                self.rob.append(_Entry(pc, None, pc + 4, self.cycle,
                                       exception=trap,
                                       seq=self._next_seq()))
                self.fetch_blocked = True
                return
            if inj is not None and inj.hot_decode:
                decoded = inj.on_decode(core, fi_thread, pc, decoded)

            serializing = decoded.kind in (ins.KIND_PAL, ins.KIND_FI)
            if decoded.is_control():
                _, pred_next = self.predictor.predict(pc, decoded)
            else:
                pred_next = pc + 4
            self.rob.append(_Entry(pc, decoded, pred_next & MASK64,
                                   self.cycle, serializing=serializing,
                                   seq=self._next_seq()))
            self.fetch_pc = pred_next & MASK64
            fetched += 1
            if serializing:
                self.fetch_blocked = True
                return
            if fetch_lat > 1:
                return  # icache miss: group ends here

    # -- back end -------------------------------------------------------------------

    def _commit(self) -> int:
        core = self.core
        committed = 0
        while committed < self.commit_width and self.rob:
            entry = self.rob[0]
            if entry.exception is not None:
                # The faulting fetch/decode reached the commit point:
                # the exception becomes architectural.
                raise entry.exception
            decoded = entry.decoded
            fi_thread = core.fi_thread
            inj = core.injector if fi_thread is not None else None

            if entry.result is None:
                # Dataflow scoreboard: when can this instruction complete?
                ready = entry.fetch_cycle + _FRONTEND_DEPTH
                for src in decoded.src_regs():
                    ready = max(ready, self.reg_ready.get(src, 0))
                # Architectural execution happens exactly once, at the
                # head of the ROB, in program order.
                entry.result = core.execute(decoded, entry.pc, timing=True)
                entry.complete = max(ready, self.cycle) + \
                    max(op_latency(decoded), entry.result.ticks) - 1
            if entry.complete > self.cycle:
                if committed:
                    break  # retire the rest on a later cycle
                self.cycle = entry.complete
            result = entry.result
            self._retire(entry, result, inj, fi_thread)
            committed += 1
            if decoded.is_control() or entry.serializing:
                redirect = self._resolve_control(entry, result)
                if redirect:
                    break
        return committed

    def _retire(self, entry: _Entry, result, inj, fi_thread) -> None:
        core = self.core
        decoded = entry.decoded
        if inj is not None and inj.has_watches:
            inj.observe(decoded)
        for dest in decoded.dest_regs():
            self.reg_ready[dest] = entry.complete
        core.arch.pc = result.next_pc
        core.committed += 1
        inj_all = core.injector
        if inj_all is not None and inj_all.trace_hot:
            inj_all.on_trace(core, entry.pc, decoded, result)
        bus = core.bus
        if bus is not None and bus.pipe_trace:
            bus.emit("pipe_inst", seq=entry.seq, pc=entry.pc,
                     fetch=entry.fetch_cycle, complete=entry.complete,
                     commit=self.cycle,
                     asm=disassemble(decoded, pc=entry.pc))
        if inj is not None and inj.hot_regfile:
            pc_changed = inj.on_commit(core, fi_thread, entry.pc)
            if pc_changed:
                # A PC fault at commit redirects the whole machine.
                self.squash()
                return
        self.rob.pop(0)

    def _resolve_control(self, entry: _Entry, result) -> bool:
        """Train the predictor; squash and redirect on mispredict.
        Returns True when the pipeline was redirected."""
        decoded = entry.decoded
        actual_next = self.core.arch.pc
        if decoded is not None and decoded.is_control():
            self.predictor.update(entry.pc, decoded, result.taken,
                                  actual_next, entry.pred_next)
        if entry.serializing:
            self.fetch_blocked = False
            self._redirect(actual_next, penalty=0)
            return True
        if actual_next != entry.pred_next:
            self._redirect(actual_next, penalty=_MISPREDICT_PENALTY)
            return True
        return False

    def _redirect(self, target: int, penalty: int) -> None:
        self._note_squash(self.rob, "mispredict")
        self.squashed_instructions += len(self.rob)
        self.rob.clear()
        self.fetch_pc = target & MASK64
        self.fetch_blocked = False
        self.fetch_stall_until = self.cycle + penalty

    def squash(self) -> None:
        """Flush every speculative instruction and refetch from the
        architectural PC (used for PC-fault redirects and model switch)."""
        self._note_squash(self.rob, "flush")
        self.squashed_instructions += len(self.rob)
        self.rob.clear()
        self.fetch_pc = None
        self.fetch_blocked = False

    def _note_squash(self, entries: list[_Entry], reason: str) -> None:
        if not entries:
            return
        bus = self.core.bus
        if bus is None:
            return
        bus.emit("cpu_squash", model=self.model_name,
                 squashed=len(entries), reason=reason)
        if bus.pipe_trace:
            for entry in entries:
                asm = ("" if entry.decoded is None
                       else disassemble(entry.decoded, pc=entry.pc))
                bus.emit("pipe_squash", seq=entry.seq, pc=entry.pc,
                         fetch=entry.fetch_cycle, squash=self.cycle,
                         reason=reason, asm=asm)

    def drain(self) -> None:
        """Flush speculative state before a model switch or preemption.

        The ROB head may already have *executed* (architectural side
        effects applied) while waiting out its completion latency; it
        must be retired — not discarded — or the instruction would
        re-execute after the flush and double-apply its effects.
        Younger entries never execute before reaching the head, so they
        are safe to squash.
        """
        if self.rob and self.rob[0].result is not None:
            entry = self.rob[0]
            core = self.core
            fi_thread = core.fi_thread
            inj = core.injector if fi_thread is not None else None
            self.cycle = max(self.cycle, entry.complete)
            self._retire(entry, entry.result, inj, fi_thread)
        bus = self.core.bus
        if bus is not None:
            bus.emit("cpu_drain", model=self.model_name)
        self.squash()

    # -- checkpoint -------------------------------------------------------------------

    def snapshot(self) -> dict:
        # Speculative state is never checkpointed: a drained pipeline
        # restarts cleanly from the architectural PC (this mirrors the
        # pipeline-flush caveat of gem5 checkpointing, Section III.D).
        return {
            "cycle": self.cycle,
            "squashed": self.squashed_instructions,
            "rob_hwm": self.rob_hwm,
            "rename_stalls": self.rename_stalls,
            "predictor": self.predictor.snapshot(),
        }

    def restore(self, snap: dict) -> None:
        self.cycle = snap["cycle"]
        self.squashed_instructions = snap["squashed"]
        self.rob_hwm = snap.get("rob_hwm", 0)
        self.rename_stalls = snap.get("rename_stalls", 0)
        self.predictor.restore(snap["predictor"])
        self.rob.clear()
        self.fetch_pc = None
        self.fetch_blocked = False
        self.fetch_stall_until = 0
        self.reg_ready.clear()
