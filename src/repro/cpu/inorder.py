"""InOrder CPU model: a pipelined, in-order core.

Models the timing effects of a classic five-stage pipeline on top of the
shared functional flow: load-use interlocks, taken-branch bubbles and
multi-cycle functional units.  Architectural results are identical to
AtomicSimple by construction; only the tick accounting differs.
"""

from __future__ import annotations

from ..isa import instructions as ins
from .base import Core

# Execute-stage latencies per instruction class (cycles).
_LATENCY = {
    "mul": 3,
    "div": 12,
    "fp": 4,
    "fpdiv": 12,
    "default": 1,
}

_TAKEN_BRANCH_BUBBLES = 2
_LOAD_USE_STALL = 1


def op_latency(d: ins.Decoded) -> int:
    """Execute latency of a decoded instruction (shared with O3)."""
    if d.kind == ins.KIND_ALU and d.opcode == ins.OP_INTM:
        return _LATENCY["div"] if d.name in ("divq", "remq") \
            else _LATENCY["mul"]
    if d.kind in (ins.KIND_FPALU, ins.KIND_FCMOV):
        return _LATENCY["fpdiv"] if d.name in ("divt", "sqrtt") \
            else _LATENCY["fp"]
    return _LATENCY["default"]


class InOrderCPU:
    """Five-stage in-order pipeline timing model."""

    model_name = "inorder"

    def __init__(self, core: Core) -> None:
        self.core = core
        self._pending_load_dests: set[tuple[str, int]] = set()

    def step(self) -> tuple[int, int]:
        core = self.core
        result = core.serve_instruction(timing=True)
        decoded = result.decoded
        ticks = max(result.ticks, op_latency(decoded))

        # Load-use interlock: the previous instruction was a load whose
        # destination this instruction reads.
        if self._pending_load_dests:
            sources = set(decoded.src_regs())
            if sources & self._pending_load_dests:
                ticks += _LOAD_USE_STALL
            self._pending_load_dests.clear()

        if decoded.kind in (ins.KIND_LOAD, ins.KIND_FLOAD):
            self._pending_load_dests = set(decoded.dest_regs())

        # Control hazards: taken branches flush the fetch bubble.
        if result.is_branch and result.taken:
            ticks += _TAKEN_BRANCH_BUBBLES
        return ticks, 1

    def drain(self) -> None:
        self._pending_load_dests.clear()
        bus = self.core.bus
        if bus is not None:
            bus.emit("cpu_drain", model=self.model_name)

    def snapshot(self) -> dict:
        return {"pending": sorted(self._pending_load_dests)}

    def restore(self, snap: dict) -> None:
        self._pending_load_dests = {tuple(t) for t in snap["pending"]}
