"""Core state and the shared instruction-execution flow.

Every CPU model serves each instruction through the same micro-phases
(Fig. 2 of the paper): fetch -> decode -> execute -> memory -> commit.
GemFI hooks wrap each phase; they are only invoked when the thread that
is running on the core has activated fault injection, so a core running
untargeted code pays nothing.

The functional semantics live here so that all four CPU models (atomic,
timing, in-order, O3) produce bit-identical architectural results — a
property the test suite checks and the paper's validation (Section IV.A)
relies on.
"""

from __future__ import annotations

from ..isa.instructions import (
    Decoded,
    DecodeCache,
    FI_ACTIVATE,
    KIND_ALU,
    KIND_BR,
    KIND_BRANCH,
    KIND_CMOV,
    KIND_FBRANCH,
    KIND_FCMOV,
    KIND_FLOAD,
    KIND_FPALU,
    KIND_FSTORE,
    KIND_FTOI,
    KIND_ITOF,
    KIND_JUMP,
    KIND_LDA,
    KIND_LOAD,
    KIND_PAL,
    KIND_STORE,
    PAL_CALLSYS,
    PAL_HALT,
)
from ..isa.registers import ArchState, MASK64
from ..isa.traps import HaltRequest


class CheckpointRequested(Exception):
    """Control-flow signal: a ``fi_read_init_all`` pseudo-instruction
    retired and the simulator must take a checkpoint *now* (before any
    further instruction — notably before the following
    ``fi_activate_inst`` — executes, so every restored experiment replays
    the activation itself)."""

    def __init__(self, next_pc: int) -> None:
        super().__init__("checkpoint requested")
        self.next_pc = next_pc


class StepResult:
    """What happened during one served instruction (timing models consume
    the latency fields; the simulator consumes the control fields)."""

    __slots__ = ("ticks", "decoded", "pc", "next_pc", "taken",
                 "is_branch", "mem_addr")

    def __init__(self, ticks: int = 1, decoded: Decoded | None = None,
                 pc: int = 0, next_pc: int = 0, taken: bool = False,
                 is_branch: bool = False,
                 mem_addr: int | None = None) -> None:
        self.ticks = ticks
        self.decoded = decoded
        self.pc = pc
        self.next_pc = next_pc
        self.taken = taken
        self.is_branch = is_branch
        self.mem_addr = mem_addr


class Core:
    """One hardware context: architectural state plus FI plumbing."""

    def __init__(self, name: str, hierarchy, injector=None,
                 decode_cache: DecodeCache | None = None) -> None:
        self.name = name
        self.hier = hierarchy
        self.mem = hierarchy.memory
        self.injector = injector
        self.decode_cache = decode_cache or DecodeCache()
        self.arch = ArchState()
        self.pcb_addr = 0
        self.fi_thread = None
        # Structured trace bus (repro.telemetry); None = telemetry off.
        # Tested only on rare paths (syscalls, drains), never in the
        # per-instruction flow.
        self.bus = None
        # Ablation mode (SimConfig.fi_hash_lookup_per_instruction):
        # consult the PCB hash table every instruction instead of
        # relying on the context-switch-maintained pointer.
        self.fi_hash_lookup = False
        self.committed = 0
        self.system = None   # set by System.attach_core

    # -- the shared five-phase instruction flow --------------------------------

    def serve_instruction(self, timing: bool = False) -> StepResult:
        """Fetch, decode, execute, access memory and commit exactly one
        instruction at the current PC.  Raises architectural traps.
        """
        arch = self.arch
        pc = arch.pc
        if self.fi_hash_lookup and self.injector is not None:
            self.fi_thread = self.injector.threads.lookup(
                self.pcb_addr)
        fi_thread = self.fi_thread
        inj = self.injector if fi_thread is not None else None

        # --- fetch ---
        if timing:
            word, fetch_lat = self.hier.fetch(pc)
        else:
            word, fetch_lat = self.mem.fetch(pc), 1
        if inj is not None and inj.frontend_hot:
            if inj.hot_fetch:
                word = inj.on_fetch(self, fi_thread, pc, word)
            decoded = self.decode_cache.decode(word)
            if inj.hot_decode:
                decoded = inj.on_decode(self, fi_thread, pc, decoded)
            if inj.has_watches:
                inj.observe(decoded)
        else:
            # --- decode ---
            decoded = self.decode_cache.decode(word)

        # --- execute / memory / writeback ---
        result = self.execute(decoded, pc, timing=timing)
        result.ticks = max(result.ticks, fetch_lat)
        result.pc = pc
        result.decoded = decoded

        # --- commit ---
        arch.pc = result.next_pc
        self.committed += 1
        # The def-use trace hook checks self.injector (not the
        # fi_thread-gated `inj`): it keeps recording after the FI window
        # deactivates, where liveness analysis still needs the stream.
        inj_all = self.injector
        if inj_all is not None and inj_all.trace_hot:
            inj_all.on_trace(self, pc, decoded, result)
        if inj is not None and inj.hot_regfile:
            inj.on_commit(self, fi_thread, pc)
        return result

    def execute(self, d: Decoded, pc: int,
                timing: bool = False) -> StepResult:
        """Execute a decoded instruction (phases 3-5).  ``arch.pc`` is not
        modified; the chosen next PC is returned so pipelined models can
        compare it with their prediction."""
        arch = self.arch
        intregs = arch.intregs
        fpregs = arch.fpregs
        fi_thread = self.fi_thread
        inj = self.injector if fi_thread is not None else None
        k = d.kind
        next_pc = (pc + 4) & MASK64
        ticks = 1

        if k == KIND_ALU:
            a = intregs.read(d.ra)
            b = d.lit if d.lit is not None else intregs.read(d.rb)
            res = d.op(a, b)
            if inj is not None and inj.hot_execute:
                res = inj.on_execute(self, fi_thread, pc, d, res)
            intregs.write(d.rc, res)
            return StepResult(ticks, next_pc=next_pc)

        if k == KIND_LOAD or k == KIND_FLOAD:
            addr = (intregs.read(d.rb) + d.disp) & MASK64
            if inj is not None and inj.hot_execute:
                addr = inj.on_execute(self, fi_thread, pc, d, addr)
            if timing:
                value, mem_lat = self.hier.read(addr, d.size, pc=pc)
                ticks += mem_lat
            else:
                value = self.mem.read(addr, d.size, pc=pc)
            if d.signed and d.size == 4:
                value = _sext32(value)
            if inj is not None and inj.hot_mem:
                value = inj.on_mem(self, fi_thread, pc, d, value, True,
                                   width=8 * d.size)
            if k == KIND_LOAD:
                intregs.write(d.ra, value)
            else:
                fpregs.write(d.ra, value)
            return StepResult(ticks, next_pc=next_pc, mem_addr=addr)

        if k == KIND_STORE or k == KIND_FSTORE:
            addr = (intregs.read(d.rb) + d.disp) & MASK64
            if inj is not None and inj.hot_execute:
                addr = inj.on_execute(self, fi_thread, pc, d, addr)
            value = (intregs.read(d.ra) if k == KIND_STORE
                     else fpregs.read(d.ra))
            if inj is not None and inj.hot_mem:
                value = inj.on_mem(self, fi_thread, pc, d, value, False,
                                   width=8 * d.size)
            if timing:
                ticks += self.hier.write(addr, d.size, value, pc=pc)
            else:
                self.mem.write(addr, d.size, value, pc=pc)
            return StepResult(ticks, next_pc=next_pc, mem_addr=addr)

        if k == KIND_BRANCH:
            a = intregs.read(d.ra)
            taken = d.op(a)
            if taken:
                next_pc = (pc + 4 + 4 * d.disp) & MASK64
            return StepResult(ticks, next_pc=next_pc, taken=taken,
                              is_branch=True)

        if k == KIND_LDA:
            res = (intregs.read(d.rb) + d.disp) & MASK64
            if inj is not None and inj.hot_execute:
                res = inj.on_execute(self, fi_thread, pc, d, res)
            intregs.write(d.ra, res)
            return StepResult(ticks, next_pc=next_pc)

        if k == KIND_FPALU:
            a = fpregs.read(d.ra)
            b = fpregs.read(d.rb)
            res = d.op(a, b)
            if inj is not None and inj.hot_execute:
                res = inj.on_execute(self, fi_thread, pc, d, res)
            fpregs.write(d.rc, res)
            return StepResult(ticks, next_pc=next_pc)

        if k == KIND_CMOV:
            a = intregs.read(d.ra)
            b = d.lit if d.lit is not None else intregs.read(d.rb)
            res = b if d.op(a) else intregs.read(d.rc)
            if inj is not None and inj.hot_execute:
                res = inj.on_execute(self, fi_thread, pc, d, res)
            intregs.write(d.rc, res)
            return StepResult(ticks, next_pc=next_pc)

        if k == KIND_FCMOV:
            a = fpregs.read(d.ra)
            b = fpregs.read(d.rb)
            res = b if d.op(a) else fpregs.read(d.rc)
            if inj is not None and inj.hot_execute:
                res = inj.on_execute(self, fi_thread, pc, d, res)
            fpregs.write(d.rc, res)
            return StepResult(ticks, next_pc=next_pc)

        if k == KIND_FBRANCH:
            a = fpregs.read(d.ra)
            taken = d.op(a)
            if taken:
                next_pc = (pc + 4 + 4 * d.disp) & MASK64
            return StepResult(ticks, next_pc=next_pc, taken=taken,
                              is_branch=True)

        if k == KIND_BR:
            intregs.write(d.ra, (pc + 4) & MASK64)
            next_pc = (pc + 4 + 4 * d.disp) & MASK64
            return StepResult(ticks, next_pc=next_pc, taken=True,
                              is_branch=True)

        if k == KIND_JUMP:
            target = intregs.read(d.rb) & ~3 & MASK64
            intregs.write(d.ra, (pc + 4) & MASK64)
            return StepResult(ticks, next_pc=target, taken=True,
                              is_branch=True)

        if k == KIND_ITOF:
            res = intregs.read(d.ra)
            if inj is not None and inj.hot_execute:
                res = inj.on_execute(self, fi_thread, pc, d, res)
            fpregs.write(d.rc, res)
            return StepResult(ticks, next_pc=next_pc)

        if k == KIND_FTOI:
            res = fpregs.read(d.ra)
            if inj is not None and inj.hot_execute:
                res = inj.on_execute(self, fi_thread, pc, d, res)
            intregs.write(d.rc, res)
            return StepResult(ticks, next_pc=next_pc)

        if k == KIND_PAL:
            if d.func == PAL_HALT:
                raise HaltRequest("halt instruction", pc=pc)
            if d.func == PAL_CALLSYS:
                if self.bus is not None:
                    self.bus.emit("syscall", pc=pc,
                                  number=intregs.read(0))
                self.system.syscall(self)
                return StepResult(ticks, next_pc=next_pc)
            # IMB: memory barrier, a no-op in this memory model.
            return StepResult(ticks, next_pc=next_pc)

        # KIND_FI: GemFI pseudo-instructions.
        if self.injector is not None:
            if d.func == FI_ACTIVATE:
                self.injector.handle_fi_activate(
                    self, thread_id=intregs.read(16))
            else:
                self.injector.handle_fi_read_init(self)
                # The simulator checkpoints synchronously, before the
                # upcoming fi_activate_inst can slip past the snapshot.
                raise CheckpointRequested(next_pc)
        return StepResult(ticks, next_pc=next_pc)

    # -- checkpoint support ------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "arch": self.arch.snapshot(),
            "pcb_addr": self.pcb_addr,
            "committed": self.committed,
        }

    def restore(self, snap: dict) -> None:
        self.arch.restore(snap["arch"])
        self.pcb_addr = snap["pcb_addr"]
        self.committed = snap["committed"]
        self.fi_thread = None


def _sext32(value: int) -> int:
    value &= 0xFFFFFFFF
    if value & 0x80000000:
        value |= ~0xFFFFFFFF & MASK64
    return value
