"""TimingSimple CPU model: AtomicSimple plus memory-reference timing.

Instructions still execute one at a time, but instruction fetches and
data accesses travel through the cache hierarchy and contribute their
modelled latencies to simulated time — gem5's ``TimingSimpleCPU``.
"""

from __future__ import annotations

from .base import Core


class TimingSimpleCPU:
    """1-wide in-order model with cache/memory latencies."""

    model_name = "timing"

    def __init__(self, core: Core) -> None:
        self.core = core

    def step(self) -> tuple[int, int]:
        result = self.core.serve_instruction(timing=True)
        return result.ticks, 1

    def drain(self) -> None:
        """No internal state to flush (model-switch support)."""
        bus = self.core.bus
        if bus is not None:
            bus.emit("cpu_drain", model=self.model_name)

    def snapshot(self) -> dict:
        return {}

    def restore(self, snap: dict) -> None:
        pass
