"""Disassembler for postmortem fault reports.

When GemFI injects a fault it logs the affected instruction; the paper
uses this information postmortem to correlate faults with outcomes
(Section IV.B.1).  This module renders decoded instructions in the same
textual form the assembler accepts.
"""

from __future__ import annotations

from . import instructions as ins
from .instructions import Decoded
from .registers import fp_reg_name, int_reg_name
from .traps import IllegalInstruction

_KIND_RENDERERS = {}


def disassemble_word(word: int, pc: int | None = None) -> str:
    """Disassemble a raw 32-bit word; illegal words render as ``.illegal``."""
    try:
        decoded = ins.decode(word)
    except IllegalInstruction:
        return f".illegal 0x{word:08x}"
    return disassemble(decoded, pc=pc)


def disassemble(d: Decoded, pc: int | None = None) -> str:
    """Render a decoded instruction as assembly text."""
    k = d.kind
    if k in (ins.KIND_ALU, ins.KIND_CMOV):
        if d.name in ("sextb", "sextw"):
            return f"{d.name} {int_reg_name(d.rb)}, {int_reg_name(d.rc)}"
        b_part = str(d.lit) if d.lit is not None else int_reg_name(d.rb)
        return f"{d.name} {int_reg_name(d.ra)}, {b_part}, " \
               f"{int_reg_name(d.rc)}"
    if k in (ins.KIND_FPALU, ins.KIND_FCMOV):
        if d.name in ("sqrtt", "cvttq", "cvtqt"):
            return f"{d.name} {fp_reg_name(d.rb)}, {fp_reg_name(d.rc)}"
        if d.name in ("sextb", "sextw"):
            return f"{d.name} {int_reg_name(d.rb)}, {int_reg_name(d.rc)}"
        return f"{d.name} {fp_reg_name(d.ra)}, {fp_reg_name(d.rb)}, " \
               f"{fp_reg_name(d.rc)}"
    if k == ins.KIND_ITOF:
        return f"itoft {int_reg_name(d.ra)}, {fp_reg_name(d.rc)}"
    if k == ins.KIND_FTOI:
        if d.name in ("sextb", "sextw"):
            return f"{d.name} {int_reg_name(d.rb)}, {int_reg_name(d.rc)}"
        return f"ftoit {fp_reg_name(d.ra)}, {int_reg_name(d.rc)}"
    if k in (ins.KIND_LOAD, ins.KIND_STORE, ins.KIND_LDA):
        return f"{d.name} {int_reg_name(d.ra)}, {d.disp}" \
               f"({int_reg_name(d.rb)})"
    if k in (ins.KIND_FLOAD, ins.KIND_FSTORE):
        return f"{d.name} {fp_reg_name(d.ra)}, {d.disp}" \
               f"({int_reg_name(d.rb)})"
    if k == ins.KIND_JUMP:
        return f"jmp {int_reg_name(d.ra)}, ({int_reg_name(d.rb)})"
    if k in (ins.KIND_BR, ins.KIND_BRANCH):
        target = _branch_target(d, pc)
        return f"{d.name} {int_reg_name(d.ra)}, {target}"
    if k == ins.KIND_FBRANCH:
        target = _branch_target(d, pc)
        return f"{d.name} {fp_reg_name(d.ra)}, {target}"
    if k in (ins.KIND_PAL, ins.KIND_FI):
        return d.name
    return f".unknown 0x{d.word:08x}"  # pragma: no cover - defensive


def _branch_target(d: Decoded, pc: int | None) -> str:
    if pc is None:
        return f".{d.disp:+d}"
    return f"0x{pc + 4 + 4 * d.disp:x}"
