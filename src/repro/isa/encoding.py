"""Bit-exact 32-bit instruction encodings (Alpha instruction formats).

This module implements Table I of the paper — the four Alpha instruction
formats — at the bit level, because the paper's fetch-stage fault analysis
correlates the *bit position* of an injected flip with the instruction
field it lands in (opcode, Ra, Rb, Rc, function, displacement, literal,
or unused/SBZ bits).

Formats (bit 31 is the MSB):

=========  =====================================================
PALcode    ``opcode[31:26]  palcode_function[25:0]``
Branch     ``opcode[31:26]  Ra[25:21]  displacement[20:0]``
Memory     ``opcode[31:26]  Ra[25:21]  Rb[20:16]  displacement[15:0]``
Operate    register form:
           ``opcode[31:26] Ra[25:21] Rb[20:16] SBZ[15:13] 0[12]
           function[11:5] Rc[4:0]``
           literal form:
           ``opcode[31:26] Ra[25:21] literal[20:13] 1[12]
           function[11:5] Rc[4:0]``
FP Operate ``opcode[31:26]  Fa[25:21]  Fb[20:16]  function[15:5]
           Fc[4:0]``
=========  =====================================================
"""

from __future__ import annotations

from enum import Enum

MASK32 = (1 << 32) - 1

OPCODE_SHIFT = 26
RA_SHIFT = 21
RB_SHIFT = 16
RC_SHIFT = 0

BRANCH_DISP_BITS = 21
MEM_DISP_BITS = 16
OPERATE_FUNC_SHIFT = 5
OPERATE_FUNC_BITS = 7
FP_FUNC_SHIFT = 5
FP_FUNC_BITS = 11
LIT_FLAG_BIT = 12
LIT_SHIFT = 13
LIT_BITS = 8
PAL_FUNC_BITS = 26


class Format(Enum):
    """The Alpha instruction formats of Table I."""

    PALCODE = "palcode"
    BRANCH = "branch"
    MEMORY = "memory"
    OPERATE = "operate"
    FP_OPERATE = "fp_operate"


class Field(Enum):
    """Instruction-word fields, used to classify injected fetch-bit flips."""

    OPCODE = "opcode"
    RA = "ra"
    RB = "rb"
    RC = "rc"
    FUNCTION = "function"
    DISPLACEMENT = "displacement"
    LITERAL = "literal"
    LIT_FLAG = "lit_flag"
    UNUSED = "unused"          # SBZ bits of the register-operate form
    PAL_FUNCTION = "pal_function"


def opcode_of(word: int) -> int:
    """Extract the 6-bit major opcode from an instruction word."""
    return (word >> OPCODE_SHIFT) & 0x3F


def ra_of(word: int) -> int:
    return (word >> RA_SHIFT) & 0x1F


def rb_of(word: int) -> int:
    return (word >> RB_SHIFT) & 0x1F


def rc_of(word: int) -> int:
    return word & 0x1F


def branch_disp_of(word: int) -> int:
    """Signed 21-bit branch displacement (in instructions)."""
    disp = word & ((1 << BRANCH_DISP_BITS) - 1)
    if disp & (1 << (BRANCH_DISP_BITS - 1)):
        disp -= 1 << BRANCH_DISP_BITS
    return disp


def mem_disp_of(word: int) -> int:
    """Signed 16-bit memory displacement (in bytes)."""
    disp = word & ((1 << MEM_DISP_BITS) - 1)
    if disp & (1 << (MEM_DISP_BITS - 1)):
        disp -= 1 << MEM_DISP_BITS
    return disp


def operate_func_of(word: int) -> int:
    return (word >> OPERATE_FUNC_SHIFT) & ((1 << OPERATE_FUNC_BITS) - 1)


def fp_func_of(word: int) -> int:
    return (word >> FP_FUNC_SHIFT) & ((1 << FP_FUNC_BITS) - 1)


def is_literal_form(word: int) -> bool:
    return bool((word >> LIT_FLAG_BIT) & 1)


def literal_of(word: int) -> int:
    """The 8-bit zero-extended literal of a literal-form operate."""
    return (word >> LIT_SHIFT) & ((1 << LIT_BITS) - 1)


def pal_func_of(word: int) -> int:
    return word & ((1 << PAL_FUNC_BITS) - 1)


def encode_palcode(opcode: int, func: int) -> int:
    _check_range(opcode, 6, "opcode")
    _check_range(func, PAL_FUNC_BITS, "pal function")
    return ((opcode << OPCODE_SHIFT) | func) & MASK32


def encode_branch(opcode: int, ra: int, disp: int) -> int:
    _check_range(opcode, 6, "opcode")
    _check_range(ra, 5, "Ra")
    _check_signed_range(disp, BRANCH_DISP_BITS, "branch displacement")
    return (
        (opcode << OPCODE_SHIFT)
        | (ra << RA_SHIFT)
        | (disp & ((1 << BRANCH_DISP_BITS) - 1))
    ) & MASK32


def encode_memory(opcode: int, ra: int, rb: int, disp: int) -> int:
    _check_range(opcode, 6, "opcode")
    _check_range(ra, 5, "Ra")
    _check_range(rb, 5, "Rb")
    _check_signed_range(disp, MEM_DISP_BITS, "memory displacement")
    return (
        (opcode << OPCODE_SHIFT)
        | (ra << RA_SHIFT)
        | (rb << RB_SHIFT)
        | (disp & ((1 << MEM_DISP_BITS) - 1))
    ) & MASK32


def encode_operate(opcode: int, ra: int, rb: int, func: int, rc: int) -> int:
    """Register-form integer operate instruction (SBZ bits are zero)."""
    _check_range(opcode, 6, "opcode")
    _check_range(ra, 5, "Ra")
    _check_range(rb, 5, "Rb")
    _check_range(func, OPERATE_FUNC_BITS, "function")
    _check_range(rc, 5, "Rc")
    return (
        (opcode << OPCODE_SHIFT)
        | (ra << RA_SHIFT)
        | (rb << RB_SHIFT)
        | (func << OPERATE_FUNC_SHIFT)
        | rc
    ) & MASK32


def encode_operate_lit(opcode: int, ra: int, lit: int, func: int,
                       rc: int) -> int:
    """Literal-form integer operate instruction (LIT flag set)."""
    _check_range(opcode, 6, "opcode")
    _check_range(ra, 5, "Ra")
    _check_range(lit, LIT_BITS, "literal")
    _check_range(func, OPERATE_FUNC_BITS, "function")
    _check_range(rc, 5, "Rc")
    return (
        (opcode << OPCODE_SHIFT)
        | (ra << RA_SHIFT)
        | (lit << LIT_SHIFT)
        | (1 << LIT_FLAG_BIT)
        | (func << OPERATE_FUNC_SHIFT)
        | rc
    ) & MASK32


def encode_fp_operate(opcode: int, fa: int, fb: int, func: int,
                      fc: int) -> int:
    _check_range(opcode, 6, "opcode")
    _check_range(fa, 5, "Fa")
    _check_range(fb, 5, "Fb")
    _check_range(func, FP_FUNC_BITS, "function")
    _check_range(fc, 5, "Fc")
    return (
        (opcode << OPCODE_SHIFT)
        | (fa << RA_SHIFT)
        | (fb << RB_SHIFT)
        | (func << FP_FUNC_SHIFT)
        | fc
    ) & MASK32


def field_of_bit(fmt: Format, bit: int, word: int = 0) -> Field:
    """Which instruction field does *bit* (0 = LSB) fall into?

    For the OPERATE format the answer depends on the LIT flag of the
    concrete *word*, because the literal form re-purposes bits 20:13.
    This classification drives the Table I fetch-stage analysis.
    """
    if not 0 <= bit < 32:
        raise ValueError(f"bit index {bit} outside instruction word")
    if bit >= OPCODE_SHIFT:
        return Field.OPCODE
    if fmt is Format.PALCODE:
        return Field.PAL_FUNCTION
    if fmt is Format.BRANCH:
        return Field.RA if bit >= RA_SHIFT else Field.DISPLACEMENT
    if fmt is Format.MEMORY:
        if bit >= RA_SHIFT:
            return Field.RA
        if bit >= RB_SHIFT:
            return Field.RB
        return Field.DISPLACEMENT
    if fmt is Format.FP_OPERATE:
        if bit >= RA_SHIFT:
            return Field.RA
        if bit >= RB_SHIFT:
            return Field.RB
        if bit >= FP_FUNC_SHIFT:
            return Field.FUNCTION
        return Field.RC
    # Integer operate: layout depends on the literal flag.
    if bit >= RA_SHIFT:
        return Field.RA
    if is_literal_form(word):
        if bit >= LIT_SHIFT:
            return Field.LITERAL
    else:
        if bit >= RB_SHIFT:
            return Field.RB
        if bit > LIT_FLAG_BIT:
            return Field.UNUSED
    if bit == LIT_FLAG_BIT:
        return Field.LIT_FLAG
    if bit >= OPERATE_FUNC_SHIFT:
        return Field.FUNCTION
    return Field.RC


def _check_range(value: int, bits: int, what: str) -> None:
    if not 0 <= value < (1 << bits):
        raise ValueError(f"{what} {value} does not fit in {bits} bits")


def _check_signed_range(value: int, bits: int, what: str) -> None:
    if not -(1 << (bits - 1)) <= value < (1 << (bits - 1)):
        raise ValueError(f"{what} {value} does not fit in signed {bits} bits")
