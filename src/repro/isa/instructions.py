"""Instruction set definition and decoder for the Alpha-like ISA.

The instruction set is a faithful subset of DEC Alpha (the ISA the paper
evaluates): memory, branch, operate, FP-operate and PALcode formats with
real Alpha opcode/function numbers wherever the subset overlaps.  Two
deviations are documented:

* ``DIVQ``/``REMQ`` exist as hardware instructions (real Alpha compilers
  emit a software divide); they live in the INTM opcode group.
* Opcode ``0x01`` hosts the GemFI pseudo-instructions
  (``fi_activate_inst`` / ``fi_read_init_all``), mirroring gem5's use of a
  reserved opcode for its m5 pseudo-ops.

Decoding is bit-exact: any fetched 32-bit word is decoded through this
module, so fetch-stage bit flips injected by GemFI produce exactly the
failure modes the paper analyses (illegal opcodes, corrupted
displacements, changed register selections, flipped literal bits...).
"""

from __future__ import annotations

import math
import struct

from . import encoding as enc
from .encoding import Field, Format
from .registers import MASK64, sign_extend
from .traps import ArithmeticTrap, IllegalInstruction

# --------------------------------------------------------------------------
# Execution kinds (coarse classes shared by every CPU model).
# --------------------------------------------------------------------------
KIND_ALU = 0        # int Ra, Rb/lit -> int Rc
KIND_CMOV = 1       # int Ra (cond), Rb/lit, old Rc -> int Rc
KIND_FPALU = 2      # fp Fa, Fb -> fp Fc (raw-bits in, raw-bits out)
KIND_FCMOV = 3      # fp Fa (cond), Fb, old Fc -> fp Fc
KIND_LOAD = 4       # int Ra <- mem[Rb + disp]
KIND_STORE = 5      # mem[Rb + disp] <- int Ra
KIND_FLOAD = 6      # fp Fa <- mem[Rb + disp]
KIND_FSTORE = 7     # mem[Rb + disp] <- fp Fa
KIND_LDA = 8        # int Ra <- Rb + disp (LDA / LDAH)
KIND_BRANCH = 9     # conditional branch on int Ra
KIND_FBRANCH = 10   # conditional branch on fp Fa
KIND_BR = 11        # unconditional branch, links PC+4 into Ra
KIND_JUMP = 12      # memory-format jump: Ra <- PC+4, PC <- Rb & ~3
KIND_PAL = 13       # CALL_PAL: halt / callsys / imb
KIND_FI = 14        # GemFI pseudo-instruction
KIND_ITOF = 15      # move int Ra raw bits -> fp Fc
KIND_FTOI = 16      # move fp Fa raw bits -> int Rc

# Major opcodes (real Alpha numbering).
OP_PAL = 0x00
OP_FI = 0x01
OP_LDA = 0x08
OP_LDAH = 0x09
OP_LDBU = 0x0A
OP_STB = 0x0E
OP_INTA = 0x10
OP_INTL = 0x11
OP_INTS = 0x12
OP_INTM = 0x13
OP_ITFP = 0x14
OP_FLTI = 0x16
OP_FLTL = 0x17
OP_JMP = 0x1A
OP_FTOIX = 0x1C
OP_LDT = 0x23
OP_STT = 0x27
OP_LDL = 0x28
OP_LDQ = 0x29
OP_STL = 0x2C
OP_STQ = 0x2D
OP_BR = 0x30
OP_FBEQ = 0x31
OP_FBLT = 0x32
OP_FBLE = 0x33
OP_BSR = 0x34
OP_FBNE = 0x35
OP_FBGE = 0x36
OP_FBGT = 0x37
OP_BLBC = 0x38
OP_BEQ = 0x39
OP_BLT = 0x3A
OP_BLE = 0x3B
OP_BLBS = 0x3C
OP_BNE = 0x3D
OP_BGE = 0x3E
OP_BGT = 0x3F

# PALcode functions.
PAL_HALT = 0x0000
PAL_CALLSYS = 0x0083
PAL_IMB = 0x0086

# GemFI pseudo-instruction functions (opcode 0x01).
FI_ACTIVATE = 0x0000
FI_READ_INIT = 0x0001


def _s64(v: int) -> int:
    v &= MASK64
    return v - (1 << 64) if v >= 1 << 63 else v


def _f(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & MASK64))[0]


def _fb(value: float) -> int:
    try:
        return struct.unpack("<Q", struct.pack("<d", value))[0]
    except (OverflowError, ValueError):
        # Overflow to infinity, preserving sign, like IEEE-754 round-to-even.
        return struct.unpack(
            "<Q", struct.pack("<d", math.inf if value > 0 else -math.inf)
        )[0]


# --- integer operate semantics ---------------------------------------------

def _addl(a: int, b: int) -> int:
    return sign_extend(a + b, 32)


def _subl(a: int, b: int) -> int:
    return sign_extend(a - b, 32)


def _addq(a: int, b: int) -> int:
    return (a + b) & MASK64


def _subq(a: int, b: int) -> int:
    return (a - b) & MASK64


def _s4addq(a: int, b: int) -> int:
    return (a * 4 + b) & MASK64


def _s8addq(a: int, b: int) -> int:
    return (a * 8 + b) & MASK64


def _cmpeq(a: int, b: int) -> int:
    return 1 if a == b else 0


def _cmplt(a: int, b: int) -> int:
    return 1 if _s64(a) < _s64(b) else 0


def _cmple(a: int, b: int) -> int:
    return 1 if _s64(a) <= _s64(b) else 0


def _cmpult(a: int, b: int) -> int:
    return 1 if a < b else 0


def _cmpule(a: int, b: int) -> int:
    return 1 if a <= b else 0


def _and(a: int, b: int) -> int:
    return a & b


def _bic(a: int, b: int) -> int:
    return a & ~b & MASK64


def _bis(a: int, b: int) -> int:
    return a | b


def _ornot(a: int, b: int) -> int:
    return (a | ~b) & MASK64


def _xor(a: int, b: int) -> int:
    return a ^ b


def _eqv(a: int, b: int) -> int:
    return (a ^ ~b) & MASK64


def _sll(a: int, b: int) -> int:
    return (a << (b & 63)) & MASK64


def _srl(a: int, b: int) -> int:
    return (a & MASK64) >> (b & 63)


def _sra(a: int, b: int) -> int:
    return (_s64(a) >> (b & 63)) & MASK64


def _mull(a: int, b: int) -> int:
    return sign_extend(a * b, 32)


def _mulq(a: int, b: int) -> int:
    return (a * b) & MASK64


def _divq(a: int, b: int) -> int:
    sb = _s64(b)
    if sb == 0:
        raise ArithmeticTrap("integer divide by zero")
    sa = _s64(a)
    # Truncate toward zero, matching C semantics the workloads expect.
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & MASK64


def _remq(a: int, b: int) -> int:
    sb = _s64(b)
    if sb == 0:
        raise ArithmeticTrap("integer remainder by zero")
    sa = _s64(a)
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & MASK64


def _sextb(a: int, b: int) -> int:
    return sign_extend(b, 8)


def _sextw(a: int, b: int) -> int:
    return sign_extend(b, 16)


# --- floating-point operate semantics (raw bits in, raw bits out) ----------

def _addt(a: int, b: int) -> int:
    return _fb(_f(a) + _f(b))


def _subt(a: int, b: int) -> int:
    return _fb(_f(a) - _f(b))


def _mult(a: int, b: int) -> int:
    return _fb(_f(a) * _f(b))


def _divt(a: int, b: int) -> int:
    fb_val = _f(b)
    if fb_val == 0.0:
        fa_val = _f(a)
        if fa_val == 0.0 or math.isnan(fa_val):
            return _fb(math.nan)
        sign = -1.0 if (fa_val < 0) != (math.copysign(1.0, fb_val) < 0) else 1.0
        return _fb(sign * math.inf)
    return _fb(_f(a) / fb_val)


def _sqrtt(a: int, b: int) -> int:
    v = _f(b)
    if v < 0.0:
        return _fb(math.nan)
    return _fb(math.sqrt(v))


def _cmpteq(a: int, b: int) -> int:
    return _fb(2.0 if _f(a) == _f(b) else 0.0)


def _cmptlt(a: int, b: int) -> int:
    return _fb(2.0 if _f(a) < _f(b) else 0.0)


def _cmptle(a: int, b: int) -> int:
    return _fb(2.0 if _f(a) <= _f(b) else 0.0)


def _cvttq(a: int, b: int) -> int:
    """FP -> integer, truncating; out-of-range saturates (no trap)."""
    v = _f(b)
    if math.isnan(v) or math.isinf(v):
        return 0
    iv = int(v)
    return iv & MASK64


def _cvtqt(a: int, b: int) -> int:
    return _fb(float(_s64(b)))


def _cpys(a: int, b: int) -> int:
    return (a & (1 << 63)) | (b & ((1 << 63) - 1))


def _cpysn(a: int, b: int) -> int:
    return ((a ^ (1 << 63)) & (1 << 63)) | (b & ((1 << 63) - 1))


# --- branch conditions ------------------------------------------------------

def _beq(a: int) -> bool:
    return a == 0


def _bne(a: int) -> bool:
    return a != 0


def _blt(a: int) -> bool:
    return _s64(a) < 0


def _ble(a: int) -> bool:
    return _s64(a) <= 0


def _bge(a: int) -> bool:
    return _s64(a) >= 0


def _bgt(a: int) -> bool:
    return _s64(a) > 0


def _blbc(a: int) -> bool:
    return (a & 1) == 0


def _blbs(a: int) -> bool:
    return (a & 1) == 1


def _fbeq(a: int) -> bool:
    return _f(a) == 0.0


def _fbne(a: int) -> bool:
    return _f(a) != 0.0


def _fblt(a: int) -> bool:
    return _f(a) < 0.0


def _fble(a: int) -> bool:
    return _f(a) <= 0.0


def _fbge(a: int) -> bool:
    return _f(a) >= 0.0


def _fbgt(a: int) -> bool:
    return _f(a) > 0.0


# --- conditional-move conditions (reuse branch predicates on Ra) ------------

_CMOV_CONDS = {
    0x24: _beq,   # CMOVEQ
    0x26: _bne,   # CMOVNE
    0x44: _blt,   # CMOVLT
    0x46: _bge,   # CMOVGE
    0x64: _ble,   # CMOVLE
    0x66: _bgt,   # CMOVGT
}

_FCMOV_CONDS = {
    0x02A: _fbeq,  # FCMOVEQ
    0x02B: _fbne,  # FCMOVNE
}

# Function tables: opcode -> {function -> (name, op)}.
INTA_FUNCS = {
    0x00: ("addl", _addl),
    0x09: ("subl", _subl),
    0x1D: ("cmpult", _cmpult),
    0x20: ("addq", _addq),
    0x22: ("s4addq", _s4addq),
    0x29: ("subq", _subq),
    0x2D: ("cmpeq", _cmpeq),
    0x32: ("s8addq", _s8addq),
    0x3D: ("cmpule", _cmpule),
    0x4D: ("cmplt", _cmplt),
    0x6D: ("cmple", _cmple),
}

INTL_FUNCS = {
    0x00: ("and", _and),
    0x08: ("bic", _bic),
    0x20: ("bis", _bis),
    0x28: ("ornot", _ornot),
    0x40: ("xor", _xor),
    0x48: ("eqv", _eqv),
}

INTS_FUNCS = {
    0x34: ("srl", _srl),
    0x39: ("sll", _sll),
    0x3C: ("sra", _sra),
}

INTM_FUNCS = {
    0x00: ("mull", _mull),
    0x20: ("mulq", _mulq),
    0x40: ("divq", _divq),
    0x60: ("remq", _remq),
}

FLTI_FUNCS = {
    0x0A0: ("addt", _addt),
    0x0A1: ("subt", _subt),
    0x0A2: ("mult", _mult),
    0x0A3: ("divt", _divt),
    0x0A5: ("cmpteq", _cmpteq),
    0x0A6: ("cmptlt", _cmptlt),
    0x0A7: ("cmptle", _cmptle),
    0x0AF: ("cvttq", _cvttq),
    0x0BE: ("cvtqt", _cvtqt),
}

FLTL_FUNCS = {
    0x020: ("cpys", _cpys),
    0x021: ("cpysn", _cpysn),
}

ITFP_FUNCS = {
    0x024: ("itoft", None),
    0x0AB: ("sqrtt", _sqrtt),
}

FTOIX_FUNCS = {
    0x000: ("sextb", _sextb),
    0x001: ("sextw", _sextw),
    0x070: ("ftoit", None),
}

BRANCH_CONDS = {
    OP_BEQ: ("beq", _beq),
    OP_BNE: ("bne", _bne),
    OP_BLT: ("blt", _blt),
    OP_BLE: ("ble", _ble),
    OP_BGE: ("bge", _bge),
    OP_BGT: ("bgt", _bgt),
    OP_BLBC: ("blbc", _blbc),
    OP_BLBS: ("blbs", _blbs),
}

FBRANCH_CONDS = {
    OP_FBEQ: ("fbeq", _fbeq),
    OP_FBNE: ("fbne", _fbne),
    OP_FBLT: ("fblt", _fblt),
    OP_FBLE: ("fble", _fble),
    OP_FBGE: ("fbge", _fbge),
    OP_FBGT: ("fbgt", _fbgt),
}

# Load/store descriptors: opcode -> (name, kind, size, signed).
MEM_OPS = {
    OP_LDBU: ("ldbu", KIND_LOAD, 1, False),
    OP_STB: ("stb", KIND_STORE, 1, False),
    OP_LDL: ("ldl", KIND_LOAD, 4, True),
    OP_LDQ: ("ldq", KIND_LOAD, 8, False),
    OP_STL: ("stl", KIND_STORE, 4, False),
    OP_STQ: ("stq", KIND_STORE, 8, False),
    OP_LDT: ("ldt", KIND_FLOAD, 8, False),
    OP_STT: ("stt", KIND_FSTORE, 8, False),
}


class Decoded:
    """A decoded instruction — the shared currency of all CPU models.

    Decode-stage fault injection replaces register-selection fields
    (``ra``/``rb``/``rc``) on a *copy* of the decoded instruction; cached
    instances are never mutated.
    """

    __slots__ = (
        "word", "name", "fmt", "kind", "opcode", "func",
        "ra", "rb", "rc", "lit", "disp", "op", "size", "signed",
    )

    def __init__(self, word: int, name: str, fmt: Format, kind: int,
                 opcode: int, func: int = 0, ra: int = 31, rb: int = 31,
                 rc: int = 31, lit: int | None = None, disp: int = 0,
                 op=None, size: int = 0, signed: bool = False) -> None:
        self.word = word
        self.name = name
        self.fmt = fmt
        self.kind = kind
        self.opcode = opcode
        self.func = func
        self.ra = ra
        self.rb = rb
        self.rc = rc
        self.lit = lit
        self.disp = disp
        self.op = op
        self.size = size
        self.signed = signed

    def copy(self) -> "Decoded":
        clone = Decoded.__new__(Decoded)
        for slot in Decoded.__slots__:
            setattr(clone, slot, getattr(self, slot))
        return clone

    def is_mem(self) -> bool:
        return self.kind in (KIND_LOAD, KIND_STORE, KIND_FLOAD, KIND_FSTORE)

    def is_control(self) -> bool:
        return self.kind in (KIND_BRANCH, KIND_FBRANCH, KIND_BR, KIND_JUMP)

    def src_regs(self) -> list[tuple[str, int]]:
        """Source registers as (class, index) pairs, for decode-stage FI."""
        k = self.kind
        if k in (KIND_ALU, KIND_CMOV):
            srcs = [("int", self.ra)]
            if self.lit is None:
                srcs.append(("int", self.rb))
            if k == KIND_CMOV:
                srcs.append(("int", self.rc))
            return srcs
        if k in (KIND_FPALU, KIND_FCMOV):
            srcs = [("fp", self.ra), ("fp", self.rb)]
            if k == KIND_FCMOV:
                srcs.append(("fp", self.rc))
            return srcs
        if k in (KIND_LOAD, KIND_FLOAD, KIND_LDA):
            return [("int", self.rb)]
        if k == KIND_STORE:
            return [("int", self.ra), ("int", self.rb)]
        if k == KIND_FSTORE:
            return [("fp", self.ra), ("int", self.rb)]
        if k == KIND_BRANCH:
            return [("int", self.ra)]
        if k == KIND_FBRANCH:
            return [("fp", self.ra)]
        if k == KIND_JUMP:
            return [("int", self.rb)]
        if k == KIND_ITOF:
            return [("int", self.ra)]
        if k == KIND_FTOI:
            return [("fp", self.rb)] if self.op else [("fp", self.ra)]
        return []

    def dest_regs(self) -> list[tuple[str, int]]:
        """Destination registers as (class, index) pairs."""
        k = self.kind
        if k in (KIND_ALU, KIND_CMOV, KIND_FTOI):
            return [("int", self.rc)]
        if k in (KIND_FPALU, KIND_FCMOV, KIND_ITOF):
            return [("fp", self.rc)]
        if k in (KIND_LOAD, KIND_LDA, KIND_BR, KIND_JUMP):
            return [("int", self.ra)]
        if k == KIND_FLOAD:
            return [("fp", self.ra)]
        return []

    def src_reg_fields(self) -> list[str]:
        """Names of the Decoded attributes holding *source* register
        selections, aligned with :meth:`src_regs`.  Decode-stage fault
        injection rewrites these attributes on a copy."""
        k = self.kind
        if k in (KIND_ALU, KIND_CMOV):
            fields = ["ra"]
            if self.lit is None:
                fields.append("rb")
            if k == KIND_CMOV:
                fields.append("rc")
            return fields
        if k in (KIND_FPALU, KIND_FCMOV):
            fields = ["ra", "rb"]
            if k == KIND_FCMOV:
                fields.append("rc")
            return fields
        if k in (KIND_LOAD, KIND_FLOAD, KIND_LDA):
            return ["rb"]
        if k in (KIND_STORE, KIND_FSTORE):
            return ["ra", "rb"]
        if k in (KIND_BRANCH, KIND_FBRANCH):
            return ["ra"]
        if k == KIND_JUMP:
            return ["rb"]
        if k == KIND_ITOF:
            return ["ra"]
        if k == KIND_FTOI:
            return ["rb"] if self.op else ["ra"]
        return []

    def dest_reg_fields(self) -> list[str]:
        """Names of the Decoded attributes holding *destination* register
        selections, aligned with :meth:`dest_regs`."""
        k = self.kind
        if k in (KIND_ALU, KIND_CMOV, KIND_FTOI, KIND_FPALU, KIND_FCMOV,
                 KIND_ITOF):
            return ["rc"]
        if k in (KIND_LOAD, KIND_FLOAD, KIND_LDA, KIND_BR, KIND_JUMP):
            return ["ra"]
        return []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Decoded {self.name} word=0x{self.word:08x}>"


def decode(word: int) -> Decoded:
    """Decode a raw 32-bit instruction word.

    Raises :class:`IllegalInstruction` for unimplemented opcodes/functions —
    the architectural behaviour the paper observes when fetch-stage faults
    corrupt the opcode or function field.
    """
    word &= enc.MASK32
    opcode = enc.opcode_of(word)

    if opcode == OP_PAL:
        func = enc.pal_func_of(word)
        if func not in (PAL_HALT, PAL_CALLSYS, PAL_IMB):
            raise IllegalInstruction(word)
        name = {PAL_HALT: "halt", PAL_CALLSYS: "callsys",
                PAL_IMB: "imb"}[func]
        return Decoded(word, name, Format.PALCODE, KIND_PAL, opcode,
                       func=func)

    if opcode == OP_FI:
        func = enc.pal_func_of(word)
        if func not in (FI_ACTIVATE, FI_READ_INIT):
            raise IllegalInstruction(word)
        name = "fi_activate_inst" if func == FI_ACTIVATE else \
            "fi_read_init_all"
        return Decoded(word, name, Format.PALCODE, KIND_FI, opcode,
                       func=func)

    if opcode in (OP_LDA, OP_LDAH):
        disp = enc.mem_disp_of(word)
        if opcode == OP_LDAH:
            disp *= 65536
        return Decoded(word, "lda" if opcode == OP_LDA else "ldah",
                       Format.MEMORY, KIND_LDA, opcode,
                       ra=enc.ra_of(word), rb=enc.rb_of(word), disp=disp)

    if opcode in MEM_OPS:
        name, kind, size, signed = MEM_OPS[opcode]
        return Decoded(word, name, Format.MEMORY, kind, opcode,
                       ra=enc.ra_of(word), rb=enc.rb_of(word),
                       disp=enc.mem_disp_of(word), size=size, signed=signed)

    if opcode == OP_JMP:
        return Decoded(word, "jmp", Format.MEMORY, KIND_JUMP, opcode,
                       ra=enc.ra_of(word), rb=enc.rb_of(word),
                       disp=enc.mem_disp_of(word))

    if opcode in (OP_BR, OP_BSR):
        return Decoded(word, "br" if opcode == OP_BR else "bsr",
                       Format.BRANCH, KIND_BR, opcode, ra=enc.ra_of(word),
                       disp=enc.branch_disp_of(word))

    if opcode in BRANCH_CONDS:
        name, cond = BRANCH_CONDS[opcode]
        return Decoded(word, name, Format.BRANCH, KIND_BRANCH, opcode,
                       ra=enc.ra_of(word), disp=enc.branch_disp_of(word),
                       op=cond)

    if opcode in FBRANCH_CONDS:
        name, cond = FBRANCH_CONDS[opcode]
        return Decoded(word, name, Format.BRANCH, KIND_FBRANCH, opcode,
                       ra=enc.ra_of(word), disp=enc.branch_disp_of(word),
                       op=cond)

    if opcode in (OP_INTA, OP_INTL, OP_INTS, OP_INTM):
        func = enc.operate_func_of(word)
        table = {OP_INTA: INTA_FUNCS, OP_INTL: INTL_FUNCS,
                 OP_INTS: INTS_FUNCS, OP_INTM: INTM_FUNCS}[opcode]
        lit = enc.literal_of(word) if enc.is_literal_form(word) else None
        if opcode == OP_INTL and func in _CMOV_CONDS:
            cmov_names = {0x24: "cmoveq", 0x26: "cmovne", 0x44: "cmovlt",
                          0x46: "cmovge", 0x64: "cmovle", 0x66: "cmovgt"}
            return Decoded(word, cmov_names[func], Format.OPERATE,
                           KIND_CMOV, opcode, func=func,
                           ra=enc.ra_of(word), rb=enc.rb_of(word),
                           rc=enc.rc_of(word), lit=lit,
                           op=_CMOV_CONDS[func])
        if func not in table:
            raise IllegalInstruction(word)
        name, op = table[func]
        return Decoded(word, name, Format.OPERATE, KIND_ALU, opcode,
                       func=func, ra=enc.ra_of(word), rb=enc.rb_of(word),
                       rc=enc.rc_of(word), lit=lit, op=op)

    if opcode == OP_FLTI:
        func = enc.fp_func_of(word)
        if func not in FLTI_FUNCS:
            raise IllegalInstruction(word)
        name, op = FLTI_FUNCS[func]
        return Decoded(word, name, Format.FP_OPERATE, KIND_FPALU, opcode,
                       func=func, ra=enc.ra_of(word), rb=enc.rb_of(word),
                       rc=enc.rc_of(word), op=op)

    if opcode == OP_FLTL:
        func = enc.fp_func_of(word)
        if func in _FCMOV_CONDS:
            name = "fcmoveq" if func == 0x02A else "fcmovne"
            return Decoded(word, name, Format.FP_OPERATE, KIND_FCMOV,
                           opcode, func=func, ra=enc.ra_of(word),
                           rb=enc.rb_of(word), rc=enc.rc_of(word),
                           op=_FCMOV_CONDS[func])
        if func not in FLTL_FUNCS:
            raise IllegalInstruction(word)
        name, op = FLTL_FUNCS[func]
        return Decoded(word, name, Format.FP_OPERATE, KIND_FPALU, opcode,
                       func=func, ra=enc.ra_of(word), rb=enc.rb_of(word),
                       rc=enc.rc_of(word), op=op)

    if opcode == OP_ITFP:
        func = enc.fp_func_of(word)
        if func not in ITFP_FUNCS:
            raise IllegalInstruction(word)
        name, op = ITFP_FUNCS[func]
        if name == "itoft":
            return Decoded(word, name, Format.FP_OPERATE, KIND_ITOF,
                           opcode, func=func, ra=enc.ra_of(word),
                           rc=enc.rc_of(word))
        return Decoded(word, name, Format.FP_OPERATE, KIND_FPALU, opcode,
                       func=func, ra=enc.ra_of(word), rb=enc.rb_of(word),
                       rc=enc.rc_of(word), op=op)

    if opcode == OP_FTOIX:
        func = enc.fp_func_of(word)
        if func not in FTOIX_FUNCS:
            raise IllegalInstruction(word)
        name, op = FTOIX_FUNCS[func]
        if name == "ftoit":
            return Decoded(word, name, Format.FP_OPERATE, KIND_FTOI,
                           opcode, func=func, ra=enc.ra_of(word),
                           rc=enc.rc_of(word))
        # sextb/sextw are integer operate-style, Rb -> Rc.
        lit = None
        return Decoded(word, name, Format.FP_OPERATE, KIND_ALU, opcode,
                       func=func, ra=enc.ra_of(word), rb=enc.rb_of(word),
                       rc=enc.rc_of(word), lit=lit, op=op)

    raise IllegalInstruction(word)


def format_of_opcode(opcode: int) -> Format | None:
    """The instruction format a major opcode belongs to, or None."""
    if opcode in (OP_PAL, OP_FI):
        return Format.PALCODE
    if opcode in (OP_BR, OP_BSR) or opcode in BRANCH_CONDS \
            or opcode in FBRANCH_CONDS:
        return Format.BRANCH
    if opcode in MEM_OPS or opcode in (OP_LDA, OP_LDAH, OP_JMP):
        return Format.MEMORY
    if opcode in (OP_INTA, OP_INTL, OP_INTS, OP_INTM):
        return Format.OPERATE
    if opcode in (OP_FLTI, OP_FLTL, OP_ITFP, OP_FTOIX):
        return Format.FP_OPERATE
    return None


def field_of_fetch_bit(word: int, bit: int) -> Field:
    """Classify which field of the *original* word a fetch-stage bit flip
    hits (Table I analysis).  Unknown opcodes classify by opcode bits only.
    """
    fmt = format_of_opcode(enc.opcode_of(word))
    if fmt is None:
        return Field.OPCODE if bit >= enc.OPCODE_SHIFT else Field.UNUSED
    return enc.field_of_bit(fmt, bit, word)


# A canonical NOP: BIS r31, r31, r31.
NOP_WORD = enc.encode_operate(OP_INTL, 31, 31, 0x20, 31)


class DecodeCache:
    """Memoizing decoder shared by CPU models.

    Decoding is pure (word -> Decoded), so entries are cached by word.
    Fault injection never mutates cached entries: fetch faults produce a
    different word (a different cache key) and decode faults copy the
    entry first.  The campaign ablation bench can disable the cache to
    measure its contribution.
    """

    __slots__ = ("enabled", "_cache")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._cache: dict[int, Decoded] = {}

    def decode(self, word: int) -> Decoded:
        if not self.enabled:
            return decode(word)
        hit = self._cache.get(word)
        if hit is None:
            hit = decode(word)
            self._cache[word] = hit
        return hit

    def clear(self) -> None:
        self._cache.clear()
