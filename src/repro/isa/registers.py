"""Register files for the Alpha-like ISA.

The simulated architecture follows the DEC Alpha register model used by the
paper: 32 64-bit integer registers (R31 hardwired to zero), 32 64-bit
floating-point registers (F31 hardwired to zero, holding raw IEEE-754 bit
patterns), and a small set of special registers.

All registers store *raw unsigned 64-bit integers*.  Floating-point values
are packed/unpacked at the instruction-semantics level so that bit-level
fault injection on FP registers corrupts the IEEE-754 representation, as it
would in hardware.
"""

from __future__ import annotations

import struct

MASK64 = (1 << 64) - 1

NUM_INT_REGS = 32
NUM_FP_REGS = 32

# Alpha software register conventions (used by the compiler and the ABI).
REG_V0 = 0       # return value
REG_T0 = 1       # first caller-saved temporary (t0..t7 = r1..r8)
REG_S0 = 9       # first callee-saved register (s0..s5 = r9..r14)
REG_FP = 15      # frame pointer
REG_A0 = 16      # first argument register (a0..a5 = r16..r21)
REG_T8 = 22      # temporaries t8..t11 = r22..r25
REG_RA = 26      # return address
REG_PV = 27      # procedure value
REG_AT = 28      # assembler temporary
REG_GP = 29      # global pointer
REG_SP = 30      # stack pointer
REG_ZERO = 31    # hardwired zero

FREG_RET = 0     # FP return value
FREG_A0 = 16     # first FP argument register
FREG_ZERO = 31   # hardwired FP zero

INT_REG_NAMES = {
    0: "v0", 15: "fp", 26: "ra", 27: "pv", 28: "at", 29: "gp",
    30: "sp", 31: "zero",
}
for _i in range(1, 9):
    INT_REG_NAMES[_i] = f"t{_i - 1}"
for _i in range(9, 15):
    INT_REG_NAMES[_i] = f"s{_i - 9}"
for _i in range(16, 22):
    INT_REG_NAMES[_i] = f"a{_i - 16}"
for _i in range(22, 26):
    INT_REG_NAMES[_i] = f"t{_i - 14}"

INT_NAME_TO_INDEX = {name: idx for idx, name in INT_REG_NAMES.items()}
# Raw rNN / fNN names are always accepted as well.
for _i in range(NUM_INT_REGS):
    INT_NAME_TO_INDEX.setdefault(f"r{_i}", _i)


def int_reg_name(index: int) -> str:
    """Human-readable name of integer register *index* (ABI name)."""
    return INT_REG_NAMES.get(index, f"r{index}")


def fp_reg_name(index: int) -> str:
    """Human-readable name of FP register *index*."""
    return f"f{index}"


def float_to_bits(value: float) -> int:
    """Pack a Python float into its raw IEEE-754 binary64 representation."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_float(bits: int) -> float:
    """Unpack a raw 64-bit pattern into a Python float."""
    return struct.unpack("<d", struct.pack("<Q", bits & MASK64))[0]


def to_signed64(value: int) -> int:
    """Interpret a raw 64-bit value as a signed integer."""
    value &= MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def to_unsigned64(value: int) -> int:
    """Wrap an arbitrary Python int into the unsigned 64-bit domain."""
    return value & MASK64


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low *bits* bits of *value* into the 64-bit domain."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value & MASK64


class RegisterFile:
    """A bank of 64-bit registers with an optional hardwired-zero slot.

    Fault injection mutates registers through :meth:`poke`, which bypasses
    the zero-register write-discard so that campaigns can (harmlessly)
    target R31/F31 exactly like the paper's uniform location sampling does;
    reads of the zero register still always return 0.
    """

    __slots__ = ("regs", "zero_index")

    def __init__(self, count: int, zero_index: int | None = None) -> None:
        self.regs = [0] * count
        self.zero_index = zero_index

    def read(self, index: int) -> int:
        if index == self.zero_index:
            return 0
        return self.regs[index]

    def write(self, index: int, value: int) -> None:
        if index == self.zero_index:
            return
        self.regs[index] = value & MASK64

    def poke(self, index: int, value: int) -> None:
        """Write *value* even to the zero register (fault-injection path)."""
        self.regs[index] = value & MASK64

    def peek(self, index: int) -> int:
        """Read the raw storage, ignoring zero-register semantics."""
        return self.regs[index]

    def snapshot(self) -> list[int]:
        return list(self.regs)

    def restore(self, values: list[int]) -> None:
        if len(values) != len(self.regs):
            raise ValueError(
                f"snapshot has {len(values)} registers, "
                f"file has {len(self.regs)}"
            )
        self.regs = list(values)

    def __len__(self) -> int:
        return len(self.regs)


class ArchState:
    """Complete per-hardware-context architectural register state."""

    __slots__ = ("intregs", "fpregs", "pc")

    def __init__(self) -> None:
        self.intregs = RegisterFile(NUM_INT_REGS, zero_index=REG_ZERO)
        self.fpregs = RegisterFile(NUM_FP_REGS, zero_index=FREG_ZERO)
        self.pc = 0

    def snapshot(self) -> dict:
        return {
            "int": self.intregs.snapshot(),
            "fp": self.fpregs.snapshot(),
            "pc": self.pc,
        }

    def restore(self, snap: dict) -> None:
        self.intregs.restore(snap["int"])
        self.fpregs.restore(snap["fp"])
        self.pc = snap["pc"]
