"""Architectural traps and simulation-terminating exceptions.

Hardware faults injected by GemFI manifest as architectural traps:
illegal-instruction on corrupted opcodes, memory faults on corrupted
addresses, arithmetic traps on corrupted divisors.  The kernel turns
unhandled traps into a process crash, which the campaign classifier
records as the *Crashed* outcome class (Section IV.B of the paper).
"""

from __future__ import annotations


class SimTrap(Exception):
    """Base class for all architectural traps raised during simulation."""

    def __init__(self, message: str, pc: int | None = None) -> None:
        super().__init__(message)
        self.pc = pc


class IllegalInstruction(SimTrap):
    """Fetched word decodes to an unimplemented opcode or function code."""

    def __init__(self, word: int, pc: int | None = None) -> None:
        super().__init__(f"illegal instruction 0x{word:08x}", pc=pc)
        self.word = word


class MemoryFault(SimTrap):
    """Base class for data/instruction memory access violations."""

    def __init__(self, message: str, addr: int, pc: int | None = None) -> None:
        super().__init__(message, pc=pc)
        self.addr = addr


class UnmappedAccess(MemoryFault):
    """Access to an address with no backing page (segmentation fault)."""

    def __init__(self, addr: int, pc: int | None = None) -> None:
        super().__init__(f"unmapped access at 0x{addr:016x}", addr, pc=pc)


class MisalignedAccess(MemoryFault):
    """Access whose address is not aligned to the access size."""

    def __init__(self, addr: int, size: int, pc: int | None = None) -> None:
        super().__init__(
            f"misaligned {size}-byte access at 0x{addr:016x}", addr, pc=pc
        )
        self.size = size


class ArithmeticTrap(SimTrap):
    """Integer divide-by-zero and similar fatal arithmetic conditions."""


class HaltRequest(SimTrap):
    """The PAL HALT instruction was executed (normal machine stop)."""


class SimulationLimitExceeded(SimTrap):
    """Watchdog: the instruction/tick budget ran out (likely a fault-induced
    infinite loop).  Campaigns classify this outcome as *Crashed*."""
