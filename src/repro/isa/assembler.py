"""Two-pass assembler for the Alpha-like ISA.

The assembler turns textual assembly (as emitted by ``repro.compiler`` or
written by hand in tests) into a loadable :class:`Image`.  Syntax follows
Alpha conventions::

        .text
    main:
        lda   sp, -64(sp)
        stq   ra, 0(sp)
        ldi   t0, 41
        addq  t0, 1, v0          # literal operand
        beq   v0, done
        bsr   ra, helper
    done:
        ldq   ra, 0(sp)
        lda   sp, 64(sp)
        ret
        .data
    table:
        .quad 1, 2, 3

Pseudo-instructions (``nop``, ``mov``, ``ldi``, ``la``, ``fmov``, ``fneg``,
``clr``, ``negq``, ``not``, ``sextl``, ``ret``, bare ``br``/``bsr``) expand
to fixed-length sequences so that label resolution is a simple two-pass
process.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from . import encoding as enc
from . import instructions as ins
from .registers import INT_NAME_TO_INDEX

TEXT_BASE = 0x10000
DATA_BASE = 0x1000000


class AssemblyError(Exception):
    """Raised on any syntax or range error, with file line context."""

    def __init__(self, message: str, lineno: int | None = None) -> None:
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)
        self.lineno = lineno


@dataclass
class Image:
    """An assembled, loadable program image."""

    text: bytes
    data: bytes
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int = TEXT_BASE

    @property
    def num_instructions(self) -> int:
        return len(self.text) // 4

    def words(self) -> list[int]:
        return [
            struct.unpack_from("<I", self.text, off)[0]
            for off in range(0, len(self.text), 4)
        ]


# Reverse mnemonic tables built from the instruction-set definition.
_OPERATE_MNEMONICS: dict[str, tuple[int, int]] = {}
for _op, _table in ((ins.OP_INTA, ins.INTA_FUNCS),
                    (ins.OP_INTL, ins.INTL_FUNCS),
                    (ins.OP_INTS, ins.INTS_FUNCS),
                    (ins.OP_INTM, ins.INTM_FUNCS)):
    for _fn, (_name, _) in _table.items():
        _OPERATE_MNEMONICS[_name] = (_op, _fn)
_OPERATE_MNEMONICS.update({
    "cmoveq": (ins.OP_INTL, 0x24), "cmovne": (ins.OP_INTL, 0x26),
    "cmovlt": (ins.OP_INTL, 0x44), "cmovge": (ins.OP_INTL, 0x46),
    "cmovle": (ins.OP_INTL, 0x64), "cmovgt": (ins.OP_INTL, 0x66),
})

_FP_OPERATE_MNEMONICS: dict[str, tuple[int, int]] = {}
for _fn, (_name, _) in ins.FLTI_FUNCS.items():
    _FP_OPERATE_MNEMONICS[_name] = (ins.OP_FLTI, _fn)
for _fn, (_name, _) in ins.FLTL_FUNCS.items():
    _FP_OPERATE_MNEMONICS[_name] = (ins.OP_FLTL, _fn)
_FP_OPERATE_MNEMONICS.update({
    "fcmoveq": (ins.OP_FLTL, 0x02A), "fcmovne": (ins.OP_FLTL, 0x02B),
    "sqrtt": (ins.OP_ITFP, 0x0AB),
})

_MEM_MNEMONICS = {name: op for op, (name, _, _, _) in ins.MEM_OPS.items()}

_BRANCH_MNEMONICS = {name: op for op, (name, _)
                     in ins.BRANCH_CONDS.items()}
_FBRANCH_MNEMONICS = {name: op for op, (name, _)
                      in ins.FBRANCH_CONDS.items()}


def parse_int_reg(token: str, lineno: int | None = None) -> int:
    token = token.strip().lower()
    if token.startswith("$"):
        token = token[1:]
    idx = INT_NAME_TO_INDEX.get(token)
    if idx is None:
        raise AssemblyError(f"unknown integer register '{token}'", lineno)
    return idx


def parse_fp_reg(token: str, lineno: int | None = None) -> int:
    token = token.strip().lower()
    if token.startswith("$"):
        token = token[1:]
    if token.startswith("f"):
        try:
            idx = int(token[1:])
        except ValueError:
            idx = -1
        if 0 <= idx < 32:
            return idx
    raise AssemblyError(f"unknown FP register '{token}'", lineno)


def _parse_imm(token: str, lineno: int | None = None) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"bad immediate '{token}'", lineno) from None


def _split_operands(rest: str) -> list[str]:
    """Split an operand string on commas that are outside parentheses."""
    parts: list[str] = []
    depth = 0
    cur = []
    for ch in rest:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_mem_operand(token: str, lineno: int | None) -> tuple[int, int]:
    """Parse ``disp(reg)`` / ``(reg)`` / ``disp`` into (disp, reg)."""
    token = token.strip()
    if "(" in token:
        if not token.endswith(")"):
            raise AssemblyError(f"bad memory operand '{token}'", lineno)
        disp_str, reg_str = token[:-1].split("(", 1)
        disp = _parse_imm(disp_str, lineno) if disp_str.strip() else 0
        return disp, parse_int_reg(reg_str, lineno)
    return _parse_imm(token, lineno), 31


def _ldi_parts(value: int) -> tuple[int, int]:
    """Split a 32-bit signed constant into (ldah_hi, lda_lo) parts."""
    hi = (value + 0x8000) >> 16
    lo = value - (hi << 16)
    return hi, lo


@dataclass
class _PendingInstr:
    mnemonic: str
    operands: list[str]
    lineno: int
    addr: int
    expansion_slot: int = 0   # index within a pseudo-expansion


class Assembler:
    """Two-pass assembler producing an :class:`Image`."""

    def __init__(self, text_base: int = TEXT_BASE,
                 data_base: int = DATA_BASE) -> None:
        self.text_base = text_base
        self.data_base = data_base

    # -- public API ---------------------------------------------------------

    def assemble(self, source: str, entry_symbol: str = "main") -> Image:
        lines = source.splitlines()
        symbols, instrs, data = self._pass1(lines)
        words = self._pass2(instrs, symbols)
        text = b"".join(struct.pack("<I", w) for w in words)
        entry = symbols.get(entry_symbol, self.text_base)
        return Image(text=text, data=bytes(data),
                     text_base=self.text_base, data_base=self.data_base,
                     symbols=symbols, entry=entry)

    # -- pass 1: layout & symbol table ---------------------------------------

    def _pass1(self, lines: list[str]):
        symbols: dict[str, int] = {}
        instrs: list[_PendingInstr] = []
        data = bytearray()
        section = "text"
        text_addr = self.text_base

        for lineno, raw in enumerate(lines, start=1):
            line = self._strip_comment(raw).strip()
            if not line:
                continue
            while True:
                label, _, rest = line.partition(":")
                if _ == ":" and label and self._is_symbol(label.strip()):
                    name = label.strip()
                    if name in symbols:
                        raise AssemblyError(
                            f"duplicate label '{name}'", lineno)
                    if section == "text":
                        symbols[name] = text_addr
                    else:
                        symbols[name] = self.data_base + len(data)
                    line = rest.strip()
                    if not line:
                        break
                else:
                    break
            if not line:
                continue

            if line.startswith("."):
                section, text_addr = self._directive(
                    line, lineno, section, text_addr, data)
                continue

            if section != "text":
                raise AssemblyError(
                    "instructions are only allowed in .text", lineno)

            mnemonic, _, rest = line.partition(" ")
            mnemonic = mnemonic.lower()
            operands = _split_operands(rest)
            count = self._instr_length(mnemonic, operands, lineno)
            for slot in range(count):
                instrs.append(_PendingInstr(mnemonic, operands, lineno,
                                            text_addr, slot))
                text_addr += 4
        return symbols, instrs, data

    def _directive(self, line: str, lineno: int, section: str,
                   text_addr: int, data: bytearray):
        name, _, rest = line.partition(" ")
        name = name.lower()
        if name == ".text":
            return "text", text_addr
        if name == ".data":
            return "data", text_addr
        if name in (".globl", ".global", ".ent", ".end", ".frame"):
            return section, text_addr
        if section != "data":
            raise AssemblyError(
                f"directive {name} only allowed in .data", lineno)
        if name == ".quad":
            for tok in _split_operands(rest):
                data += struct.pack("<q", _parse_imm(tok, lineno))
        elif name == ".long":
            for tok in _split_operands(rest):
                data += struct.pack("<i", _parse_imm(tok, lineno))
        elif name == ".byte":
            for tok in _split_operands(rest):
                data += struct.pack("<B", _parse_imm(tok, lineno) & 0xFF)
        elif name == ".double":
            for tok in _split_operands(rest):
                try:
                    data += struct.pack("<d", float(tok))
                except ValueError:
                    raise AssemblyError(
                        f"bad float '{tok}'", lineno) from None
        elif name == ".space":
            data += bytes(_parse_imm(rest, lineno))
        elif name == ".align":
            boundary = 1 << _parse_imm(rest, lineno)
            while len(data) % boundary:
                data += b"\x00"
        elif name == ".asciiz":
            text = rest.strip()
            if not (text.startswith('"') and text.endswith('"')):
                raise AssemblyError("string must be double-quoted", lineno)
            data += text[1:-1].encode("utf-8").decode(
                "unicode_escape").encode("latin-1") + b"\x00"
        else:
            raise AssemblyError(f"unknown directive {name}", lineno)
        return section, text_addr

    # -- pass 2: encoding -----------------------------------------------------

    def _pass2(self, instrs: list[_PendingInstr],
               symbols: dict[str, int]) -> list[int]:
        words: list[int] = []
        index = 0
        while index < len(instrs):
            pending = instrs[index]
            count = self._instr_length(pending.mnemonic, pending.operands,
                                       pending.lineno)
            group = instrs[index:index + count]
            words.extend(self._encode(pending, symbols,
                                      [g.addr for g in group]))
            index += count
        return words

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _strip_comment(line: str) -> str:
        for marker in ("#", ";"):
            # Do not strip markers inside string literals.
            if '"' in line:
                quote_end = line.rfind('"')
                pos = line.find(marker, quote_end + 1)
            else:
                pos = line.find(marker)
            if pos != -1:
                line = line[:pos]
        return line

    @staticmethod
    def _is_symbol(token: str) -> bool:
        return bool(token) and (token[0].isalpha() or token[0] in "._") \
            and all(c.isalnum() or c in "._$" for c in token)

    def _instr_length(self, mnemonic: str, operands: list[str],
                      lineno: int) -> int:
        if mnemonic in ("ldi", "la"):
            return 2
        if mnemonic in self._known_mnemonics():
            return 1
        raise AssemblyError(f"unknown mnemonic '{mnemonic}'", lineno)

    _KNOWN: set[str] | None = None

    @classmethod
    def _known_mnemonics(cls) -> set[str]:
        if cls._KNOWN is None:
            cls._KNOWN = (
                set(_OPERATE_MNEMONICS) | set(_FP_OPERATE_MNEMONICS)
                | set(_MEM_MNEMONICS) | set(_BRANCH_MNEMONICS)
                | set(_FBRANCH_MNEMONICS)
                | {"lda", "ldah", "jmp", "jsr", "ret", "br", "bsr",
                   "halt", "callsys", "imb", "nop", "mov", "fmov",
                   "fneg", "clr", "negq", "not", "sextl", "ftoit",
                   "itoft", "sextb", "sextw", "fi_activate",
                   "fi_read_init", "unop"}
            )
        return cls._KNOWN

    def _resolve(self, token: str, symbols: dict[str, int],
                 lineno: int) -> int:
        token = token.strip()
        if token in symbols:
            return symbols[token]
        return _parse_imm(token, lineno)

    def _encode(self, p: _PendingInstr, symbols: dict[str, int],
                addrs: list[int]) -> list[int]:
        m, ops, lineno = p.mnemonic, p.operands, p.lineno
        try:
            return self._encode_inner(m, ops, symbols, lineno, addrs)
        except AssemblyError:
            raise
        except ValueError as exc:
            raise AssemblyError(str(exc), lineno) from exc

    def _encode_inner(self, m: str, ops: list[str],
                      symbols: dict[str, int], lineno: int,
                      addrs: list[int]) -> list[int]:
        # Pseudo-instructions first.
        if m == "nop" or m == "unop":
            return [ins.NOP_WORD]
        if m == "clr":
            rd = parse_int_reg(ops[0], lineno)
            return [enc.encode_operate(ins.OP_INTL, 31, 31, 0x20, rd)]
        if m == "mov":
            rs = parse_int_reg(ops[0], lineno)
            rd = parse_int_reg(ops[1], lineno)
            return [enc.encode_operate(ins.OP_INTL, rs, rs, 0x20, rd)]
        if m == "fmov":
            fs = parse_fp_reg(ops[0], lineno)
            fd = parse_fp_reg(ops[1], lineno)
            return [enc.encode_fp_operate(ins.OP_FLTL, fs, fs, 0x020, fd)]
        if m == "fneg":
            fs = parse_fp_reg(ops[0], lineno)
            fd = parse_fp_reg(ops[1], lineno)
            return [enc.encode_fp_operate(ins.OP_FLTL, fs, fs, 0x021, fd)]
        if m == "negq":
            rs = parse_int_reg(ops[0], lineno)
            rd = parse_int_reg(ops[1], lineno)
            return [enc.encode_operate(ins.OP_INTA, 31, rs, 0x29, rd)]
        if m == "not":
            rs = parse_int_reg(ops[0], lineno)
            rd = parse_int_reg(ops[1], lineno)
            return [enc.encode_operate(ins.OP_INTL, 31, rs, 0x28, rd)]
        if m == "sextl":
            rs = parse_int_reg(ops[0], lineno)
            rd = parse_int_reg(ops[1], lineno)
            return [enc.encode_operate(ins.OP_INTA, 31, rs, 0x00, rd)]
        if m in ("sextb", "sextw"):
            rs = parse_int_reg(ops[0], lineno)
            rd = parse_int_reg(ops[1], lineno)
            fn = 0x000 if m == "sextb" else 0x001
            return [enc.encode_fp_operate(ins.OP_FTOIX, 31, rs, fn, rd)]
        if m in ("ldi", "la"):
            rd = parse_int_reg(ops[0], lineno)
            value = self._resolve(ops[1], symbols, lineno)
            if not -(1 << 31) <= value < (1 << 31):
                raise AssemblyError(
                    f"{m} immediate {value} outside 32-bit signed range "
                    "(use a constant pool)", lineno)
            hi, lo = _ldi_parts(value)
            return [enc.encode_memory(ins.OP_LDAH, rd, 31, hi),
                    enc.encode_memory(ins.OP_LDA, rd, rd, lo)]
        if m == "halt":
            return [enc.encode_palcode(ins.OP_PAL, ins.PAL_HALT)]
        if m == "callsys":
            return [enc.encode_palcode(ins.OP_PAL, ins.PAL_CALLSYS)]
        if m == "imb":
            return [enc.encode_palcode(ins.OP_PAL, ins.PAL_IMB)]
        if m == "fi_activate":
            return [enc.encode_palcode(ins.OP_FI, ins.FI_ACTIVATE)]
        if m == "fi_read_init":
            return [enc.encode_palcode(ins.OP_FI, ins.FI_READ_INIT)]
        if m == "ftoit":
            fs = parse_fp_reg(ops[0], lineno)
            rd = parse_int_reg(ops[1], lineno)
            return [enc.encode_fp_operate(ins.OP_FTOIX, fs, 31, 0x070, rd)]
        if m == "itoft":
            rs = parse_int_reg(ops[0], lineno)
            fd = parse_fp_reg(ops[1], lineno)
            return [enc.encode_fp_operate(ins.OP_ITFP, rs, 31, 0x024, fd)]

        if m in ("lda", "ldah"):
            ra = parse_int_reg(ops[0], lineno)
            disp, rb = _parse_mem_operand(ops[1], lineno)
            op = ins.OP_LDA if m == "lda" else ins.OP_LDAH
            return [enc.encode_memory(op, ra, rb, disp)]

        if m in _MEM_MNEMONICS:
            opcode = _MEM_MNEMONICS[m]
            is_fp = m in ("ldt", "stt")
            ra = (parse_fp_reg if is_fp else parse_int_reg)(ops[0], lineno)
            disp, rb = _parse_mem_operand(ops[1], lineno)
            return [enc.encode_memory(opcode, ra, rb, disp)]

        if m == "jmp" or m == "jsr":
            ra = parse_int_reg(ops[0], lineno)
            disp, rb = _parse_mem_operand(ops[1], lineno)
            return [enc.encode_memory(ins.OP_JMP, ra, rb, disp)]
        if m == "ret":
            rb = parse_int_reg(ops[0], lineno) if ops else 26
            if ops and "(" in ops[0]:
                _, rb = _parse_mem_operand(ops[0], lineno)
            return [enc.encode_memory(ins.OP_JMP, 31, rb, 0)]

        if m in ("br", "bsr"):
            if len(ops) == 1:
                ra = 31 if m == "br" else 26
                target_tok = ops[0]
            else:
                ra = parse_int_reg(ops[0], lineno)
                target_tok = ops[1]
            target = self._resolve(target_tok, symbols, lineno)
            disp = self._branch_disp(target, addrs[0], lineno)
            op = ins.OP_BR if m == "br" else ins.OP_BSR
            return [enc.encode_branch(op, ra, disp)]

        if m in _BRANCH_MNEMONICS or m in _FBRANCH_MNEMONICS:
            is_fp = m in _FBRANCH_MNEMONICS
            opcode = (_FBRANCH_MNEMONICS if is_fp
                      else _BRANCH_MNEMONICS)[m]
            ra = (parse_fp_reg if is_fp else parse_int_reg)(ops[0], lineno)
            target = self._resolve(ops[1], symbols, lineno)
            disp = self._branch_disp(target, addrs[0], lineno)
            return [enc.encode_branch(opcode, ra, disp)]

        if m in _OPERATE_MNEMONICS:
            opcode, func = _OPERATE_MNEMONICS[m]
            ra = parse_int_reg(ops[0], lineno)
            rc = parse_int_reg(ops[2], lineno)
            b_tok = ops[1].strip()
            if self._looks_like_int_reg(b_tok):
                rb = parse_int_reg(b_tok, lineno)
                return [enc.encode_operate(opcode, ra, rb, func, rc)]
            lit = _parse_imm(b_tok, lineno)
            if not 0 <= lit < 256:
                raise AssemblyError(
                    f"operate literal {lit} outside [0,255]", lineno)
            return [enc.encode_operate_lit(opcode, ra, lit, func, rc)]

        if m in _FP_OPERATE_MNEMONICS:
            opcode, func = _FP_OPERATE_MNEMONICS[m]
            if m in ("sqrtt", "cvttq", "cvtqt"):
                # Single-source forms: Fb -> Fc.
                fb = parse_fp_reg(ops[0], lineno)
                fc = parse_fp_reg(ops[1], lineno)
                return [enc.encode_fp_operate(opcode, 31, fb, func, fc)]
            fa = parse_fp_reg(ops[0], lineno)
            fb = parse_fp_reg(ops[1], lineno)
            fc = parse_fp_reg(ops[2], lineno)
            return [enc.encode_fp_operate(opcode, fa, fb, func, fc)]

        raise AssemblyError(f"unknown mnemonic '{m}'", lineno)

    @staticmethod
    def _looks_like_int_reg(token: str) -> bool:
        token = token.strip().lower()
        if token.startswith("$"):
            token = token[1:]
        return token in INT_NAME_TO_INDEX

    @staticmethod
    def _branch_disp(target: int, pc: int, lineno: int) -> int:
        delta = target - (pc + 4)
        if delta % 4:
            raise AssemblyError(
                f"branch target 0x{target:x} not word aligned", lineno)
        disp = delta // 4
        if not -(1 << 20) <= disp < (1 << 20):
            raise AssemblyError(f"branch displacement {disp} too far",
                                lineno)
        return disp


def assemble(source: str, entry_symbol: str = "main",
             text_base: int = TEXT_BASE, data_base: int = DATA_BASE) -> Image:
    """Convenience one-shot assembly helper."""
    return Assembler(text_base=text_base,
                     data_base=data_base).assemble(source, entry_symbol)
