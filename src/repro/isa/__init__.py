"""Alpha-like ISA substrate: registers, encodings, decoder, assembler."""

from .assembler import Assembler, AssemblyError, Image, assemble
from .disasm import disassemble, disassemble_word
from .encoding import Field, Format
from .instructions import Decoded, DecodeCache, decode, field_of_fetch_bit
from .registers import (
    ArchState,
    MASK64,
    RegisterFile,
    bits_to_float,
    float_to_bits,
    fp_reg_name,
    int_reg_name,
)
from .traps import (
    ArithmeticTrap,
    HaltRequest,
    IllegalInstruction,
    MemoryFault,
    MisalignedAccess,
    SimTrap,
    SimulationLimitExceeded,
    UnmappedAccess,
)

__all__ = [
    "ArchState", "Assembler", "AssemblyError", "ArithmeticTrap",
    "Decoded", "DecodeCache", "Field", "Format", "HaltRequest",
    "IllegalInstruction", "Image", "MASK64", "MemoryFault",
    "MisalignedAccess", "RegisterFile", "SimTrap",
    "SimulationLimitExceeded", "UnmappedAccess", "assemble",
    "bits_to_float", "decode", "disassemble", "disassemble_word",
    "field_of_fetch_bit", "float_to_bits", "fp_reg_name", "int_reg_name",
]
