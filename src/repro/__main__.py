"""``python -m repro`` — the GemFI command-line front end."""

import sys

from .cli import main

sys.exit(main())
