"""System-call layer (the ``callsys`` PALcode trap).

Convention (Alpha/OSF-ish): the syscall number is in ``v0`` (r0),
arguments in ``a0..a2`` (r16..r18), result returned in ``v0``.

Numeric formatting syscalls (PRINT_INT / PRINT_FLOAT) take the role of
libc's printf: the simulated libc is thin, so the kernel renders numbers
for the console.  Fault-corrupted values still flow through unchanged —
formatting happens on whatever bit pattern the program hands over
(NaN/inf float patterns print as such).
"""

from __future__ import annotations

from ..isa.registers import bits_to_float, to_signed64

SYS_EXIT = 0
SYS_WRITE = 1
SYS_BRK = 2
SYS_GETPID = 3
SYS_YIELD = 4
SYS_PRINT_INT = 5
SYS_PRINT_FLOAT = 6
SYS_PRINT_CHAR = 7
SYS_TICKS = 8
SYS_SPAWN = 9
SYS_JOIN = 10

SYSCALL_NAMES = {
    SYS_EXIT: "exit", SYS_WRITE: "write", SYS_BRK: "brk",
    SYS_GETPID: "getpid", SYS_YIELD: "yield",
    SYS_PRINT_INT: "print_int", SYS_PRINT_FLOAT: "print_float",
    SYS_PRINT_CHAR: "print_char", SYS_TICKS: "ticks",
    SYS_SPAWN: "spawn", SYS_JOIN: "join",
}

MAX_WRITE_LEN = 1 << 20


class ProcessExited(Exception):
    """Control-flow signal: the current process called exit()."""

    def __init__(self, pid: int, code: int) -> None:
        super().__init__(f"process {pid} exited with code {code}")
        self.pid = pid
        self.code = code


class BadSyscall(Exception):
    """An unknown syscall number — fault-corrupted v0 lands here; the
    kernel treats it as a crash (like a real OS delivering SIGSYS)."""

    def __init__(self, number: int) -> None:
        super().__init__(f"bad syscall number {number}")
        self.number = number


def dispatch(system, core, process) -> None:
    """Execute the syscall currently requested by *core*'s registers."""
    regs = core.arch.intregs
    number = to_signed64(regs.read(0))
    a0 = regs.read(16)
    a1 = regs.read(17)
    a2 = regs.read(18)

    if number == SYS_EXIT:
        raise ProcessExited(process.pid, to_signed64(a0) & 0xFF)

    if number == SYS_WRITE:
        length = min(a2, MAX_WRITE_LEN)
        blob = system.memory.read_bytes(a1 & ((1 << 64) - 1), length)
        process.console += blob
        regs.write(0, length)
        return

    if number == SYS_BRK:
        if a0 == 0:
            regs.write(0, process.brk)
            return
        new_brk = a0
        if new_brk > process.brk:
            system.memory.grow_region(f"p{process.pid}.data", new_brk)
            process.brk = new_brk
        regs.write(0, process.brk)
        return

    if number == SYS_GETPID:
        regs.write(0, process.pid)
        return

    if number == SYS_YIELD:
        system.yield_requested = True
        regs.write(0, 0)
        return

    if number == SYS_PRINT_INT:
        process.console += str(to_signed64(a0)).encode()
        regs.write(0, 0)
        return

    if number == SYS_PRINT_FLOAT:
        value = bits_to_float(a0)
        process.console += format(value, ".12g").encode()
        regs.write(0, 0)
        return

    if number == SYS_PRINT_CHAR:
        process.console += bytes([a0 & 0xFF])
        regs.write(0, 0)
        return

    if number == SYS_TICKS:
        regs.write(0, system.clock())
        return

    if number == SYS_SPAWN:
        # spawn(entry_pc, argument) -> thread pid.  The new thread
        # shares the caller's address space but has its own stack,
        # PCB and scheduler entry (the paper's multithreaded-
        # application support, thread-targetable via
        # fi_activate_inst).
        child = system.spawn_thread(process, entry_pc=a0,
                                    argument=a1)
        regs.write(0, child.pid)
        return

    if number == SYS_JOIN:
        # join(pid) -> 1 when the target finished, else 0 (poll with
        # sched_yield in between).
        target = system.processes.get(a0)
        finished = target is not None and not target.alive
        regs.write(0, 1 if finished else 0)
        return

    raise BadSyscall(number)
