"""Full-system substrate: processes, loader, syscalls, OS-lite kernel."""

from .kernel import System
from .loader import load_image, load_program, unload_process
from .process import Process, ProcessState, pcb_address
from .syscalls import (
    SYS_BRK,
    SYS_EXIT,
    SYS_GETPID,
    SYS_PRINT_CHAR,
    SYS_PRINT_FLOAT,
    SYS_PRINT_INT,
    SYS_TICKS,
    SYS_WRITE,
    SYS_YIELD,
    BadSyscall,
    ProcessExited,
)

__all__ = [
    "BadSyscall", "Process", "ProcessExited", "ProcessState", "System",
    "SYS_BRK", "SYS_EXIT", "SYS_GETPID", "SYS_PRINT_CHAR",
    "SYS_PRINT_FLOAT", "SYS_PRINT_INT", "SYS_TICKS", "SYS_WRITE",
    "SYS_YIELD", "load_image", "load_program", "pcb_address",
    "unload_process",
]
