"""Program loader: assemble into a process slot and map its memory.

Programs are carried around as assembly source (the compiler's output),
because the ISA uses absolute addressing: the loader (re)assembles each
program with the text/data bases of the process slot it lands in — the
moral equivalent of the paper's step of copying cross-compiled binaries
into the simulator's disk image.
"""

from __future__ import annotations

from ..isa.assembler import Assembler, Image
from ..isa.registers import REG_GP, REG_RA, REG_SP
from ..memory.mainmem import MainMemory
from . import process as proc_mod
from .process import Process


def load_program(memory: MainMemory, asm_source: str, pid: int,
                 name: str, entry_symbol: str = "main") -> Process:
    """Assemble *asm_source* into the slot of *pid*, map and populate its
    regions, and return a ready-to-run Process."""
    assembler = Assembler(text_base=proc_mod.text_base(pid),
                          data_base=proc_mod.data_base(pid))
    image = assembler.assemble(asm_source, entry_symbol=entry_symbol)
    return load_image(memory, image, pid, name)


def load_image(memory: MainMemory, image: Image, pid: int,
               name: str) -> Process:
    """Map text/data/stack regions for *image* and create the Process."""
    prefix = f"p{pid}"
    text_len = _page_round(max(len(image.text), 4))
    memory.map_region(f"{prefix}.text", image.text_base, text_len,
                      writable=True)
    # Text is written once by the loader, then write-protected:
    # fault-corrupted stores into code pages segfault like a real OS.
    memory.write_bytes(image.text_base, image.text)
    memory.region_of(image.text_base).writable = False

    data_len = _page_round(max(len(image.data), 1) + 4096)
    memory.map_region(f"{prefix}.data", image.data_base, data_len)
    if image.data:
        memory.write_bytes(image.data_base, image.data)

    top = proc_mod.stack_top(pid)
    memory.map_region(f"{prefix}.stack", top - proc_mod.STACK_SIZE,
                      proc_mod.STACK_SIZE)

    process = Process(pid=pid, name=name, entry=image.entry)
    process.symbols = dict(image.symbols)
    process.brk = image.data_base + data_len
    process.context = _initial_context(process, image)
    return process


def unload_process(memory: MainMemory, process: Process) -> None:
    """Unmap every region of a finished process."""
    prefix = f"p{process.pid}"
    for suffix in ("text", "data", "stack", "heap"):
        memory.unmap_region(f"{prefix}.{suffix}")


def _initial_context(process: Process, image: Image) -> dict:
    """Architectural register state at process start (ABI entry state)."""
    intregs = [0] * 32
    intregs[REG_SP] = proc_mod.stack_top(process.pid) - 64
    intregs[REG_GP] = image.data_base
    # Returning from main() without an exit syscall jumps to a halt-like
    # sentinel inside unmapped space -> treated as a crash; programs are
    # expected to call exit().  The compiler's prologue sets RA properly.
    intregs[REG_RA] = 0
    return {"int": intregs, "fp": [0] * 32, "pc": process.entry}


def _page_round(n: int) -> int:
    return (n + 4095) & ~4095
