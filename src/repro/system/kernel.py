"""The OS-lite kernel: processes, round-robin scheduling, traps.

This is the "full system" part of the reproduction: applications run
under the control of a (minimal) operating system with real context
switches, so GemFI's PCB-based thread tracking (Section III.C) is
exercised exactly as in the paper — including the property that the
fault-injection status pointer is refreshed on context switches rather
than looked up per simulated tick.
"""

from __future__ import annotations

from ..cpu.base import Core
from ..isa.traps import SimTrap
from . import process as proc_mod
from ..isa.assembler import Assembler
from ..isa.registers import REG_A0, REG_GP, REG_RA, REG_SP
from .loader import load_program, unload_process
from .process import (
    Process,
    ProcessState,
    THREAD_STACK_SIZE,
    thread_stack_top,
)
from .syscalls import BadSyscall, ProcessExited, dispatch


class System:
    """Kernel state: processes, run queue, console, PCB region."""

    def __init__(self, memory, clock=None, quantum: int = 20_000) -> None:
        self.memory = memory
        self.clock = clock or (lambda: 0)
        self.quantum = quantum
        self.processes: dict[int, Process] = {}
        self.run_queue: list[int] = []
        self.current_pid: int | None = None
        self.yield_requested = False
        self.context_switches = 0
        self._next_pid = 0
        self._thread_counts: dict[int, int] = {}
        memory.map_region("kernel", proc_mod.KERNEL_BASE,
                          proc_mod.KERNEL_SIZE)
        self._install_thread_exit_stub()

    # -- process lifecycle -------------------------------------------------------

    def spawn(self, asm_source: str, name: str = "app",
              entry_symbol: str = "main") -> Process:
        """Load a program into a fresh process slot and enqueue it."""
        pid = self._next_pid
        self._next_pid += 1
        process = load_program(self.memory, asm_source, pid, name,
                               entry_symbol=entry_symbol)
        self.processes[pid] = process
        self.run_queue.append(pid)
        # Populate the PCB so the address has real backing store.
        self.memory.write(process.pcb_addr, 8, pid)
        self.memory.write(process.pcb_addr + 8, 8, process.entry)
        return process

    def _install_thread_exit_stub(self) -> None:
        """A tiny kernel-resident routine that thread entry functions
        return into: it performs exit(0), so MiniC thread functions may
        simply return."""
        stub = Assembler(text_base=self.thread_exit_stub,
                         data_base=proc_mod.KERNEL_BASE
                         + proc_mod.KERNEL_SIZE - 4096).assemble(
            "main:\n"
            "    clr a0\n"
            "    clr v0\n"
            "    callsys\n", entry_symbol="main")
        self.memory.write_bytes(self.thread_exit_stub, stub.text)

    @property
    def thread_exit_stub(self) -> int:
        return proc_mod.KERNEL_BASE + 0x8000

    def spawn_thread(self, parent: Process, entry_pc: int,
                     argument: int) -> Process:
        """Create a thread: shares *parent*'s address-space slot, gets
        its own 256 KiB stack, PCB and scheduler entry.  Thread identity
        at the hardware level is the new PCB address, so
        ``fi_activate_inst`` targets threads individually
        (Section III.A.2)."""
        pid = self._next_pid
        self._next_pid += 1
        slot = parent.slot_pid
        index = self._thread_counts.get(slot, 0)
        self._thread_counts[slot] = index + 1
        top = thread_stack_top(slot, index)
        region = f"t{pid}.stack"
        self.memory.map_region(region, top - THREAD_STACK_SIZE,
                               THREAD_STACK_SIZE)

        thread = Process(pid=pid, name=f"{parent.name}.t{index}",
                         entry=entry_pc, slot_pid=slot, is_thread=True,
                         stack_region=region)
        thread.symbols = parent.symbols
        thread.console = parent.console      # threads share stdout
        intregs = [0] * 32
        intregs[REG_SP] = top - 64
        intregs[REG_GP] = proc_mod.data_base(slot)
        intregs[REG_RA] = self.thread_exit_stub
        intregs[REG_A0] = argument & ((1 << 64) - 1)
        thread.context = {"int": intregs, "fp": [0] * 32,
                          "pc": entry_pc}
        self.processes[pid] = thread
        self.run_queue.append(pid)
        self.memory.write(thread.pcb_addr, 8, pid)
        self.memory.write(thread.pcb_addr + 8, 8, entry_pc)
        return thread

    def current_process(self) -> Process | None:
        if self.current_pid is None:
            return None
        return self.processes[self.current_pid]

    @property
    def runnable(self) -> list[int]:
        return [pid for pid in self.run_queue
                if self.processes[pid].alive]

    @property
    def any_alive(self) -> bool:
        return any(p.alive for p in self.processes.values())

    # -- dispatch / context switching ----------------------------------------------

    def schedule(self, core: Core) -> Process | None:
        """Pick the next runnable process and install it on *core*."""
        runnable = self.runnable
        if not runnable:
            self.current_pid = None
            return None
        # Round robin: rotate past the current process.
        if self.current_pid in runnable:
            index = (runnable.index(self.current_pid) + 1) % len(runnable)
            next_pid = runnable[index]
        else:
            next_pid = runnable[0]
        self._switch_to(core, next_pid)
        return self.processes[next_pid]

    def _switch_to(self, core: Core, pid: int) -> None:
        outgoing = self.current_process()
        if outgoing is not None and outgoing.pid == pid:
            return
        if outgoing is not None and outgoing.alive:
            outgoing.context = core.arch.snapshot()
            outgoing.state = ProcessState.READY
            # Touch the PCB like a real kernel saving state.
            self.memory.write(outgoing.pcb_addr + 16, 8,
                              core.arch.pc & ((1 << 64) - 1))
        incoming = self.processes[pid]
        core.arch.restore(incoming.context)
        incoming.state = ProcessState.RUNNING
        self.current_pid = pid
        core.pcb_addr = incoming.pcb_addr
        self.context_switches += 1
        if core.injector is not None:
            core.injector.on_context_switch(core, incoming.pcb_addr)
        else:
            core.fi_thread = None

    # -- trap handling ----------------------------------------------------------------

    def syscall(self, core: Core) -> None:
        """PAL ``callsys`` handler (invoked from the CPU's execute phase)."""
        process = self.current_process()
        if process is None:
            raise SimTrap("syscall with no current process")
        try:
            dispatch(self, core, process)
        except BadSyscall as exc:
            raise SimTrap(str(exc), pc=core.arch.pc) from exc

    def on_exit(self, core: Core, exited: ProcessExited) -> None:
        process = self.processes[exited.pid]
        process.state = ProcessState.EXITED
        process.exit_code = exited.code
        process.instructions = core.committed
        self._reclaim(process)
        self.schedule(core)

    def on_crash(self, core: Core, trap: SimTrap) -> None:
        process = self.current_process()
        if process is None:
            raise trap
        process.state = ProcessState.CRASHED
        process.crash_reason = f"{type(trap).__name__}: {trap}"
        process.crash_pc = trap.pc if trap.pc is not None \
            else core.arch.pc
        process.instructions = core.committed
        self._reclaim(process)
        self.schedule(core)

    def _reclaim(self, process: Process) -> None:
        """Release a finished process's memory.  Threads only own their
        stack; the slot belongs to (and dies with) the main process."""
        if process.is_thread:
            self.memory.unmap_region(process.stack_region)
            return
        unload_process(self.memory, process)

    # -- checkpoint support --------------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "processes": {pid: p.snapshot()
                          for pid, p in self.processes.items()},
            "run_queue": list(self.run_queue),
            "current_pid": self.current_pid,
            "context_switches": self.context_switches,
            "next_pid": self._next_pid,
            "quantum": self.quantum,
            "thread_counts": dict(self._thread_counts),
        }

    def restore(self, snap: dict) -> None:
        self.processes = {pid: Process.from_snapshot(ps)
                          for pid, ps in snap["processes"].items()}
        self.run_queue = list(snap["run_queue"])
        self.current_pid = snap["current_pid"]
        self.context_switches = snap["context_switches"]
        self._next_pid = snap["next_pid"]
        self.quantum = snap["quantum"]
        self._thread_counts = dict(snap.get("thread_counts", {}))
        # Threads share their slot owner's console buffer; restore
        # the aliasing that per-process snapshots flattened.
        for process in self.processes.values():
            if process.is_thread and process.slot_pid in self.processes:
                owner = self.processes[process.slot_pid]
                owner.console += process.console
                process.console = owner.console
