"""Processes and their Process Control Blocks.

GemFI identifies threads "at the hardware/simulator level by their unique
Process Control Block (PCB) address" (Section III.C).  The kernel
allocates one PCB per process inside a dedicated kernel memory region;
context switches update the core's PCB pointer, which is what the fault
injector tracks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

# Per-process address-space slots (all below 2**31 so that the two-
# instruction ldah/lda idiom can materialise any address).
SLOT_BASE = 0x01000000
SLOT_SIZE = 0x04000000          # 64 MiB per process
TEXT_OFFSET = 0x00000000
DATA_OFFSET = 0x00400000        # 4 MiB of text is plenty
STACK_TOP_OFFSET = 0x03FF0000
STACK_SIZE = 1 << 20            # 1 MiB stacks
# Thread stacks are carved below the main stack inside the owner's
# slot: 256 KiB each, one slot-relative index per spawned thread.
THREAD_STACK_SIZE = 1 << 18

KERNEL_BASE = 0xF0000000
KERNEL_SIZE = 1 << 20
PCB_SIZE = 256


class ProcessState(Enum):
    READY = "ready"
    RUNNING = "running"
    EXITED = "exited"
    CRASHED = "crashed"


def text_base(pid: int) -> int:
    return SLOT_BASE + pid * SLOT_SIZE + TEXT_OFFSET


def data_base(pid: int) -> int:
    return SLOT_BASE + pid * SLOT_SIZE + DATA_OFFSET


def stack_top(pid: int) -> int:
    return SLOT_BASE + pid * SLOT_SIZE + STACK_TOP_OFFSET


def thread_stack_top(slot_pid: int, thread_index: int) -> int:
    """Top of the *thread_index*-th thread stack in a process slot
    (below the main stack, growing downwards per thread)."""
    return (stack_top(slot_pid) - STACK_SIZE
            - thread_index * THREAD_STACK_SIZE)


def pcb_address(pid: int) -> int:
    return KERNEL_BASE + pid * PCB_SIZE


@dataclass
class Process:
    """One schedulable entity with its own address-space slot."""

    pid: int
    name: str
    entry: int
    state: ProcessState = ProcessState.READY
    exit_code: int | None = None
    crash_reason: str | None = None
    crash_pc: int | None = None
    # Saved architectural context (ArchState.snapshot()).
    context: dict | None = None
    console: bytearray = field(default_factory=bytearray)
    brk: int = 0
    symbols: dict[str, int] = field(default_factory=dict)
    instructions: int = 0
    # Threads share the address-space slot of their spawner; for a
    # main process slot_pid == pid.
    slot_pid: int = -1
    is_thread: bool = False
    stack_region: str = ""

    def __post_init__(self) -> None:
        if self.slot_pid < 0:
            self.slot_pid = self.pid

    @property
    def pcb_addr(self) -> int:
        return pcb_address(self.pid)

    @property
    def alive(self) -> bool:
        return self.state in (ProcessState.READY, ProcessState.RUNNING)

    def console_text(self, errors: str = "replace") -> str:
        return self.console.decode("utf-8", errors=errors)

    def symbol(self, name: str) -> int:
        """Address of a program symbol (workload output arrays etc.)."""
        return self.symbols[name]

    def snapshot(self) -> dict:
        return {
            "pid": self.pid,
            "name": self.name,
            "entry": self.entry,
            "state": self.state.value,
            "exit_code": self.exit_code,
            "crash_reason": self.crash_reason,
            "crash_pc": self.crash_pc,
            "context": self.context,
            "console": bytes(self.console),
            "brk": self.brk,
            "symbols": dict(self.symbols),
            "instructions": self.instructions,
            "slot_pid": self.slot_pid,
            "is_thread": self.is_thread,
            "stack_region": self.stack_region,
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Process":
        proc = cls(pid=snap["pid"], name=snap["name"], entry=snap["entry"])
        proc.state = ProcessState(snap["state"])
        proc.exit_code = snap["exit_code"]
        proc.crash_reason = snap["crash_reason"]
        proc.crash_pc = snap["crash_pc"]
        proc.context = snap["context"]
        proc.console = bytearray(snap["console"])
        proc.brk = snap["brk"]
        proc.symbols = dict(snap["symbols"])
        proc.instructions = snap["instructions"]
        proc.slot_pid = snap.get("slot_pid", proc.pid)
        proc.is_thread = snap.get("is_thread", False)
        proc.stack_region = snap.get("stack_region", "")
        return proc
