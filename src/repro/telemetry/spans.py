"""Distributed span tracing across a NoW campaign.

FINJ-style campaigns need a *causally linked* view of what every
workstation did and when; this module provides it with the smallest
possible mechanism:

* a :class:`TraceContext` derives a **deterministic trace id** from the
  campaign seed, and every span id is a digest of the span's *path*
  within that trace (``/campaign/exp_0003/window``).  Reruns of the same
  seed therefore produce byte-identical span identities, and a worker
  process can compute its parent's span id without ever talking to the
  coordinator — propagating the context across processes is just
  "agree on the seed", which the share's ``workload.json`` already does;
* a :class:`Span` carries host timestamps *and* simulated-tick bounds,
  so the merged timeline (:mod:`repro.telemetry.timeline`) can render
  either a wall-clock or a fully deterministic ticks view;
* a :class:`Tracer` manages the open-span stack of one worker and
  appends records to ``share/spans/<worker>.jsonl`` through a
  :class:`JsonlSpanSink`.  Each span is written twice: an ``open``
  record at start (so the watchdog can see in-flight experiments) and a
  full ``span`` record at finish.

Like the trace bus and the profiler, the whole layer is zero-overhead
when disabled: a runner/simulator without a tracer carries
``tracer = None`` and the only cost anywhere is a pointer test on rare
events (experiment boundaries, checkpoint save/restore).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager

SPAN_DIR = "spans"

# Path of the campaign root span: the coordinator opens it, and worker
# tracers parent their experiment spans under it by construction.
CAMPAIGN_PATH = "/campaign"


def _digest(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]


class TraceContext:
    """Deterministic trace identity derived from the campaign seed.

    Two processes (or two reruns) that build a context from the same
    seed agree on every id without communicating.
    """

    __slots__ = ("seed", "name", "trace_id")

    def __init__(self, seed, name: str = "campaign") -> None:
        self.seed = seed
        self.name = name
        self.trace_id = _digest(f"gemfi:{name}:{seed}")

    def span_id(self, path: str) -> str:
        """The id of the span at *path* within this trace."""
        return _digest(f"{self.trace_id}:{path}")


class Span:
    """One timed operation in the campaign tree."""

    __slots__ = ("name", "path", "span_id", "parent_id", "trace_id",
                 "worker", "t0", "t1", "tick0", "tick1", "attrs")

    def __init__(self, name: str, path: str, span_id: str,
                 parent_id: str | None, trace_id: str,
                 worker: str | None = None,
                 t0: float | None = None, t1: float | None = None,
                 tick0: int | None = None, tick1: int | None = None,
                 attrs: dict | None = None) -> None:
        self.name = name
        self.path = path
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.worker = worker
        self.t0 = t0
        self.t1 = t1
        self.tick0 = tick0
        self.tick1 = tick1
        self.attrs = attrs if attrs is not None else {}

    @property
    def duration(self) -> float | None:
        if self.t0 is None or self.t1 is None:
            return None
        return self.t1 - self.t0

    def as_dict(self) -> dict:
        return {
            "ev": "span", "name": self.name, "path": self.path,
            "span": self.span_id, "parent": self.parent_id,
            "trace": self.trace_id, "worker": self.worker,
            "t0": self.t0, "t1": self.t1,
            "tick0": self.tick0, "tick1": self.tick1,
            "attrs": dict(self.attrs),
        }

    def open_dict(self) -> dict:
        out = self.as_dict()
        out["ev"] = "open"
        out.pop("t1")
        out.pop("tick1")
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Span {self.path} [{self.span_id}]>"


class JsonlSpanSink:
    """Append span records as JSON lines (``share/spans/<ws>.jsonl``).

    The directory is created lazily on the first record, so a campaign
    with tracing disabled never grows a ``spans/`` directory — the share
    layout stays byte-identical to the untraced protocol.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None

    def accept(self, record: dict) -> None:
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class ListSpanSink:
    """Collect records in memory (tests, in-process consumers)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def accept(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class Tracer:
    """The open-span stack of one process, writing to a sink.

    ``base_path`` anchors this tracer's top-level spans under a remote
    parent: a worker constructed with ``base_path=CAMPAIGN_PATH``
    parents its experiment spans under the coordinator's campaign span
    purely by id arithmetic — no handshake, no shared state.

    ``root_parent`` goes one step further out: it is a literal span id
    that becomes the parent of this tracer's *root* spans (those with
    no base_path), without affecting their own paths or ids.  The
    campaign service uses it to hang a job's ``/campaign`` tree under
    the span of the HTTP request that created the job — every id in
    the campaign tree stays exactly what an unrooted run would
    compute, so workers need no new coordination.
    """

    def __init__(self, context: TraceContext, sink=None,
                 worker: str | None = None, base_path: str = "",
                 root_parent: str | None = None,
                 clock=time.time) -> None:
        self.context = context
        self.sink = sink
        self.worker = worker
        self.base_path = base_path
        self.root_parent = root_parent
        self.clock = clock
        self.finished: list[Span] = []
        self._stack: list[Span] = []
        self._counts: dict[str, int] = {}

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def _child_path(self, name: str, parent: Span | None) -> str:
        prefix = parent.path if parent is not None else self.base_path
        base = f"{prefix}/{name}"
        count = self._counts.get(base, 0)
        self._counts[base] = count + 1
        return base if count == 0 else f"{base}#{count}"

    def _make_span(self, name: str, parent: Span | None,
                   attrs: dict) -> Span:
        path = self._child_path(name, parent)
        if parent is not None:
            parent_id = parent.span_id
        elif self.base_path:
            parent_id = self.context.span_id(self.base_path)
        else:
            parent_id = self.root_parent
        return Span(name=name, path=path,
                    span_id=self.context.span_id(path),
                    parent_id=parent_id,
                    trace_id=self.context.trace_id,
                    worker=self.worker, attrs=attrs)

    def start(self, name: str, tick: int | None = None,
              **attrs) -> Span:
        """Open a span as a child of the current one (or the root)."""
        span = self._make_span(name, self.current, dict(attrs))
        span.t0 = self.clock()
        span.tick0 = tick
        self._stack.append(span)
        if self.sink is not None:
            self.sink.accept(span.open_dict())
        return span

    def finish(self, span: Span, tick: int | None = None,
               **attrs) -> Span:
        """Close *span*, stamping the end time and merging *attrs*."""
        span.t1 = self.clock()
        if tick is not None:
            span.tick1 = tick
        span.attrs.update(attrs)
        if span in self._stack:
            self._stack.remove(span)
        self.finished.append(span)
        if self.sink is not None:
            self.sink.accept(span.as_dict())
        return span

    @contextmanager
    def span(self, name: str, tick: int | None = None, **attrs):
        """``with tracer.span("checkpoint_save"): ...``"""
        opened = self.start(name, tick=tick, **attrs)
        try:
            yield opened
        finally:
            self.finish(opened, tick=tick)

    def annotate(self, span: Span, **attrs) -> None:
        span.attrs.update(attrs)

    def record(self, name: str, t0: float, t1: float,
               tick0: int | None = None, tick1: int | None = None,
               parent: Span | None = None, **attrs) -> Span:
        """Retro-record an already-elapsed child span.

        Used for quantities only known after the fact — the
        boot/window/injection/drain host-time phase split is computed
        once an experiment completes, then recorded as children that
        partition the experiment span exactly.
        """
        span = self._make_span(name, parent if parent is not None
                               else self.current, dict(attrs))
        span.t0 = t0
        span.t1 = t1
        span.tick0 = tick0
        span.tick1 = tick1
        self.finished.append(span)
        if self.sink is not None:
            self.sink.accept(span.as_dict())
        return span

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()


# -- reading span logs back ---------------------------------------------------


def span_log_path(share_dir: str, worker_id: str) -> str:
    return os.path.join(share_dir, SPAN_DIR, f"{worker_id}.jsonl")


def read_span_records(share_dir: str) -> list[dict]:
    """Every span record on the share, in per-worker file order."""
    directory = os.path.join(share_dir, SPAN_DIR)
    if not os.path.isdir(directory):
        return []
    records: list[dict] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".jsonl"):
            continue
        try:
            with open(os.path.join(directory, name), "r",
                      encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue  # a worker caught mid-write
    return records


def load_spans(share_dir: str) -> tuple[list[dict], list[dict]]:
    """Split the share's span records into (finished, still-open).

    A span is *open* when its ``open`` record has no matching ``span``
    record yet — an experiment in flight, or one whose worker died
    mid-run (the watchdog's stalled/dead detection feeds on these).
    """
    records = read_span_records(share_dir)
    finished = [r for r in records if r.get("ev") == "span"]
    closed_ids = {r.get("span") for r in finished}
    opened = [r for r in records
              if r.get("ev") == "open" and r.get("span") not in closed_ids]
    return finished, opened
