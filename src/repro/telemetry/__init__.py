"""Structured tracing, metrics registry and campaign observability.

The pillars (see ``docs/observability.md``):

* :mod:`~repro.telemetry.metrics` — gem5-style statistics types
  (:class:`Counter`, :class:`Distribution`, :class:`Histogram`,
  :class:`Formula`) under a hierarchical :class:`MetricsRegistry`;
* :mod:`~repro.telemetry.events` / :mod:`~repro.telemetry.sinks` — the
  JSONL trace bus with ring-buffer and file sinks, zero-overhead when
  no bus is attached;
* :mod:`~repro.telemetry.campaign` — run manifests, worker heartbeats
  and live campaign status over a shared-directory campaign;
* :mod:`~repro.telemetry.flight` — the fault-propagation flight
  recorder: golden-run architectural digests and first-divergence
  scanning of faulty runs;
* :mod:`~repro.telemetry.pipeview` / :mod:`~repro.telemetry.report` —
  O3 pipeline visualization and deterministic campaign outcome reports,
  both rendered purely from captured data;
* :mod:`~repro.telemetry.profiler` — the simulator self-profiler:
  scoped-timer host-time attribution across CPU stages / caches /
  kernel / injector / sinks, SIGPROF sampling, folded flame-graph
  output and sim-rate (KIPS) gauges, zero-overhead when not installed.
"""

from .campaign import (
    CampaignStatus,
    campaign_metrics,
    diff_stats,
    git_describe,
    parse_stats,
    read_heartbeats,
    read_status,
    render_status,
    run_manifest,
    write_heartbeat,
)
from .events import (
    EVENT_KINDS,
    TraceBus,
    TraceEvent,
    events_from_jsonl,
    events_to_jsonl,
)
from .flight import (
    DivergenceScanner,
    FlightRecorder,
    GoldenFlightLog,
    hamming,
    regfile_checksum,
)
from .metrics import (
    Counter,
    Distribution,
    Formula,
    Histogram,
    MetricsRegistry,
    Scalar,
    Scope,
    format_value,
)
from .pipeview import collect_pipeline, render_from_events, render_pipeview
from .profiler import Profiler, SamplingProfiler, sim_rates
from .report import (
    CampaignReport,
    latency_histogram,
    load_share,
    render_html,
    render_markdown,
    render_report,
)
from .sinks import (
    JsonlFileSink,
    ListSink,
    RingBufferSink,
    follow_jsonl,
    read_jsonl,
)

__all__ = [
    "CampaignReport", "CampaignStatus", "Counter", "Distribution",
    "DivergenceScanner", "EVENT_KINDS", "FlightRecorder", "Formula",
    "GoldenFlightLog", "Histogram", "JsonlFileSink", "ListSink",
    "MetricsRegistry", "Profiler", "RingBufferSink", "SamplingProfiler",
    "Scalar", "Scope", "TraceBus",
    "TraceEvent", "campaign_metrics", "collect_pipeline", "diff_stats",
    "events_from_jsonl", "events_to_jsonl", "follow_jsonl",
    "format_value", "git_describe", "hamming", "latency_histogram",
    "load_share", "parse_stats", "read_heartbeats", "read_jsonl",
    "read_status", "regfile_checksum", "render_from_events",
    "render_html", "render_markdown", "render_pipeview",
    "render_report", "render_status", "run_manifest", "sim_rates",
    "write_heartbeat",
]
