"""Structured tracing, metrics registry and campaign observability.

The pillars (see ``docs/observability.md``):

* :mod:`~repro.telemetry.metrics` — gem5-style statistics types
  (:class:`Counter`, :class:`Distribution`, :class:`Histogram`,
  :class:`Formula`) under a hierarchical :class:`MetricsRegistry`;
* :mod:`~repro.telemetry.events` / :mod:`~repro.telemetry.sinks` — the
  JSONL trace bus with ring-buffer and file sinks, zero-overhead when
  no bus is attached;
* :mod:`~repro.telemetry.campaign` — run manifests, worker heartbeats
  and live campaign status over a shared-directory campaign;
* :mod:`~repro.telemetry.flight` — the fault-propagation flight
  recorder: golden-run architectural digests and first-divergence
  scanning of faulty runs;
* :mod:`~repro.telemetry.pipeview` / :mod:`~repro.telemetry.report` —
  O3 pipeline visualization and deterministic campaign outcome reports,
  both rendered purely from captured data;
* :mod:`~repro.telemetry.profiler` — the simulator self-profiler:
  scoped-timer host-time attribution across CPU stages / caches /
  kernel / injector / sinks, SIGPROF sampling, folded flame-graph
  output and sim-rate (KIPS) gauges, zero-overhead when not installed;
* :mod:`~repro.telemetry.spans` — distributed span tracing across the
  NoW campaign with deterministic seed-derived ids (same seed, same
  trace), zero-overhead when no tracer is attached;
* :mod:`~repro.telemetry.timeline` — merges all workers' span logs into
  one Chrome trace-event JSON for Perfetto / ``chrome://tracing``;
* :mod:`~repro.telemetry.watchdog` — declarative campaign alert rules
  (dead-worker / stalled-experiment / throughput-collapse /
  outcome-drift) plus the ``gemfi dashboard`` live view and the
  ``alerts.jsonl`` journal.
"""

from .campaign import (
    CampaignStatus,
    PeriodicBeat,
    campaign_metrics,
    diff_stats,
    git_describe,
    parse_stats,
    read_heartbeats,
    read_service_context,
    read_status,
    render_status,
    run_manifest,
    write_heartbeat,
)
from .events import (
    EVENT_KINDS,
    TraceBus,
    TraceEvent,
    events_from_jsonl,
    events_to_jsonl,
)
from .history import (
    DEFAULT_INTERVAL,
    DEFAULT_RETENTION,
    HistoryRecorder,
    HistoryStore,
    numeric_snapshot,
)
from .flight import (
    DivergenceScanner,
    FlightRecorder,
    GoldenFlightLog,
    hamming,
    regfile_checksum,
)
from .export import (
    OPENMETRICS_CONTENT_TYPE,
    labelled,
    parse_metric_name,
    parse_openmetrics,
    render_openmetrics,
    sanitize_metric_name,
)
from .metrics import (
    Counter,
    Distribution,
    Formula,
    Histogram,
    MetricsRegistry,
    Scalar,
    Scope,
    format_value,
)
from .pipeview import collect_pipeline, render_from_events, render_pipeview
from .profiler import Profiler, SamplingProfiler, sim_rates
from .report import (
    CampaignReport,
    latency_histogram,
    load_share,
    render_html,
    render_markdown,
    render_report,
)
from .sinks import (
    JsonlFileSink,
    ListSink,
    RingBufferSink,
    follow_jsonl,
    read_jsonl,
)
from .spans import (
    JsonlSpanSink,
    ListSpanSink,
    Span,
    TraceContext,
    Tracer,
    load_spans,
    read_span_records,
    span_log_path,
)
from .timeline import (
    build_timeline,
    render_span_tree,
    render_timeline,
    render_timeline_svg,
    timeline_summary,
    validate_trace,
    write_timeline,
)
from .watchdog import (
    Alert,
    WatchdogConfig,
    alerts_feed,
    append_alerts,
    dashboard_view,
    evaluate_alerts,
    read_alerts,
    render_dashboard,
    snapshot_share,
)

__all__ = [
    "Alert", "CampaignReport", "CampaignStatus", "Counter",
    "DEFAULT_INTERVAL", "DEFAULT_RETENTION",
    "Distribution", "DivergenceScanner", "EVENT_KINDS",
    "FlightRecorder", "Formula", "GoldenFlightLog",
    "HistoryRecorder", "HistoryStore", "Histogram",
    "JsonlFileSink", "JsonlSpanSink", "ListSink", "ListSpanSink",
    "MetricsRegistry", "OPENMETRICS_CONTENT_TYPE", "PeriodicBeat",
    "Profiler", "RingBufferSink", "SamplingProfiler",
    "Scalar", "Scope", "Span", "TraceBus", "TraceContext", "TraceEvent",
    "Tracer", "WatchdogConfig", "alerts_feed", "append_alerts",
    "build_timeline",
    "campaign_metrics", "collect_pipeline", "dashboard_view",
    "diff_stats", "evaluate_alerts", "events_from_jsonl",
    "events_to_jsonl", "follow_jsonl", "format_value", "git_describe",
    "hamming", "labelled", "latency_histogram", "load_share",
    "load_spans", "numeric_snapshot",
    "parse_metric_name", "parse_openmetrics", "parse_stats",
    "read_alerts", "read_heartbeats", "read_jsonl",
    "read_service_context", "read_span_records", "read_status",
    "regfile_checksum",
    "render_dashboard", "render_from_events", "render_html",
    "render_markdown", "render_openmetrics", "render_pipeview",
    "render_report",
    "render_span_tree",
    "render_status", "render_timeline", "render_timeline_svg",
    "run_manifest",
    "sanitize_metric_name", "sim_rates",
    "snapshot_share", "span_log_path", "timeline_summary",
    "validate_trace", "write_heartbeat", "write_timeline",
]
