"""Structured tracing, metrics registry and campaign observability.

Three pillars (see ``docs/observability.md``):

* :mod:`~repro.telemetry.metrics` — gem5-style statistics types
  (:class:`Counter`, :class:`Distribution`, :class:`Histogram`,
  :class:`Formula`) under a hierarchical :class:`MetricsRegistry`;
* :mod:`~repro.telemetry.events` / :mod:`~repro.telemetry.sinks` — the
  JSONL trace bus with ring-buffer and file sinks, zero-overhead when
  no bus is attached;
* :mod:`~repro.telemetry.campaign` — run manifests, worker heartbeats
  and live campaign status over a shared-directory campaign.
"""

from .campaign import (
    CampaignStatus,
    campaign_metrics,
    diff_stats,
    git_describe,
    parse_stats,
    read_heartbeats,
    read_status,
    render_status,
    run_manifest,
    write_heartbeat,
)
from .events import (
    EVENT_KINDS,
    TraceBus,
    TraceEvent,
    events_from_jsonl,
    events_to_jsonl,
)
from .metrics import (
    Counter,
    Distribution,
    Formula,
    Histogram,
    MetricsRegistry,
    Scalar,
    Scope,
    format_value,
)
from .sinks import JsonlFileSink, ListSink, RingBufferSink, read_jsonl

__all__ = [
    "CampaignStatus", "Counter", "Distribution", "EVENT_KINDS",
    "Formula", "Histogram", "JsonlFileSink", "ListSink",
    "MetricsRegistry", "RingBufferSink", "Scalar", "Scope", "TraceBus",
    "TraceEvent", "campaign_metrics", "diff_stats", "events_from_jsonl",
    "events_to_jsonl", "format_value", "git_describe", "parse_stats",
    "read_heartbeats", "read_jsonl", "read_status", "render_status",
    "run_manifest", "write_heartbeat",
]
