"""gemfi report: campaign outcome reports from a share directory.

Aggregates the ``results/`` records of a :class:`~repro.campaign.now.
SharedDirCampaign` share into the shape of the paper's evaluation
figures — outcome totals, outcome distribution by fault location
(Fig. 5) and by injection timing (Fig. 6) — plus a divergence-latency
histogram built from the flight-recorder records the campaign runner
attaches to each result.

Rendering is **byte-deterministic**: the same share produces the same
Markdown/HTML byte-for-byte across runs (no timestamps, no absolute
paths, fully sorted iteration), so reports can be diffed, cached and
archived as CI artifacts.  Outcome totals are computed exactly the way
:func:`~repro.telemetry.campaign.read_status` counts them, so the two
views of a campaign always agree.
"""

from __future__ import annotations

import html as _html
import json
import os
from dataclasses import dataclass, field

from ..core.fault import LocationKind
from ..core.parser import FaultParseError, parse_fault_file

# Keep in sync with repro.campaign.classify.OUTCOME_ORDER (imported
# lazily nowhere: the report only handles result *dicts*, and unknown
# outcome strings are appended after the canonical ones).
OUTCOME_ORDER = ("crashed", "non_propagated", "strictly_correct",
                 "correct", "sdc")

LOCATION_LABELS = {
    LocationKind.INT_REG: "int regfile",
    LocationKind.FP_REG: "fp regfile",
    LocationKind.PC: "pc",
    LocationKind.FETCH: "fetch",
    LocationKind.DECODE: "decode",
    LocationKind.EXECUTE: "execute",
    LocationKind.MEM: "mem",
}
LOCATION_ROWS = tuple(LOCATION_LABELS[k]
                      for k in sorted(LOCATION_LABELS,
                                      key=lambda k: k.value))

TIME_BINS = 10


@dataclass
class CampaignReport:
    """Aggregated view of one share directory's results."""

    name: str
    experiments: int = 0
    outcomes: dict[str, int] = field(default_factory=dict)
    # location label -> outcome -> count
    by_location: dict[str, dict[str, int]] = field(default_factory=dict)
    # decile index -> outcome -> count
    by_time: list[dict[str, int]] = field(
        default_factory=lambda: [{} for _ in range(TIME_BINS)])
    # flight-recorder injection-to-divergence latencies (ticks)
    latencies: list[int] = field(default_factory=list)
    divergence_kinds: dict[str, int] = field(default_factory=dict)
    # host-time roll-up: (wall_seconds, experiment name) per result,
    # total simulated instructions, and boot/window/injection/drain
    # phase sums (the repro.telemetry.profiler campaign attribution)
    walls: list[tuple[float, str]] = field(default_factory=list)
    instructions_total: int = 0
    phase_totals: dict[str, float] = field(default_factory=dict)
    # Fault-space coverage payload (repro.analysis.coverage
    # FaultSpaceMap.as_dict()); None when the share carries no results.
    coverage: dict | None = None

    def outcome_columns(self) -> list[str]:
        extra = sorted(set(self.outcomes) - set(OUTCOME_ORDER))
        return [o for o in OUTCOME_ORDER if o in self.outcomes] + extra


def _fault_location(entry: dict) -> str:
    """Fault-location row label of one result record.  Prefers the
    self-describing ``fault_file`` provenance; ``fault`` (the described
    first fault) is the fallback for pre-telemetry result sets."""
    for key in ("fault_file", "fault"):
        text = entry.get(key)
        if not text:
            continue
        try:
            faults = parse_fault_file(text)
        except FaultParseError:
            continue
        if faults:
            return LOCATION_LABELS[faults[0].location]
    return "unknown"


def load_share(share_dir: str) -> CampaignReport:
    """Read every ``results/exp_*.json`` of *share_dir* into a report.

    Only the directory's basename enters the report (determinism: the
    same share mounted at two paths renders identically).
    """
    report = CampaignReport(
        name=os.path.basename(os.path.normpath(share_dir)))
    results_dir = os.path.join(share_dir, "results")
    names = sorted(os.listdir(results_dir)) \
        if os.path.isdir(results_dir) else []
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(results_dir, name), "r",
                      encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            continue  # mid-write, exactly like read_status
        add_result(report, entry, name=name[:-len(".json")])
    if report.experiments:
        # Lazy import keeps telemetry importable without the analysis
        # package loaded (and the analysis <-> campaign import order
        # intact).  Coverage payloads are byte-deterministic, so the
        # report stays diffable.
        from ..analysis.coverage import coverage_from_share
        report.coverage = coverage_from_share(share_dir).as_dict()
    return report


def add_result(report: CampaignReport, entry: dict,
               name: str = "") -> None:
    """Fold one result record into the aggregates."""
    report.experiments += 1
    outcome = entry.get("outcome", "unknown")
    report.outcomes[outcome] = report.outcomes.get(outcome, 0) + 1
    location = _fault_location(entry)
    row = report.by_location.setdefault(location, {})
    row[outcome] = row.get(outcome, 0) + 1
    fraction = entry.get("time_fraction")
    if isinstance(fraction, (int, float)):
        index = min(TIME_BINS - 1, max(0, int(fraction * TIME_BINS)))
        cell = report.by_time[index]
        cell[outcome] = cell.get(outcome, 0) + 1
    divergence = entry.get("divergence")
    if isinstance(divergence, dict):
        kind = divergence.get("kind", "unknown")
        report.divergence_kinds[kind] = \
            report.divergence_kinds.get(kind, 0) + 1
        latency = divergence.get("latency")
        if isinstance(latency, int) and latency >= 0:
            report.latencies.append(latency)
    wall = entry.get("wall_seconds")
    if isinstance(wall, (int, float)):
        report.walls.append((float(wall),
                             name or f"exp_{report.experiments:05d}"))
        report.instructions_total += int(entry.get("instructions") or 0)
    phases = entry.get("phases")
    if isinstance(phases, dict):
        for phase, seconds in phases.items():
            if isinstance(seconds, (int, float)):
                report.phase_totals[phase] = \
                    report.phase_totals.get(phase, 0.0) + float(seconds)


# -- the divergence-latency histogram ----------------------------------------


def latency_histogram(latencies: list[int]) -> list[tuple[str, int]]:
    """Power-of-two tick buckets: ("0", n), ("1-1", n), ("2-3", n)..."""
    if not latencies:
        return []
    buckets: dict[int, int] = {}
    for latency in latencies:
        index = 0 if latency == 0 else latency.bit_length()
        buckets[index] = buckets.get(index, 0) + 1
    rows = []
    for index in range(max(buckets) + 1):
        count = buckets.get(index, 0)
        label = "0" if index == 0 else \
            f"{1 << (index - 1)}-{(1 << index) - 1}"
        rows.append((label, count))
    return rows


def _bar(count: int, peak: int, width: int = 40) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1 if count else 0,
                     round(count / peak * width))


# -- table assembly (shared by both formats) ---------------------------------


def _outcome_table(report: CampaignReport) -> tuple[list[str], list[list]]:
    header = ["outcome", "count", "fraction"]
    total = report.experiments or 1
    rows = [[outcome, report.outcomes[outcome],
             f"{report.outcomes[outcome] / total:.1%}"]
            for outcome in report.outcome_columns()]
    rows.append(["TOTAL", report.experiments, "100.0%"])
    return header, rows


def _grouped_table(report: CampaignReport, groups: list[tuple[str, dict]]
                   ) -> tuple[list[str], list[list]]:
    columns = report.outcome_columns()
    header = ["group", "n"] + columns
    rows = []
    for label, counts in groups:
        n = sum(counts.values())
        rows.append([label, n]
                    + [counts.get(outcome, 0) for outcome in columns])
    return header, rows


def _location_groups(report: CampaignReport) -> list[tuple[str, dict]]:
    labels = [label for label in LOCATION_ROWS
              if label in report.by_location]
    labels += sorted(set(report.by_location) - set(labels))
    return [(label, report.by_location[label]) for label in labels]


PHASE_ORDER = ("boot", "window", "injection", "drain")


def _host_table(report: CampaignReport
                ) -> tuple[list[str], list[list]] | None:
    """Host-time summary table; None when the results carry no
    wall_seconds (pre-telemetry result sets)."""
    if not report.walls:
        return None
    from .campaign import percentile
    values = [wall for wall, _ in report.walls]
    total = sum(values)
    rows = [
        ["wall total (s)", f"{total:.3f}"],
        ["wall mean (s)", f"{total / len(values):.4f}"],
        ["wall p50 (s)", f"{percentile(values, 0.5):.4f}"],
        ["wall p90 (s)", f"{percentile(values, 0.9):.4f}"],
    ]
    if total > 0 and report.instructions_total:
        kips = report.instructions_total / total / 1e3
        rows.append(["campaign KIPS", f"{kips:.1f}"])
    return ["metric", "value"], rows


def _slowest_table(report: CampaignReport, top: int = 3
                   ) -> tuple[list[str], list[list]]:
    ordered = sorted(report.walls,
                     key=lambda item: (-item[0], item[1]))[:top]
    return (["experiment", "wall (s)"],
            [[name, f"{wall:.4f}"] for wall, name in ordered])


def _phase_table(report: CampaignReport
                 ) -> tuple[list[str], list[list]] | None:
    if not report.phase_totals:
        return None
    phases = [p for p in PHASE_ORDER if p in report.phase_totals]
    phases += sorted(set(report.phase_totals) - set(PHASE_ORDER))
    total = sum(report.phase_totals.values())
    scale = total if total > 0 else 1.0
    rows = [[phase, f"{report.phase_totals[phase]:.3f}",
             f"{report.phase_totals[phase] / scale:.1%}"]
            for phase in phases]
    return ["phase", "seconds", "share"], rows


def _time_groups(report: CampaignReport) -> list[tuple[str, dict]]:
    groups = []
    for index, counts in enumerate(report.by_time):
        if not counts:
            continue
        low = index / TIME_BINS
        high = (index + 1) / TIME_BINS
        groups.append((f"t in [{low:.1f},{high:.1f})", counts))
    return groups


# -- Markdown ----------------------------------------------------------------


def _md_table(header: list[str], rows: list[list]) -> str:
    lines = ["| " + " | ".join(str(cell) for cell in header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def render_markdown(report: CampaignReport,
                    baseline: dict | None = None) -> str:
    parts = [f"# Campaign report: {report.name}", "",
             f"{report.experiments} completed experiments.", "",
             "## Outcome totals", "",
             _md_table(*_outcome_table(report))]
    location = _location_groups(report)
    if location:
        parts += ["", "## Outcomes by fault location", "",
                  _md_table(*_grouped_table(report, location))]
    timing = _time_groups(report)
    if timing:
        parts += ["", "## Outcomes by injection timing "
                      "(fraction of the FI window)", "",
                  _md_table(*_grouped_table(report, timing))]
    histogram = latency_histogram(report.latencies)
    if histogram:
        peak = max(count for _, count in histogram)
        parts += ["", "## Divergence latency (ticks, flight recorder)",
                  "",
                  f"{len(report.latencies)} divergences "
                  + "("
                  + ", ".join(f"{kind}={count}" for kind, count
                              in sorted(report.divergence_kinds.items()))
                  + ")", "",
                  "```"]
        width = max(len(label) for label, _ in histogram)
        for label, count in histogram:
            parts.append(f"{label.rjust(width)} | "
                         f"{_bar(count, peak)} {count}")
        parts += ["```"]
    host = _host_table(report)
    if host:
        parts += ["", "## Host time", "", _md_table(*host),
                  "", "### Slowest experiments", "",
                  _md_table(*_slowest_table(report))]
        phases = _phase_table(report)
        if phases:
            parts += ["", "### Wall time by campaign phase", "",
                      _md_table(*phases)]
    if report.coverage is not None:
        from ..analysis.coverage import coverage_report_tables
        prose, tables = coverage_report_tables(report.coverage)
        parts += ["", "## Fault-space coverage", ""]
        parts += [line for line in prose]
        for title, header, rows in tables:
            parts += ["", f"### {title}", "", _md_table(header, rows)]
    if baseline is not None:
        from ..analysis.diff import diff_report_tables
        prose, tables = diff_report_tables(baseline)
        parts += ["", "## Vs baseline", ""]
        parts += [line for line in prose]
        for title, header, rows in tables:
            parts += ["", f"### {title}", "", _md_table(header, rows)]
    parts.append("")
    return "\n".join(parts)


# -- HTML --------------------------------------------------------------------

_HTML_HEAD = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>Campaign report: {name}</title>
<style>
body {{ font-family: monospace; margin: 2em; }}
table {{ border-collapse: collapse; margin: 1em 0; }}
th, td {{ border: 1px solid #999; padding: 0.3em 0.8em; text-align: right; }}
th:first-child, td:first-child {{ text-align: left; }}
pre {{ background: #f4f4f4; padding: 1em; }}
</style></head><body>
"""


def _html_table(header: list[str], rows: list[list]) -> str:
    lines = ["<table>", "<tr>"
             + "".join(f"<th>{_html.escape(str(c))}</th>" for c in header)
             + "</tr>"]
    for row in rows:
        lines.append("<tr>"
                     + "".join(f"<td>{_html.escape(str(c))}</td>"
                               for c in row)
                     + "</tr>")
    lines.append("</table>")
    return "\n".join(lines)


def render_html(report: CampaignReport,
                baseline: dict | None = None) -> str:
    name = _html.escape(report.name)
    parts = [_HTML_HEAD.format(name=name),
             f"<h1>Campaign report: {name}</h1>",
             f"<p>{report.experiments} completed experiments.</p>",
             "<h2>Outcome totals</h2>",
             _html_table(*_outcome_table(report))]
    location = _location_groups(report)
    if location:
        parts += ["<h2>Outcomes by fault location</h2>",
                  _html_table(*_grouped_table(report, location))]
    timing = _time_groups(report)
    if timing:
        parts += ["<h2>Outcomes by injection timing</h2>",
                  _html_table(*_grouped_table(report, timing))]
    histogram = latency_histogram(report.latencies)
    if histogram:
        peak = max(count for _, count in histogram)
        width = max(len(label) for label, _ in histogram)
        body = "\n".join(f"{label.rjust(width)} | "
                         f"{_bar(count, peak)} {count}"
                         for label, count in histogram)
        parts += ["<h2>Divergence latency (ticks)</h2>",
                  f"<pre>{_html.escape(body)}</pre>"]
    host = _host_table(report)
    if host:
        parts += ["<h2>Host time</h2>", _html_table(*host),
                  "<h3>Slowest experiments</h3>",
                  _html_table(*_slowest_table(report))]
        phases = _phase_table(report)
        if phases:
            parts += ["<h3>Wall time by campaign phase</h3>",
                      _html_table(*phases)]
    if report.coverage is not None:
        from ..analysis.coverage import coverage_report_tables
        prose, tables = coverage_report_tables(report.coverage)
        parts.append("<h2>Fault-space coverage</h2>")
        parts += [f"<p>{_html.escape(line)}</p>" for line in prose]
        for title, header, rows in tables:
            parts += [f"<h3>{_html.escape(title)}</h3>",
                      _html_table(header, rows)]
    if baseline is not None:
        from ..analysis.diff import diff_report_tables
        prose, tables = diff_report_tables(baseline)
        parts.append("<h2>Vs baseline</h2>")
        parts += [f"<p>{_html.escape(line)}</p>" for line in prose]
        for title, header, rows in tables:
            parts += [f"<h3>{_html.escape(title)}</h3>",
                      _html_table(header, rows)]
    parts.append("</body></html>\n")
    return "\n".join(parts)


def render_report(report: CampaignReport, fmt: str = "md",
                  baseline: dict | None = None) -> str:
    """Render *report*; *baseline* is an optional
    ``repro.analysis.diff`` CampaignDiff payload (this campaign as
    head) appended as a "Vs baseline" section."""
    if fmt == "md":
        return render_markdown(report, baseline=baseline)
    if fmt == "html":
        return render_html(report, baseline=baseline)
    raise ValueError(f"unknown report format '{fmt}'")
