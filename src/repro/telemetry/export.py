"""OpenMetrics / Prometheus text exposition over a MetricsRegistry.

The registry (:mod:`repro.telemetry.metrics`) speaks gem5: flat dotted
names, ``name value`` dumps.  Operations tooling speaks Prometheus.
This module is the bridge:

* :func:`labelled` encodes a label set into a registry key
  (``http.requests{method="GET",route="/v1/jobs"}``) with sorted keys
  and escaped values, so labelled series stay ordinary registry entries
  and the byte-stable ``dump()`` discipline is untouched;
* :func:`render_openmetrics` walks a registry and emits the OpenMetrics
  text format — ``# TYPE``/``# HELP`` headers, name sanitization to the
  ``[a-zA-Z_:][a-zA-Z0-9_:]*`` charset, counters with the ``_total``
  suffix, histograms with **cumulative** ``le`` buckets plus ``+Inf``
  and ``_count``/``_sum``, distributions as summaries, and the
  ``# EOF`` terminator;
* :func:`parse_openmetrics` is the matching validator: it parses an
  exposition back into families and raises :class:`ValueError` on
  malformed names, broken escapes, non-cumulative buckets or a missing
  terminator.  CI scrapes ``GET /metrics`` and feeds it through this
  parser, so the served text is checked by the same code the tests use.

Rendering is deterministic: families sort by name, samples sort by
label signature — same registry state, same bytes.
"""

from __future__ import annotations

import re
from typing import Any

from .metrics import (
    Counter,
    Distribution,
    Formula,
    Histogram,
    MetricsRegistry,
    Scalar,
)

#: the content type a compliant scraper expects from ``GET /metrics``.
OPENMETRICS_CONTENT_TYPE = \
    "application/openmetrics-text; version=1.0.0; charset=utf-8"

_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def sanitize_metric_name(name: str) -> str:
    """Map an arbitrary registry name onto the metric-name charset:
    every illegal character (``.``, ``-``, space, ...) becomes ``_``
    and a leading digit gains a ``_`` prefix."""
    out = _BAD_CHARS.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _unescape_label_value(value: str) -> str:
    out = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\":
            if index + 1 >= len(value):
                raise ValueError(f"dangling escape in {value!r}")
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ("\\", '"'):
                out.append(nxt)
            else:
                raise ValueError(f"bad escape \\{nxt} in {value!r}")
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def labelled(name: str, **labels: Any) -> str:
    """The registry key for series *name* with *labels* attached.

    Labels are sorted and values escaped, so the same logical series
    always maps to the same key (and the registry's sorted dump stays
    deterministic)."""
    if not labels:
        return name
    parts = [f'{key}="{escape_label_value(str(value))}"'
             for key, value in sorted(labels.items())]
    return f"{name}{{{','.join(parts)}}}"


def parse_metric_name(key: str) -> tuple[str, dict[str, str]]:
    """Split a registry key back into ``(base_name, labels)``."""
    brace = key.find("{")
    if brace < 0:
        return key, {}
    if not key.endswith("}"):
        raise ValueError(f"unterminated label set in {key!r}")
    base = key[:brace]
    body = key[brace + 1:-1]
    labels: dict[str, str] = {}
    index = 0
    while index < len(body):
        eq = body.find("=", index)
        if eq < 0:
            raise ValueError(f"label without '=' in {key!r}")
        label = body[index:eq]
        if not _LABEL_NAME_RE.match(label):
            raise ValueError(f"bad label name {label!r} in {key!r}")
        if eq + 1 >= len(body) or body[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {key!r}")
        cursor = eq + 2
        raw = []
        while True:
            if cursor >= len(body):
                raise ValueError(f"unterminated label value in {key!r}")
            char = body[cursor]
            if char == "\\":
                raw.append(body[cursor:cursor + 2])
                cursor += 2
                continue
            if char == '"':
                break
            raw.append(char)
            cursor += 1
        labels[label] = _unescape_label_value("".join(raw))
        index = cursor + 1
        if index < len(body):
            if body[index] != ",":
                raise ValueError(f"junk after label value in {key!r}")
            index += 1
    return base, labels


# -- rendering ----------------------------------------------------------------


def _format_number(value: Any) -> str:
    """OpenMetrics sample-value rendering (integers stay integral)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_text(labels: dict[str, str],
                extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = sorted(labels.items()) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{escape_label_value(str(value))}"'
                    for key, value in pairs)
    return "{" + body + "}"


def _family_for(stat: Any) -> str | None:
    if isinstance(stat, Counter):
        return "counter"
    if isinstance(stat, (Scalar, Formula)):
        return "gauge"
    if isinstance(stat, Distribution):
        return "summary"
    if isinstance(stat, Histogram):
        return "histogram"
    return None


def render_openmetrics(registry: MetricsRegistry,
                       help_texts: dict[str, str] | None = None) -> str:
    """The registry as OpenMetrics text (terminated by ``# EOF``).

    * :class:`Counter` -> ``counter`` (samples get the ``_total``
      suffix when the name does not already carry it);
    * :class:`Scalar` / :class:`Formula` -> ``gauge`` (non-numeric
      values are skipped — state strings have no Prometheus shape);
    * :class:`Distribution` -> ``summary`` with ``_count``/``_sum``;
    * :class:`Histogram` -> ``histogram`` with cumulative ``le``
      buckets, the ``+Inf`` bucket, ``_count`` and ``_sum``.
    """
    help_texts = help_texts or {}
    families: dict[str, dict] = {}
    for key, stat in sorted(registry.stats().items()):
        base, labels = parse_metric_name(key)
        kind = _family_for(stat)
        if kind is None:
            continue
        name = sanitize_metric_name(base.replace(".", "_"))
        if kind == "counter" and name.endswith("_total"):
            name = name[:-len("_total")]
        family = families.setdefault(
            name, {"type": None, "samples": []})
        if family["type"] is None:
            family["type"] = kind
        elif family["type"] != kind:
            raise ValueError(
                f"metric family {name!r} mixes {family['type']} "
                f"and {kind} series")
        samples = family["samples"]
        if kind == "counter":
            samples.append((f"{name}_total", _label_text(labels),
                            stat.value))
        elif kind == "gauge":
            value = stat.fn(registry) if isinstance(stat, Formula) \
                else stat.value
            if isinstance(value, bool):
                value = int(value)
            elif not isinstance(value, (int, float)):
                continue  # state strings have no Prometheus shape
            samples.append((name, _label_text(labels), value))
        elif kind == "summary":
            samples.append((f"{name}_count", _label_text(labels),
                            stat.count))
            samples.append((f"{name}_sum", _label_text(labels),
                            stat.total))
        elif kind == "histogram":
            cumulative = 0
            for bound, count in zip(stat.bounds, stat.buckets):
                cumulative += count
                samples.append((
                    f"{name}_bucket",
                    _label_text(labels,
                                (("le", _format_number(bound)),)),
                    cumulative))
            samples.append((f"{name}_bucket",
                            _label_text(labels, (("le", "+Inf"),)),
                            stat.samples))
            samples.append((f"{name}_count", _label_text(labels),
                            stat.samples))
            samples.append((f"{name}_sum", _label_text(labels),
                            getattr(stat, "total", 0.0)))
    lines: list[str] = []
    for name in sorted(families):
        family = families[name]
        if not family["samples"]:
            continue
        help_text = help_texts.get(name)
        if help_text:
            escaped = help_text.replace("\\", "\\\\") \
                .replace("\n", "\\n")
            lines.append(f"# HELP {name} {escaped}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample, label_text, value in family["samples"]:
            lines.append(
                f"{sample}{label_text} {_format_number(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- parsing / validation -----------------------------------------------------


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>\S+))?$")


def _parse_label_body(body: str, line_no: int) -> dict[str, str]:
    try:
        _, labels = parse_metric_name("x{" + body + "}")
    except ValueError as exc:
        raise ValueError(f"line {line_no}: {exc}") from None
    return labels


def parse_openmetrics(text: str) -> dict[str, dict]:
    """Parse (and validate) an OpenMetrics exposition.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(sample_name, labels, value), ...]}}``.  Raises
    :class:`ValueError` on the first malformation: bad metric or label
    names, unparseable values, histogram buckets that are not
    cumulative, or a missing ``# EOF`` terminator.
    """
    families: dict[str, dict] = {}
    saw_eof = False
    for line_no, line in enumerate(text.splitlines(), start=1):
        if saw_eof:
            raise ValueError(f"line {line_no}: content after # EOF")
        if not line:
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE ") or line.startswith("# HELP "):
            kind = line[2:6]
            rest = line[7:]
            name, _, payload = rest.partition(" ")
            if not _NAME_RE.match(name):
                raise ValueError(
                    f"line {line_no}: bad family name {name!r}")
            family = families.setdefault(
                name, {"type": None, "help": None, "samples": []})
            if kind == "TYPE":
                if not payload:
                    raise ValueError(
                        f"line {line_no}: TYPE without a type")
                family["type"] = payload
            else:
                family["help"] = payload
            continue
        if line.startswith("#"):
            continue  # comment
        found = _SAMPLE_RE.match(line)
        if found is None:
            raise ValueError(f"line {line_no}: malformed sample "
                             f"{line!r}")
        sample = found.group("name")
        labels = _parse_label_body(found.group("labels"), line_no) \
            if found.group("labels") else {}
        raw_value = found.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            raise ValueError(f"line {line_no}: non-numeric value "
                             f"{raw_value!r}") from None
        family_name = sample
        for suffix in ("_total", "_bucket", "_count", "_sum"):
            if sample.endswith(suffix) \
                    and sample[:-len(suffix)] in families:
                family_name = sample[:-len(suffix)]
                break
        family = families.setdefault(
            family_name, {"type": None, "help": None, "samples": []})
        family["samples"].append((sample, labels, value))
    if not saw_eof:
        raise ValueError("exposition not terminated by # EOF")
    for name, family in families.items():
        if family["type"] == "histogram":
            _check_buckets(name, family["samples"])
    return families


def _check_buckets(name: str, samples: list[tuple]) -> None:
    """Histogram buckets must be cumulative and capped by +Inf."""
    series: dict[tuple, list[tuple[float, float]]] = {}
    for sample, labels, value in samples:
        if sample != f"{name}_bucket":
            continue
        if "le" not in labels:
            raise ValueError(f"{name}: bucket without an le label")
        le = labels["le"]
        bound = float("inf") if le == "+Inf" else float(le)
        key = tuple(sorted((k, v) for k, v in labels.items()
                           if k != "le"))
        series.setdefault(key, []).append((bound, value))
    for key, buckets in series.items():
        ordered = sorted(buckets)
        if ordered[-1][0] != float("inf"):
            raise ValueError(f"{name}: histogram without a +Inf "
                             f"bucket (labels {dict(key)})")
        previous = None
        for bound, value in ordered:
            if previous is not None and value < previous:
                raise ValueError(
                    f"{name}: buckets not cumulative at "
                    f"le={bound} (labels {dict(key)})")
            previous = value
