"""gem5-style hierarchical statistics primitives.

gem5 builds its ``stats.txt`` from typed statistic objects — scalars,
distributions, histograms and formulas — registered under dotted
hierarchical names.  This module provides the same vocabulary for the
reproduction: :mod:`repro.sim.stats` assembles a :class:`MetricsRegistry`
per simulator, and campaign-level aggregation
(:func:`repro.telemetry.campaign.campaign_metrics`) reuses the identical
types, so every dump in the system renders in the one sorted
``name value`` format the Section IV.A validation diffs.

All statistics are deterministic: insertion order never leaks into the
dump (it is sorted), and floating-point values are formatted with a
fixed precision so byte-level diffs of two identical runs are empty.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterator


def format_value(value: Any) -> str:
    """Deterministic rendering of one statistic value."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, float):
        return f"{value:.6f}"
    return str(value)


class Counter:
    """A monotonically adjustable scalar count."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def items(self, name: str) -> Iterator[tuple[str, Any]]:
        yield name, self.value


class Scalar:
    """A sampled value (counter snapshot, state string, gauge)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def items(self, name: str) -> Iterator[tuple[str, Any]]:
        yield name, self.value


class Distribution:
    """Running summary of a sample stream: count/min/max/mean/stdev.

    Mirrors gem5's ``Stats::Distribution`` summary lines without storing
    the samples themselves, so recording is O(1) per sample.
    """

    __slots__ = ("count", "total", "squares", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.squares = 0.0
        self.min = 0.0
        self.max = 0.0

    def record(self, sample: float, weight: int = 1) -> None:
        sample = float(sample)
        if self.count == 0:
            self.min = sample
            self.max = sample
        else:
            self.min = min(self.min, sample)
            self.max = max(self.max, sample)
        self.count += weight
        self.total += sample * weight
        self.squares += sample * sample * weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stdev(self) -> float:
        if self.count < 2:
            return 0.0
        variance = (self.squares - self.total * self.total / self.count) \
            / (self.count - 1)
        return math.sqrt(max(0.0, variance))

    def items(self, name: str) -> Iterator[tuple[str, Any]]:
        yield f"{name}.count", self.count
        yield f"{name}.min", self.min
        yield f"{name}.max", self.max
        yield f"{name}.mean", self.mean
        yield f"{name}.stdev", self.stdev


class Histogram:
    """Fixed-bucket histogram (gem5's ``Stats::Histogram``).

    *bounds* are inclusive upper edges; samples above the last bound land
    in the overflow bucket.
    """

    __slots__ = ("bounds", "buckets", "overflow", "samples", "total")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and "
                             "non-empty")
        self.bounds = tuple(bounds)
        self.buckets = [0] * len(self.bounds)
        self.overflow = 0
        self.samples = 0
        # Running sum of the samples.  Deliberately *not* part of
        # items(): the gem5-style dump stays byte-identical; only the
        # OpenMetrics exposition (repro.telemetry.export) reads it,
        # as the histogram family's _sum line.
        self.total = 0.0

    def record(self, sample: float, weight: int = 1) -> None:
        self.samples += weight
        self.total += float(sample) * weight
        for index, bound in enumerate(self.bounds):
            if sample <= bound:
                self.buckets[index] += weight
                return
        self.overflow += weight

    def items(self, name: str) -> Iterator[tuple[str, Any]]:
        yield f"{name}.samples", self.samples
        for bound, count in zip(self.bounds, self.buckets):
            yield f"{name}.le_{format_value(bound)}", count
        yield f"{name}.overflow", self.overflow


class Formula:
    """A statistic derived from others, evaluated lazily at dump time
    (gem5's ``Stats::Formula``; e.g. IPC = instructions / ticks)."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[["MetricsRegistry"], Any]) -> None:
        self.fn = fn

    def items(self, name: str) -> Iterator[tuple[str, Any]]:
        # The registry is bound at registration time via a closure slot
        # injected by MetricsRegistry.formula(); see there.
        raise NotImplementedError  # pragma: no cover - replaced per-registry


class MetricsRegistry:
    """Hierarchical name -> statistic mapping with a diffable dump.

    Names are dotted paths (``system.cpu0.bp.lookups``); :meth:`scope`
    returns a prefixed view so subsystems can register under their own
    subtree without knowing the full path.
    """

    def __init__(self) -> None:
        self._stats: dict[str, Any] = {}

    # -- registration (get-or-create, so hot paths can cache the object) --

    def _register(self, name: str, factory):
        stat = self._stats.get(name)
        if stat is None:
            stat = factory()
            self._stats[name] = stat
        return stat

    def counter(self, name: str) -> Counter:
        return self._register(name, Counter)

    def distribution(self, name: str) -> Distribution:
        return self._register(name, Distribution)

    def histogram(self, name: str,
                  bounds: tuple[float, ...]) -> Histogram:
        return self._register(name, lambda: Histogram(bounds))

    def formula(self, name: str,
                fn: Callable[["MetricsRegistry"], Any]) -> Formula:
        stat = Formula(fn)
        self._stats[name] = stat
        return stat

    def set(self, name: str, value: Any) -> None:
        """Record a sampled scalar (snapshot counters, state strings)."""
        self._stats[name] = Scalar(value)

    def scope(self, prefix: str) -> "Scope":
        return Scope(self, prefix)

    def prune(self, prefix: str) -> int:
        """Drop every statistic at or under *prefix* (the name itself,
        dotted children, and labelled series ``prefix{...}``).  Used
        by scrape-time refreshers to clear enumerated gauge sets —
        e.g. per-tenant queue gauges — so a tenant that disappears
        does not leave a stale series behind."""
        doomed = [name for name in self._stats
                  if name == prefix
                  or name.startswith(prefix + ".")
                  or name.startswith(prefix + "{")]
        for name in doomed:
            del self._stats[name]
        return len(doomed)

    # -- queries -----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def stats(self) -> dict[str, Any]:
        """A snapshot of the raw statistic objects by name (the
        OpenMetrics renderer walks this to type each family)."""
        return dict(self._stats)

    def get(self, name: str) -> Any:
        """The current value of one statistic (formulas are evaluated).

        Non-formula statistics are resolved directly, so a formula can
        reference them via ``get`` without recursing through itself.
        """
        stat = self._stats.get(name)
        if isinstance(stat, Formula):
            return stat.fn(self)
        if stat is not None:
            return next(iter(stat.items(name)))[1]
        # Expanded sub-line of a distribution/histogram (e.g. "x.mean").
        for base, candidate in self._stats.items():
            if isinstance(candidate, Formula):
                continue
            if name.startswith(base + "."):
                for key, value in candidate.items(base):
                    if key == name:
                        return value
        return None

    def as_flat_dict(self) -> dict[str, Any]:
        """Flatten every statistic into ``{name: value}`` (distributions
        and histograms expand into their summary lines)."""
        flat: dict[str, Any] = {}
        for name, stat in self._stats.items():
            if isinstance(stat, Formula):
                flat[name] = stat.fn(self)
            else:
                for key, value in stat.items(name):
                    flat[key] = value
        return flat

    def dump(self) -> str:
        """Sorted ``name value`` text, one statistic per line — the
        gem5 stats.txt shape, byte-stable for identical runs."""
        lines = [f"{name} {format_value(value)}"
                 for name, value in sorted(self.as_flat_dict().items())]
        return "\n".join(lines) + "\n" if lines else ""


class Scope:
    """A prefixed view over a registry (gem5's group hierarchy)."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix.rstrip(".")

    def _name(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._name(name))

    def distribution(self, name: str) -> Distribution:
        return self._registry.distribution(self._name(name))

    def histogram(self, name: str,
                  bounds: tuple[float, ...]) -> Histogram:
        return self._registry.histogram(self._name(name), bounds)

    def formula(self, name: str, fn) -> Formula:
        return self._registry.formula(self._name(name), fn)

    def set(self, name: str, value: Any) -> None:
        self._registry.set(self._name(name), value)

    def scope(self, prefix: str) -> "Scope":
        return Scope(self._registry, self._name(prefix))
