"""Fault-propagation flight recorder (golden-run divergence profiling).

ZOFI derives its whole coverage analysis from automated golden-vs-faulty
comparison; CHAOS tracks controlled propagation through gem5's
microarchitecture.  This module is the reproduction's equivalent of
both, built on the ``trace_hot`` commit hook that already serves
``repro.analysis``:

* a :class:`FlightRecorder` rides the golden replay and captures a
  compact per-interval **architectural-state digest** — the PC, a
  register-file checksum (plus the raw register files for attribution)
  and the committed **store log**;
* a :class:`DivergenceScanner` rides each faulty run, replays the digest
  stream and pins the **first architectural divergence**: the tick, the
  interval, the PC, the exact register or memory word that differs and
  its Hamming distance from the golden value.

Both implement the :class:`~repro.analysis.trace.DefUseTracer` hook
protocol (``started`` / ``capture_initial`` / ``record``), so they cost
nothing when not installed: CPU models test one ``trace_hot`` boolean
per committed instruction, exactly the Fig. 7 zero-overhead discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import KIND_FSTORE, KIND_STORE
from ..isa.registers import MASK64, fp_reg_name, int_reg_name

DEFAULT_INTERVAL = 32

_PRIME = 0x9E3779B97F4A7C15   # 64-bit golden-ratio multiplier


def regfile_checksum(regs: tuple[int, ...]) -> int:
    """Order-sensitive 64-bit checksum of a register-file snapshot."""
    acc = 0
    for value in regs:
        acc = ((acc ^ value) * _PRIME + 1) & MASK64
    return acc


def hamming(a: int, b: int) -> int:
    """Bit distance between two raw values."""
    return bin((a ^ b) & MASK64).count("1")


def register_label(slot: int) -> str:
    """Human name of digest slot *slot* (0..31 int, 32..63 fp)."""
    if slot < 32:
        return f"int {int_reg_name(slot)}"
    return f"fp {fp_reg_name(slot - 32)}"


@dataclass
class IntervalSample:
    """One per-interval digest entry of the golden flight log."""

    index: int          # interval number (0-based)
    count: int          # committed instructions since recording started
    window: int | None  # FI-window position of the boundary instruction
    tick: int
    pc: int             # next PC after the boundary instruction commits
    checksum: int
    regs: tuple[int, ...]   # 64 raw values: int r0..r31 then fp f0..f31


@dataclass
class StoreSample:
    """One committed store of the golden run (the store log)."""

    seq: int            # store number since recording started
    count: int          # committed instructions since recording started
    tick: int
    pc: int
    addr: int
    size: int
    value: int          # raw memory bytes actually written


@dataclass
class GoldenFlightLog:
    """The golden run's digest stream: intervals + store log."""

    interval: int = DEFAULT_INTERVAL
    intervals: list[IntervalSample] = field(default_factory=list)
    stores: list[StoreSample] = field(default_factory=list)
    instructions: int = 0

    def as_dict(self) -> dict:
        return {
            "interval": self.interval,
            "intervals": len(self.intervals),
            "stores": len(self.stores),
            "instructions": self.instructions,
        }


@dataclass
class Divergence:
    """The first architectural difference between a faulty run and the
    golden flight log."""

    kind: str                    # "register" | "memory" | "control"
    tick: int
    count: int                   # instructions since recording started
    window: int | None           # FI-window position, when inside it
    interval: int | None         # digest interval index, when boundary-found
    pc: int
    golden_pc: int | None = None
    location: str = ""           # e.g. "int s0", "fp f2", "mem 0x2040"
    golden_value: int | None = None
    faulty_value: int | None = None
    hamming_distance: int | None = None
    # Stamped by the campaign runner: divergence tick minus first
    # injection tick (the observable injection-to-divergence latency).
    latency: int | None = None

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "tick": self.tick,
            "count": self.count,
            "window": self.window,
            "interval": self.interval,
            "pc": self.pc,
            "golden_pc": self.golden_pc,
            "location": self.location,
            "golden_value": self.golden_value,
            "faulty_value": self.faulty_value,
            "hamming_distance": self.hamming_distance,
            "latency": self.latency,
        }

    def describe(self) -> str:
        where = f" at {self.location}" if self.location else ""
        tail = (f" hamming={self.hamming_distance}"
                if self.hamming_distance is not None else "")
        return (f"{self.kind} divergence{where}, tick {self.tick}, "
                f"pc={self.pc:#x}{tail}")


class _CommitHook:
    """Shared DefUseTracer-protocol plumbing (see ``injector.on_trace``):
    ``started`` flips at the first FI-active commit, ``record`` runs
    once per committed instruction while ``trace_hot`` is set."""

    def __init__(self) -> None:
        self.started = False
        self.context_switches = 0
        self.count = 0

    def capture_initial(self, core) -> None:
        pass

    @staticmethod
    def _reg_snapshot(core) -> tuple[int, ...]:
        ints = core.arch.intregs
        fps = core.arch.fpregs
        return tuple(ints.peek(i) for i in range(32)) + \
            tuple(fps.peek(i) for i in range(32))

    @staticmethod
    def _store_value(core, result, size: int) -> int:
        """Raw bytes the committed store actually left in memory (read
        back post-commit, so mem-stage corruption is captured too)."""
        blob = core.mem.peek_bytes(result.mem_addr, size)
        return int.from_bytes(blob, "little")

    @staticmethod
    def _tick(core) -> int:
        injector = core.injector
        return injector.clock() if injector is not None else 0


class FlightRecorder(_CommitHook):
    """Capture mode: build the :class:`GoldenFlightLog` of a fault-free
    replay.  Install with ``sim.injector.install_tracer(recorder)``."""

    def __init__(self, interval: int = DEFAULT_INTERVAL) -> None:
        super().__init__()
        if interval < 1:
            raise ValueError("digest interval must be positive")
        self.log = GoldenFlightLog(interval=interval)

    def record(self, window_index, pc, decoded, result, core=None) -> None:
        self.count += 1
        self.log.instructions = self.count
        if core is None:
            return
        if decoded.kind in (KIND_STORE, KIND_FSTORE) \
                and result.mem_addr is not None:
            self.log.stores.append(StoreSample(
                seq=len(self.log.stores), count=self.count,
                tick=self._tick(core), pc=pc, addr=result.mem_addr,
                size=decoded.size,
                value=self._store_value(core, result, decoded.size)))
        if self.count % self.log.interval == 0:
            regs = self._reg_snapshot(core)
            self.log.intervals.append(IntervalSample(
                index=len(self.log.intervals), count=self.count,
                window=window_index, tick=self._tick(core),
                pc=core.arch.pc, checksum=regfile_checksum(regs),
                regs=regs))


class DivergenceScanner(_CommitHook):
    """Compare mode: replay a faulty run against a golden flight log and
    record the first architectural divergence.

    Stores are compared transaction-by-transaction (exact instruction
    resolution); the register file and the PC are compared at interval
    boundaries (±1 interval resolution, the flight-recorder trade-off).
    After the first divergence the scanner goes quiet — everything
    downstream is propagation, which the def-use walk explains.
    """

    def __init__(self, golden: GoldenFlightLog) -> None:
        super().__init__()
        self.golden = golden
        self.divergence: Divergence | None = None
        self._store_seq = 0

    def record(self, window_index, pc, decoded, result, core=None) -> None:
        self.count += 1
        if self.divergence is not None or core is None:
            return
        if decoded.kind in (KIND_STORE, KIND_FSTORE) \
                and result.mem_addr is not None:
            self._check_store(window_index, pc, decoded, result, core)
            if self.divergence is not None:
                return
        if self.count % self.golden.interval == 0:
            self._check_interval(window_index, core)

    # -- store log comparison ------------------------------------------------

    def _check_store(self, window_index, pc, decoded, result,
                     core) -> None:
        seq = self._store_seq
        self._store_seq += 1
        tick = self._tick(core)
        value = self._store_value(core, result, decoded.size)
        if seq >= len(self.golden.stores):
            self.divergence = Divergence(
                kind="control", tick=tick, count=self.count,
                window=window_index, interval=None, pc=pc,
                location=f"store #{seq} beyond golden store log",
                faulty_value=value)
            return
        golden = self.golden.stores[seq]
        if result.mem_addr != golden.addr or pc != golden.pc:
            self.divergence = Divergence(
                kind="control", tick=tick, count=self.count,
                window=window_index, interval=None, pc=pc,
                golden_pc=golden.pc,
                location=f"mem {result.mem_addr:#x} "
                         f"(golden {golden.addr:#x})",
                golden_value=golden.value, faulty_value=value)
            return
        if value != golden.value:
            self.divergence = Divergence(
                kind="memory", tick=tick, count=self.count,
                window=window_index, interval=None, pc=pc,
                golden_pc=golden.pc,
                location=f"mem {result.mem_addr:#x}",
                golden_value=golden.value, faulty_value=value,
                hamming_distance=hamming(value, golden.value))

    # -- interval digest comparison ------------------------------------------

    def _check_interval(self, window_index, core) -> None:
        index = self.count // self.golden.interval - 1
        tick = self._tick(core)
        pc = core.arch.pc
        if index >= len(self.golden.intervals):
            self.divergence = Divergence(
                kind="control", tick=tick, count=self.count,
                window=window_index, interval=index, pc=pc,
                location=f"interval {index} beyond golden digest")
            return
        golden = self.golden.intervals[index]
        regs = self._reg_snapshot(core)
        if regfile_checksum(regs) != golden.checksum:
            slot = next(i for i in range(64)
                        if regs[i] != golden.regs[i])
            self.divergence = Divergence(
                kind="register", tick=tick, count=self.count,
                window=window_index, interval=index, pc=pc,
                golden_pc=golden.pc, location=register_label(slot),
                golden_value=golden.regs[slot], faulty_value=regs[slot],
                hamming_distance=hamming(regs[slot], golden.regs[slot]))
            return
        if pc != golden.pc:
            self.divergence = Divergence(
                kind="control", tick=tick, count=self.count,
                window=window_index, interval=index, pc=pc,
                golden_pc=golden.pc, location="pc",
                golden_value=golden.pc, faulty_value=pc,
                hamming_distance=hamming(pc, golden.pc))
