"""The structured trace bus: typed lifecycle events, JSONL on the wire.

ZOFI and FINJ both lean on cheap machine-readable per-injection records;
this module is the reproduction's equivalent.  Simulator components emit
:class:`TraceEvent` objects onto a :class:`TraceBus`, which fans them out
to sinks (:mod:`repro.telemetry.sinks`).  The bus follows the
``trace_hot`` zero-overhead discipline of :mod:`repro.analysis`: a
simulator without a bus attached carries ``bus = None`` everywhere, so
the only cost on any path is a pointer test on the *rare* events
(injections, traps, window toggles, checkpoints) — the per-instruction
hot path is untouched.

Every event serialises to one JSON line with sorted keys, so traces are
diffable and stream-parseable (``gemfi trace``).
"""

from __future__ import annotations

import json
from typing import Any, Iterator

# The complete lifecycle vocabulary.  emit() validates against this set
# so a typo in an instrumentation site fails loudly in tests instead of
# silently producing an unparseable stream.
EVENT_KINDS = frozenset({
    # fault lifecycle
    "fault_armed", "fault_injected", "fault_propagated", "fault_masked",
    # fi_activate windows
    "fi_window_open", "fi_window_close",
    # architectural happenings
    "trap", "syscall", "halt", "process_exit",
    # checkpointing
    "checkpoint_save", "checkpoint_restore",
    # CPU model lifecycle
    "model_switch", "cpu_drain", "cpu_squash",
    # O3 pipeline occupancy (gemfi pipeview; emitted only while
    # bus.pipe_trace is set — the per-commit cost is opt-in)
    "pipe_inst", "pipe_squash",
    # flight recorder (first golden-vs-faulty divergence)
    "flight_divergence",
    # campaign lifecycle
    "experiment_start", "experiment_end", "worker_heartbeat",
})


class TraceEvent:
    """One structured lifecycle event."""

    __slots__ = ("kind", "tick", "data")

    def __init__(self, kind: str, tick: int = 0,
                 data: dict[str, Any] | None = None) -> None:
        self.kind = kind
        self.tick = tick
        self.data = data or {}

    def as_dict(self) -> dict[str, Any]:
        out = {"kind": self.kind, "tick": self.tick}
        out.update(self.data)
        return out

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TraceEvent":
        payload = dict(payload)
        kind = payload.pop("kind")
        tick = payload.pop("tick", 0)
        return cls(kind, tick, payload)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        return cls.from_dict(json.loads(line))

    def __eq__(self, other) -> bool:
        return (isinstance(other, TraceEvent)
                and self.as_dict() == other.as_dict())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TraceEvent {self.kind} tick={self.tick} {self.data}>"


class TraceBus:
    """Fan-out of trace events to any number of sinks.

    ``clock`` is installed by :meth:`repro.sim.simulator.Simulator.
    attach_bus` so emitters do not need to thread the tick through; an
    explicit ``tick=`` argument overrides it (campaign-level events).
    A disabled bus (``enabled = False``) swallows everything, letting
    tests hold the object graph constant while toggling telemetry.
    """

    __slots__ = ("sinks", "clock", "enabled", "pipe_trace")

    def __init__(self, *sinks, clock=None, pipe_trace: bool = False) -> None:
        self.sinks = list(sinks)
        self.clock = clock
        self.enabled = True
        # Opt-in per-instruction pipeline events (pipe_inst/pipe_squash)
        # for ``gemfi pipeview``.  Off by default: unlike the rare
        # lifecycle events above, these fire once per committed or
        # squashed instruction, so the O3 model tests this flag before
        # paying for them.
        self.pipe_trace = pipe_trace

    def attach(self, sink) -> None:
        self.sinks.append(sink)

    def emit(self, kind: str, tick: int | None = None,
             **data: Any) -> None:
        if not self.enabled:
            return
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind '{kind}'")
        if tick is None:
            tick = self.clock() if self.clock is not None else 0
        event = TraceEvent(kind, tick, data)
        for sink in self.sinks:
            sink.accept(event)

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


def events_to_jsonl(events) -> str:
    """Serialise an event sequence to JSONL text."""
    return "".join(event.to_json() + "\n" for event in events)


def events_from_jsonl(text: str) -> Iterator[TraceEvent]:
    """Parse JSONL text back into events (skips blank lines)."""
    for line in text.splitlines():
        line = line.strip()
        if line:
            yield TraceEvent.from_json(line)
