"""gemfi pipeview: O3 pipeline occupancy rendered from trace-bus events.

A text visualization in the spirit of gem5's ``o3-pipeview`` / Konata:
one row per fetched instruction, one column per cycle, with stage
markers on the timeline::

    [   5] 0x20010 addq r1, r2, r3    |fdn.i.c   |
    [   6] 0x20014 beq  r3, L1        |fdn..ic   |
    [   7] 0x20018 ldq  r4, 0(r5)     | fdn...x  |   <- squashed

Markers: ``f`` fetch, ``d`` decode, ``n`` rename (the synthetic
frontend stages — the model's ``_FRONTEND_DEPTH`` is 3), ``i``
issue/complete, ``c`` commit, ``x`` squash; ``.`` marks cycles the
instruction is in flight.

Rendering consumes only ``pipe_inst`` / ``pipe_squash`` events captured
on a :class:`~repro.telemetry.events.TraceBus` with ``pipe_trace`` set
(``gemfi trace --pipe``); nothing is re-instrumented at render time.
"""

from __future__ import annotations

from dataclasses import dataclass

# The synthetic frontend of the O3 model: decode and rename trail fetch
# by one cycle each (cpu/o3.py _FRONTEND_DEPTH = 3).
_DECODE_LAG = 1
_RENAME_LAG = 2

# Rows wider than this are clipped (a pathological trace should not
# produce a terabyte of padding); the clip is reported in the output.
MAX_TIMELINE_CYCLES = 4000


@dataclass
class PipeInst:
    """One fetched instruction's trip through the pipeline."""

    seq: int
    pc: int
    fetch: int
    asm: str = ""
    complete: int | None = None
    commit: int | None = None
    squash: int | None = None
    squash_reason: str = ""

    @property
    def end(self) -> int:
        if self.commit is not None:
            return self.commit
        if self.squash is not None:
            return self.squash
        return self.fetch

    @property
    def committed(self) -> bool:
        return self.commit is not None


def collect_pipeline(events) -> list[PipeInst]:
    """Fold ``pipe_inst`` / ``pipe_squash`` trace events into per-seq
    instruction records, in fetch order.

    An instruction that both commits and appears in a squash sweep (the
    PC-fault redirect retires the head, then flushes the window) counts
    as committed — commit is architectural, the sweep is bookkeeping.
    """
    insts: dict[int, PipeInst] = {}
    for event in events:
        if event.kind == "pipe_inst":
            data = event.data
            seq = data["seq"]
            inst = insts.get(seq)
            if inst is None:
                inst = insts[seq] = PipeInst(
                    seq=seq, pc=data["pc"], fetch=data["fetch"])
            inst.asm = data.get("asm", inst.asm)
            inst.complete = data.get("complete")
            inst.commit = data.get("commit")
            inst.squash = None
        elif event.kind == "pipe_squash":
            data = event.data
            seq = data["seq"]
            inst = insts.get(seq)
            if inst is None:
                inst = insts[seq] = PipeInst(
                    seq=seq, pc=data["pc"], fetch=data["fetch"])
                inst.asm = data.get("asm", "")
            if inst.commit is None:
                inst.squash = data.get("squash")
                inst.squash_reason = data.get("reason", "")
    return [insts[seq] for seq in sorted(insts)]


def _lane(inst: PipeInst, base: int, span: int) -> str:
    cells = [" "] * span

    def put(cycle: int | None, char: str) -> None:
        if cycle is None:
            return
        col = cycle - base
        if 0 <= col < span:
            cells[col] = char

    start = inst.fetch - base
    end = min(inst.end - base, span - 1)
    for col in range(max(start, 0), end + 1):
        cells[col] = "."
    put(inst.fetch, "f")
    if inst.end >= inst.fetch + _DECODE_LAG:
        put(inst.fetch + _DECODE_LAG, "d")
    if inst.end >= inst.fetch + _RENAME_LAG:
        put(inst.fetch + _RENAME_LAG, "n")
    if inst.committed:
        put(inst.complete, "i")
        put(inst.commit, "c")
    else:
        put(inst.squash, "x")
    return "".join(cells)


def render_pipeview(insts: list[PipeInst]) -> str:
    """Render instruction lanes, Konata-style, one row per fetch."""
    if not insts:
        return "(no pipe_inst/pipe_squash events -- capture with " \
               "`gemfi trace --pipe` on the o3 model)"
    base = min(inst.fetch for inst in insts)
    last = max(inst.end for inst in insts)
    span = last - base + 1
    clipped = span > MAX_TIMELINE_CYCLES
    if clipped:
        span = MAX_TIMELINE_CYCLES
    asm_width = min(28, max(len(inst.asm) for inst in insts) or 1)
    lines = [f"cycles {base}..{last}  "
             f"({len(insts)} instructions, "
             f"{sum(1 for i in insts if not i.committed)} squashed)"]
    for inst in insts:
        asm = inst.asm[:asm_width].ljust(asm_width)
        tag = ""
        if not inst.committed:
            tag = f"  <- squashed ({inst.squash_reason})" \
                if inst.squash_reason else "  <- squashed"
        lines.append(f"[{inst.seq:>5}] {inst.pc:#08x} {asm} "
                     f"|{_lane(inst, base, span)}|{tag}")
    if clipped:
        lines.append(f"(timeline clipped to {MAX_TIMELINE_CYCLES} cycles)")
    return "\n".join(lines)


def render_from_events(events) -> str:
    """Convenience: events (any mixture of kinds) straight to text."""
    return render_pipeview(collect_pipeline(events))
