"""Trace-event sinks: where the bus delivers events.

Two sinks cover the observability shapes of the issue:

* :class:`RingBufferSink` — bounded in-memory buffer holding the *last*
  N events.  Attached by default in campaign workers, it turns a crashed
  or hung experiment into a post-mortem: the final events before the
  trap are right there, without paying full-trace I/O on the 99% of
  experiments that behave.
* :class:`JsonlFileSink` — full structured trace, one JSON object per
  line, streamable while the simulation is still running
  (``gemfi trace``).

:class:`ListSink` is the trivial collect-everything sink used by tests
and in-process analysis.
"""

from __future__ import annotations

import io
import time
from collections import deque

from .events import TraceEvent, events_from_jsonl


class ListSink:
    """Collect every event in order (tests, in-process consumers)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def accept(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]


class RingBufferSink:
    """Keep only the most recent *capacity* events (crash post-mortems)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def accept(self, event: TraceEvent) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._ring)

    def dump_jsonl(self) -> str:
        return "".join(event.to_json() + "\n" for event in self._ring)


class JsonlFileSink:
    """Append each event as one JSON line to a file or stream.

    ``autoflush`` (default on) makes the trace tailable while the
    simulation runs; turn it off for lowest-overhead full traces.
    """

    def __init__(self, target, autoflush: bool = True) -> None:
        if isinstance(target, (str, bytes)):
            self._handle = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.autoflush = autoflush
        self.count = 0

    def accept(self, event: TraceEvent) -> None:
        self._handle.write(event.to_json() + "\n")
        self.count += 1
        if self.autoflush:
            self._handle.flush()

    def close(self) -> None:
        try:
            self._handle.flush()
        except (OSError, ValueError):
            pass
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlFileSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(source) -> list[TraceEvent]:
    """Load a JSONL trace from a path or open text stream."""
    if isinstance(source, io.TextIOBase):
        return list(events_from_jsonl(source.read()))
    with open(source, "r", encoding="utf-8") as handle:
        return list(events_from_jsonl(handle.read()))


def follow_jsonl(path: str, poll: float = 0.2,
                 idle_timeout: float | None = None,
                 sleep=time.sleep, clock=time.monotonic):
    """Tail a JSONL trace file (``gemfi trace --follow``).

    Yields :class:`TraceEvent` objects as lines are appended by a live
    writer, polling every *poll* seconds.  Partial lines (a writer
    caught mid-``write``) are left in the buffer until their newline
    arrives.  Stops when no complete line has arrived for
    *idle_timeout* seconds (None = follow forever, until the consumer
    stops iterating or interrupts).
    """
    buffer = ""
    last_event = clock()
    with open(path, "r", encoding="utf-8") as handle:
        while True:
            chunk = handle.read()
            if chunk:
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    line = line.strip()
                    if line:
                        last_event = clock()
                        yield TraceEvent.from_json(line)
            if idle_timeout is not None and \
                    clock() - last_event > idle_timeout:
                return
            if not chunk:
                sleep(poll)
