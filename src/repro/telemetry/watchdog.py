"""Declarative campaign watchdog: alert rules over a share snapshot.

FINJ-scale campaigns fail in undramatic ways — a workstation dies
holding a claim, one experiment wedges, throughput quietly collapses, or
the outcome mix drifts because a node is mis-injecting.  Each of those
has a signature in the files already on the share (heartbeats, claims,
results, span logs), so the watchdog needs no agent on the workers: it
takes a :func:`snapshot_share` and evaluates four declarative rules —

* **dead-worker** — a heartbeat aged past ``heartbeat_timeout`` while
  its worker still holds unresulted claims (or reported a current
  experiment);
* **stalled-experiment** — an open experiment span older than
  ``stall_factor`` × the p90 wall time of completed experiments;
* **throughput-collapse** — no new result for ``collapse_factor`` ×
  the expected per-result interval while work remains;
* **outcome-drift** — the outcome mix of the most recent results
  diverging from the campaign baseline by more than
  ``drift_threshold`` (a node gone bad mid-campaign).

Alerts surface twice: the ``gemfi dashboard`` live view renders them as
an alert strip, and :func:`append_alerts` journals each *new* alert to
``share/alerts.jsonl`` (deduplicated on rule × worker × experiment) for
machine consumption.  Nothing here writes unless alerts exist, so a
healthy untraced campaign's share layout is untouched.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from .campaign import CampaignStatus, read_status, render_status
from .spans import load_spans

ALERTS_FILE = "alerts.jsonl"

_SEVERITY_RANK = {"critical": 0, "warning": 1, "info": 2}


@dataclass
class Alert:
    """One rule firing, attributable to a worker and/or experiment."""

    rule: str
    severity: str
    message: str
    worker: str | None = None
    experiment: str | None = None
    time: float | None = None

    @property
    def key(self) -> tuple:
        """Dedup identity: the same condition re-observed on the next
        refresh must not re-journal."""
        return (self.rule, self.worker, self.experiment)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule, "severity": self.severity,
            "message": self.message, "worker": self.worker,
            "experiment": self.experiment, "time": self.time,
        }


@dataclass
class WatchdogConfig:
    heartbeat_timeout: float = 120.0
    stale_claim_seconds: float = 600.0
    # stalled-experiment: open span older than stall_factor x wall_p90,
    # once at least min_completed experiments have finished (before that
    # the p90 is noise).
    stall_factor: float = 4.0
    min_completed: int = 3
    # throughput-collapse: no result for collapse_factor x the expected
    # per-result interval.
    collapse_factor: float = 4.0
    # outcome-drift: the last drift_window results vs the baseline of
    # everything before them (needs drift_min_baseline of history).
    # With at least drift_min_samples on each side the rule compares
    # Wilson score intervals at drift_confidence and fires only when
    # they do not overlap (early-campaign noise widens the intervals,
    # so it cannot fire spuriously); below that sample count it falls
    # back to the raw drift_threshold rate delta.
    drift_window: int = 20
    drift_min_baseline: int = 10
    drift_threshold: float = 0.25
    drift_confidence: float = 0.95
    drift_min_samples: int = 10


@dataclass
class ShareSnapshot:
    """Everything the rules need, read from the share exactly once."""

    now: float
    status: CampaignStatus
    # worker -> experiments claimed but not yet resulted
    held_claims: dict[str, list[str]] = field(default_factory=dict)
    # still-open experiment span records, each annotated with "age"
    open_spans: list[dict] = field(default_factory=list)
    # outcomes of completed experiments in result-mtime order
    outcome_sequence: list[str] = field(default_factory=list)
    last_result_time: float | None = None


def snapshot_share(share_dir: str,
                   config: WatchdogConfig | None = None,
                   clock=time.time) -> ShareSnapshot:
    config = config or WatchdogConfig()
    now = clock()
    status = read_status(
        share_dir, stale_claim_seconds=config.stale_claim_seconds,
        heartbeat_timeout=config.heartbeat_timeout, clock=clock)
    snap = ShareSnapshot(now=now, status=status)

    claims_dir = os.path.join(share_dir, "claims")
    if os.path.isdir(claims_dir):
        for name in sorted(os.listdir(claims_dir)):
            if not name.endswith(".claim"):
                continue
            experiment = name[:-len(".claim")]
            result = os.path.join(share_dir, "results",
                                  experiment.replace(".txt", ".json"))
            if os.path.exists(result):
                continue
            try:
                with open(os.path.join(claims_dir, name), "r",
                          encoding="utf-8") as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                continue
            owner = entry.get("worker", "?")
            snap.held_claims.setdefault(owner, []).append(
                experiment.replace(".txt", ""))

    _finished, opened = load_spans(share_dir)
    for record in opened:
        if record.get("attrs", {}).get("kind") != "experiment":
            continue
        t0 = record.get("t0")
        record = dict(record)
        record["age"] = (now - t0) if isinstance(t0, (int, float)) \
            else None
        snap.open_spans.append(record)

    results_dir = os.path.join(share_dir, "results")
    if os.path.isdir(results_dir):
        timed: list[tuple[float, str, str]] = []
        for name in sorted(os.listdir(results_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(results_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
                mtime = os.path.getmtime(path)
            except (OSError, ValueError):
                continue
            timed.append((mtime, name, entry.get("outcome", "unknown")))
        timed.sort()
        snap.outcome_sequence = [outcome for _, _, outcome in timed]
        if timed:
            snap.last_result_time = timed[-1][0]
    return snap


# -- rules --------------------------------------------------------------------


def _dead_workers(snap: ShareSnapshot,
                  config: WatchdogConfig) -> set[str]:
    dead = set()
    for worker, beat in snap.status.workers.items():
        if worker == "coordinator":
            continue
        if snap.now - beat.get("time", 0.0) > config.heartbeat_timeout:
            dead.add(worker)
    return dead


def rule_dead_worker(snap: ShareSnapshot,
                     config: WatchdogConfig) -> list[Alert]:
    alerts = []
    for worker in sorted(_dead_workers(snap, config)):
        beat = snap.status.workers.get(worker, {})
        age = snap.now - beat.get("time", 0.0)
        held = list(snap.held_claims.get(worker, []))
        current = beat.get("current_experiment")
        if current and current not in held:
            held.append(current)
        if held:
            for experiment in sorted(held):
                alerts.append(Alert(
                    rule="dead-worker", severity="critical",
                    worker=worker, experiment=experiment,
                    time=snap.now,
                    message=f"worker {worker} silent for {age:.0f}s "
                            f"while holding {experiment}"))
        else:
            alerts.append(Alert(
                rule="dead-worker", severity="warning", worker=worker,
                time=snap.now,
                message=f"worker {worker} silent for {age:.0f}s "
                        f"(no held claims)"))
    return alerts


def rule_stalled_experiment(snap: ShareSnapshot,
                            config: WatchdogConfig) -> list[Alert]:
    status = snap.status
    if status.completed < config.min_completed or not status.wall_p90:
        return []
    limit = config.stall_factor * status.wall_p90
    dead = _dead_workers(snap, config)
    alerts = []
    for record in snap.open_spans:
        age = record.get("age")
        worker = record.get("worker")
        if age is None or age <= limit:
            continue
        if worker in dead:
            continue  # the dead-worker alert already owns this one
        experiment = record.get("attrs", {}).get("experiment") \
            or record.get("name")
        alerts.append(Alert(
            rule="stalled-experiment", severity="warning",
            worker=worker, experiment=experiment, time=snap.now,
            message=f"{experiment} open for {age:.0f}s on {worker} "
                    f"(p90 is {status.wall_p90:.1f}s)"))
    return alerts


def rule_throughput_collapse(snap: ShareSnapshot,
                             config: WatchdogConfig) -> list[Alert]:
    status = snap.status
    remaining = status.todo + status.claimed
    if not remaining or status.completed < config.min_completed \
            or snap.last_result_time is None:
        return []
    expected = status.wall_p90 or 0.0
    if status.rate_per_second > 0:
        expected = max(expected, 1.0 / status.rate_per_second)
    if expected <= 0:
        return []
    gap = snap.now - snap.last_result_time
    limit = config.collapse_factor * expected
    if gap <= limit:
        return []
    return [Alert(
        rule="throughput-collapse", severity="warning", time=snap.now,
        message=f"no result for {gap:.0f}s "
                f"(expected one every ~{expected:.1f}s, "
                f"{remaining} experiments remain)")]


def rule_outcome_drift(snap: ShareSnapshot,
                       config: WatchdogConfig) -> list[Alert]:
    sequence = snap.outcome_sequence
    window = config.drift_window
    if len(sequence) < window + config.drift_min_baseline:
        return []
    baseline, recent = sequence[:-window], sequence[-window:]
    outcomes = sorted(set(baseline) | set(recent))
    # Enough samples on both sides: compare Wilson score intervals and
    # fire only when they are disjoint — statistically significant
    # drift, immune to early-campaign noise.  Tiny samples fall back
    # to the raw rate-delta threshold (the intervals would span almost
    # everything and the rule would go blind).
    use_wilson = min(len(baseline), len(recent)) >= \
        config.drift_min_samples
    if use_wilson:
        # The shared two-proportion test (repro.analysis.diff) —
        # also behind `gemfi compare` — so significance means the
        # same thing everywhere.
        from ..analysis.diff import proportions_differ
    alerts = []
    for outcome in outcomes:
        base_rate = baseline.count(outcome) / len(baseline)
        recent_rate = recent.count(outcome) / len(recent)
        drift = recent_rate - base_rate
        if use_wilson:
            significant, (base_low, base_high), \
                (recent_low, recent_high) = proportions_differ(
                    baseline.count(outcome), len(baseline),
                    recent.count(outcome), len(recent),
                    confidence=config.drift_confidence)
            if not significant:
                continue  # intervals overlap: not significant
            direction = "up" if drift > 0 else "down"
            alerts.append(Alert(
                rule="outcome-drift", severity="warning",
                experiment=outcome, time=snap.now,
                message=f"outcome {outcome} {direction} "
                        f"{abs(drift):.0%} vs baseline "
                        f"({base_rate:.0%} -> {recent_rate:.0%} over "
                        f"last {window}; "
                        f"{config.drift_confidence:.0%} Wilson "
                        f"intervals [{base_low:.0%},{base_high:.0%}] "
                        f"vs [{recent_low:.0%},{recent_high:.0%}] "
                        f"disjoint)"))
        elif abs(drift) > config.drift_threshold:
            direction = "up" if drift > 0 else "down"
            alerts.append(Alert(
                rule="outcome-drift", severity="warning",
                experiment=outcome, time=snap.now,
                message=f"outcome {outcome} {direction} "
                        f"{abs(drift):.0%} vs baseline "
                        f"({base_rate:.0%} -> {recent_rate:.0%} over "
                        f"last {window})"))
    return alerts


RULES = (rule_dead_worker, rule_stalled_experiment,
         rule_throughput_collapse, rule_outcome_drift)


def evaluate_alerts(share_dir: str,
                    config: WatchdogConfig | None = None,
                    clock=time.time) -> tuple[ShareSnapshot,
                                              list[Alert]]:
    """Snapshot the share and run every rule; alerts come back sorted
    most severe first (then by rule/worker/experiment, deterministic)."""
    config = config or WatchdogConfig()
    snap = snapshot_share(share_dir, config, clock=clock)
    alerts: list[Alert] = []
    for rule in RULES:
        alerts.extend(rule(snap, config))
    alerts.sort(key=lambda a: (_SEVERITY_RANK.get(a.severity, 9),
                               a.rule, a.worker or "",
                               a.experiment or ""))
    return snap, alerts


def append_alerts(share_dir: str, alerts: list[Alert]) -> list[Alert]:
    """Journal *new* alerts to ``share/alerts.jsonl``.

    An alert's identity is (rule, worker, experiment): re-observing the
    same condition on the next refresh does not re-journal it.  With no
    alerts and no prior journal, the share is left untouched.
    """
    path = os.path.join(share_dir, ALERTS_FILE)
    seen: set[tuple] = set()
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue
                    seen.add((entry.get("rule"), entry.get("worker"),
                              entry.get("experiment")))
        except OSError:
            pass
    fresh = [alert for alert in alerts if alert.key not in seen]
    if not fresh:
        return []
    with open(path, "a", encoding="utf-8") as handle:
        for alert in fresh:
            handle.write(json.dumps(alert.as_dict(), sort_keys=True,
                                    separators=(",", ":")) + "\n")
    return fresh


def read_alerts(share_dir: str) -> list[dict]:
    path = os.path.join(share_dir, ALERTS_FILE)
    if not os.path.exists(path):
        return []
    entries: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except ValueError:
                    continue
    except OSError:
        return entries
    return entries


def alerts_feed(shares: dict[str, str],
                config: WatchdogConfig | None = None,
                live: bool = False, limit: int = 0,
                clock=time.time) -> list[dict]:
    """Merge the alert journals of many shares into one feed.

    *shares* maps a label (the service passes the job id) to a share
    directory.  Journalled alerts are read as-is; with *live* the rules
    are additionally evaluated right now (read-only — nothing is
    journalled, the dispatcher owns the journals) and un-journalled
    firings appear with ``"live": true``.  Entries are deduplicated by
    (label, rule, worker, experiment), sorted newest-first (then by
    severity), and capped at *limit* when positive.  Missing or
    alert-free shares contribute nothing."""
    config = config or WatchdogConfig()
    feed: list[dict] = []
    seen: set[tuple] = set()
    for label, share_dir in sorted(shares.items()):
        if not os.path.isdir(share_dir):
            continue
        for entry in read_alerts(share_dir):
            key = (label, entry.get("rule"), entry.get("worker"),
                   entry.get("experiment"))
            if key in seen:
                continue
            seen.add(key)
            entry = dict(entry)
            entry["share"] = label
            feed.append(entry)
        if live:
            try:
                _, alerts = evaluate_alerts(share_dir, config,
                                            clock=clock)
            except OSError:
                continue
            for alert in alerts:
                key = (label,) + alert.key
                if key in seen:
                    continue
                seen.add(key)
                entry = alert.as_dict()
                entry["share"] = label
                entry["live"] = True
                feed.append(entry)
    feed.sort(key=lambda e: (-(e.get("time") or 0.0),
                             _SEVERITY_RANK.get(e.get("severity"), 9),
                             e.get("share") or "",
                             e.get("rule") or ""))
    if limit and limit > 0:
        feed = feed[:limit]
    return feed


# -- the live dashboard -------------------------------------------------------


def _format_age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    return f"{seconds / 3600:.1f}h"


def dashboard_view(snap: ShareSnapshot, alerts: list[Alert],
                   config: WatchdogConfig | None = None) -> str:
    """The ``gemfi dashboard`` frame: status block, worker table
    (worker x current experiment x open phase), and the alert strip."""
    config = config or WatchdogConfig()
    lines = [render_status(snap.status), ""]

    open_by_worker: dict[str, list[dict]] = {}
    for record in snap.open_spans:
        open_by_worker.setdefault(record.get("worker") or "?",
                                  []).append(record)

    workers = {name: beat for name, beat in snap.status.workers.items()
               if name != "coordinator"}
    if workers:
        lines.append("worker      state   beat  done  running")
        for name in sorted(workers):
            beat = workers[name]
            age = snap.now - beat.get("time", 0.0)
            state = "live" if age <= config.heartbeat_timeout \
                else "SILENT"
            running = beat.get("current_experiment") or "-"
            spans = open_by_worker.get(name, [])
            if spans:
                newest = max(spans, key=lambda r: r.get("t0") or 0.0)
                span_age = newest.get("age")
                if span_age is not None:
                    running += f" ({newest.get('name')} " \
                               f"{_format_age(span_age)})"
            lines.append(
                f"{name:<11} {state:<7} {_format_age(age):>4}  "
                f"{beat.get('completed', 0):>4}  {running}")
        lines.append("")

    if alerts:
        lines.append(f"alerts ({len(alerts)}):")
        for alert in alerts:
            lines.append(f"  [{alert.severity}] {alert.rule}: "
                         f"{alert.message}")
    else:
        lines.append("alerts      : none")
    return "\n".join(lines)


def render_dashboard(share_dir: str,
                     config: WatchdogConfig | None = None,
                     clock=time.time) -> tuple[str, list[Alert]]:
    """Evaluate and render one dashboard frame; returns (text, alerts)
    so the CLI can journal the alerts it just showed."""
    config = config or WatchdogConfig()
    snap, alerts = evaluate_alerts(share_dir, config, clock=clock)
    return dashboard_view(snap, alerts, config), alerts
