"""Merge per-worker span logs into one Chrome trace-event timeline.

``gemfi timeline <share>`` turns the ``share/spans/*.jsonl`` written by
:mod:`repro.telemetry.spans` into a single JSON document in the Chrome
trace-event format — loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` — with one track per workstation slot, one complete
(``ph: "X"``) event per experiment, child events for the
boot/window/injection/drain phase split, and instant (``ph: "i"``)
markers for injections and architectural divergences.

Two timebases:

* ``host`` (default) — real wall-clock: events sit where they actually
  ran, tracks are the real workers, and every experiment's phase
  children partition its duration *exactly* (integer microseconds, the
  last phase absorbs the rounding remainder, so child durations sum to
  the experiment duration which is ``round(wall_seconds * 1e6)``).
* ``ticks`` — fully deterministic: durations are simulated ticks,
  experiments are laid out over ``--slots`` tracks by the paper's
  earliest-free-slot discipline (the same arithmetic as
  :func:`repro.campaign.now.simulate_makespan`), and every field is a
  pure function of the campaign seed — so the merged timeline is
  **byte-identical across reruns**, making traces diffable regression
  artifacts.
"""

from __future__ import annotations

import json
import os

from .campaign import read_heartbeats
from .spans import load_spans

PID = 1
PHASE_NAMES = ("boot", "window", "injection", "drain")


def _experiment_spans(finished: list[dict]) -> list[dict]:
    spans = [r for r in finished
             if r.get("attrs", {}).get("kind") == "experiment"]
    spans.sort(key=lambda r: (r.get("name", ""), r.get("span", "")))
    return spans


def _slot_count(share_dir: str, experiments: list[dict]) -> int:
    """Deterministic slot count: the workers that heartbeated, falling
    back to the distinct workers seen in the span logs."""
    beats = read_heartbeats(share_dir)
    workers = {name for name in beats if name != "coordinator"}
    if workers:
        return len(workers)
    seen = {r.get("worker") for r in experiments if r.get("worker")}
    return max(1, len(seen))


def _metadata(track_names: list[str], label: str) -> list[dict]:
    events = [{"ph": "M", "pid": PID, "name": "process_name",
               "args": {"name": label}}]
    for tid, name in enumerate(track_names):
        events.append({"ph": "M", "pid": PID, "tid": tid,
                       "name": "thread_name", "args": {"name": name}})
    return events


def _complete(name: str, cat: str, ts: int, dur: int, tid: int,
              args: dict | None = None) -> dict:
    event = {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
             "pid": PID, "tid": tid}
    if args:
        event["args"] = args
    return event


def _instant(name: str, cat: str, ts: int, tid: int,
             args: dict | None = None) -> dict:
    event = {"name": name, "cat": cat, "ph": "i", "s": "t", "ts": ts,
             "pid": PID, "tid": tid}
    if args:
        event["args"] = args
    return event


def _phase_partition(total_us: int, phases: dict) -> list[tuple[str, int]]:
    """Partition *total_us* across the four phases exactly.

    Each phase rounds independently; the last one absorbs the rounding
    remainder, so the four integer durations always sum to *total_us*.
    """
    out: list[tuple[str, int]] = []
    used = 0
    for index, name in enumerate(PHASE_NAMES):
        if index == len(PHASE_NAMES) - 1:
            dur = total_us - used
        else:
            dur = int(round(float(phases.get(name, 0.0)) * 1e6))
            dur = max(0, min(dur, total_us - used))
        out.append((name, dur))
        used += dur
    return out


def _host_events(experiments: list[dict]) -> list[dict]:
    starts = [r.get("t0") for r in experiments
              if isinstance(r.get("t0"), (int, float))]
    if not starts:
        return _metadata([], "gemfi campaign")
    origin = min(starts)
    workers = sorted({r.get("worker") or "?" for r in experiments})
    track = {worker: tid for tid, worker in enumerate(workers)}
    events = _metadata(workers, "gemfi campaign")
    for record in experiments:
        attrs = record.get("attrs", {})
        worker = record.get("worker") or "?"
        tid = track[worker]
        t0 = record.get("t0")
        if not isinstance(t0, (int, float)):
            continue
        wall = attrs.get("wall_seconds")
        if not isinstance(wall, (int, float)):
            t1 = record.get("t1")
            wall = (t1 - t0) if isinstance(t1, (int, float)) else 0.0
        ts = int(round((t0 - origin) * 1e6))
        dur = max(0, int(round(float(wall) * 1e6)))
        name = attrs.get("experiment") or record.get("name", "?")
        events.append(_complete(name, "experiment", ts, dur, tid, {
            "outcome": attrs.get("outcome"),
            "injected": attrs.get("injected"),
            "worker": worker,
            "wall_seconds": wall,
        }))
        phases = attrs.get("phases") or {}
        parts = _phase_partition(dur, phases) if phases else []
        edge = ts
        for phase, phase_dur in parts:
            events.append(_complete(phase, "phase", edge, phase_dur,
                                    tid, {"seconds": phases.get(phase)}))
            edge += phase_dur
        if attrs.get("injected") and parts:
            inj_ts = ts + parts[0][1] + parts[1][1]
            events.append(_instant("injection", "injection", inj_ts, tid,
                                   {"tick": attrs.get("injection_tick")}))
        div_tick = attrs.get("divergence_tick")
        tick0, tick1 = record.get("tick0"), record.get("tick1")
        if div_tick is not None and isinstance(tick0, int) \
                and isinstance(tick1, int) and tick1 > tick0 and parts:
            # Host time inside the run is not stamped per tick; place
            # the divergence proportionally within the post-boot region.
            boot = parts[0][1]
            frac = (div_tick - tick0) / (tick1 - tick0)
            frac = min(1.0, max(0.0, frac))
            div_ts = ts + boot + int(round(frac * (dur - boot)))
            events.append(_instant("divergence", "divergence", div_ts,
                                   tid, {"tick": div_tick}))
    return events


def _tick_events(experiments: list[dict], slots: int) -> list[dict]:
    slots = max(1, int(slots))
    names = [f"slot{index}" for index in range(slots)]
    events = _metadata(names, "gemfi campaign (ticks)")
    slot_free = [0] * slots
    for record in experiments:
        attrs = record.get("attrs", {})
        tick0 = record.get("tick0")
        tick1 = record.get("tick1")
        if not isinstance(tick0, int) or not isinstance(tick1, int):
            continue
        dur = max(0, tick1 - tick0)
        tid = min(range(slots), key=slot_free.__getitem__)
        ts = slot_free[tid]
        slot_free[tid] += dur
        name = attrs.get("experiment") or record.get("name", "?")
        events.append(_complete(name, "experiment", ts, dur, tid, {
            "outcome": attrs.get("outcome"),
            "injected": attrs.get("injected"),
            "ticks": dur,
            "instructions": attrs.get("instructions"),
        }))
        first = attrs.get("injection_tick")
        last = attrs.get("last_injection_tick")
        if isinstance(first, int) and isinstance(last, int):
            window = max(0, min(dur, first - tick0))
            injection = max(0, min(dur - window, last - first))
            drain = dur - window - injection
        else:
            window, injection, drain = dur, 0, 0
        edge = ts
        for phase, phase_dur in (("window", window),
                                 ("injection", injection),
                                 ("drain", drain)):
            events.append(_complete(phase, "phase", edge, phase_dur,
                                    tid, {"ticks": phase_dur}))
            edge += phase_dur
        if isinstance(first, int):
            events.append(_instant("injection", "injection",
                                   ts + window, tid, {"tick": first}))
        div_tick = attrs.get("divergence_tick")
        if isinstance(div_tick, int) and tick1 > tick0:
            offset = min(dur, max(0, div_tick - tick0))
            events.append(_instant("divergence", "divergence",
                                   ts + offset, tid, {"tick": div_tick}))
    return events


def build_timeline(share_dir: str, timebase: str = "host",
                   slots: int | None = None) -> dict:
    """The merged campaign timeline as a Chrome trace-event dict."""
    finished, _open = load_spans(share_dir)
    experiments = _experiment_spans(finished)
    if timebase == "host":
        events = _host_events(experiments)
    elif timebase == "ticks":
        events = _tick_events(
            experiments, slots if slots else
            _slot_count(share_dir, experiments))
    else:
        raise ValueError(f"unknown timebase '{timebase}' "
                         "(expected 'host' or 'ticks')")
    trace_ids = sorted({r.get("trace") for r in experiments
                        if r.get("trace")})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "gemfi timeline",
            "timebase": timebase,
            "experiments": len(experiments),
            "trace": trace_ids[0] if len(trace_ids) == 1 else trace_ids,
        },
    }


def render_timeline(share_dir: str, timebase: str = "host",
                    slots: int | None = None,
                    indent: int | None = None) -> str:
    """The timeline serialised deterministically (sorted keys, fixed
    separators) — same share, same bytes."""
    payload = build_timeline(share_dir, timebase=timebase, slots=slots)
    if indent is None:
        text = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))
    else:
        text = json.dumps(payload, sort_keys=True, indent=indent)
    return text + "\n"


def write_timeline(share_dir: str, output: str,
                   timebase: str = "host",
                   slots: int | None = None) -> int:
    """Render to *output*; returns the event count."""
    text = render_timeline(share_dir, timebase=timebase, slots=slots)
    count = validate_trace(text)
    with open(output, "w", encoding="utf-8") as handle:
        handle.write(text)
    return count


# -- validation ---------------------------------------------------------------

_KNOWN_PHASES = {"X", "B", "E", "i", "I", "M", "C", "b", "e", "n"}


def validate_trace(source) -> int:
    """Check *source* is well-formed Chrome trace-event JSON.

    Accepts the JSON text or an already-parsed dict; returns the event
    count, raising :class:`ValueError` on the first malformation.  This
    backs the CI smoke job ("the artifact must load in Perfetto").
    """
    payload = json.loads(source) if isinstance(source, (str, bytes)) \
        else source
    if not isinstance(payload, dict):
        raise ValueError("trace must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace missing 'traceEvents' list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            raise ValueError(f"{where}: unknown ph {phase!r}")
        if "name" not in event:
            raise ValueError(f"{where}: missing name")
        if phase == "X":
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    raise ValueError(f"{where}: non-numeric {key}")
            if event["dur"] < 0:
                raise ValueError(f"{where}: negative dur")
            for key in ("pid", "tid"):
                if key not in event:
                    raise ValueError(f"{where}: missing {key}")
        elif phase == "i":
            if not isinstance(event.get("ts"), (int, float)):
                raise ValueError(f"{where}: non-numeric ts")
            if event.get("s") not in ("t", "p", "g"):
                raise ValueError(f"{where}: bad instant scope")
        elif phase == "M":
            if not isinstance(event.get("args"), dict):
                raise ValueError(f"{where}: metadata without args")
    return len(events)


def render_span_tree(share_dir: str, max_depth: int = 0) -> str:
    """The share's spans as an indented parent/child tree.

    Unlike the Chrome trace (which lays spans on per-worker tracks),
    the tree follows the ``parent`` links directly — so a service job
    traced end to end renders as::

        request POST /v1/jobs [request] worker=service
          campaign [campaign] worker=coordinator
            exp_0000 [experiment] worker=ws0 outcome=masked
              boot [phase]
              ...

    Deterministic: children sort by (name, span id), durations render
    only when both endpoints are stamped.  *max_depth* (0 = unlimited)
    truncates deep phase detail for terminal use.
    """
    finished, opened = load_spans(share_dir)
    records = finished + opened
    by_id: dict[str, dict] = {}
    for record in records:
        span = record.get("span")
        if span and span not in by_id:
            by_id[span] = record
    children: dict[str | None, list[dict]] = {}
    for record in by_id.values():
        parent = record.get("parent")
        key = parent if parent in by_id else None
        children.setdefault(key, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: (r.get("name") or "",
                                     r.get("span") or ""))

    lines: list[str] = []

    def describe(record: dict) -> str:
        attrs = record.get("attrs") or {}
        parts = [record.get("name") or "?"]
        kind = attrs.get("kind")
        if kind:
            parts.append(f"[{kind}]")
        if record.get("worker"):
            parts.append(f"worker={record['worker']}")
        t0, t1 = record.get("t0"), record.get("t1")
        if isinstance(t0, (int, float)) and isinstance(t1, (int, float)):
            parts.append(f"{t1 - t0:.3f}s")
        elif record.get("ev") == "open":
            parts.append("(open)")
        for key in ("request_id", "job", "outcome"):
            if attrs.get(key) is not None:
                parts.append(f"{key}={attrs[key]}")
        return " ".join(parts)

    def walk(record: dict, depth: int) -> None:
        lines.append("  " * depth + describe(record))
        if max_depth and depth + 1 >= max_depth:
            return
        for child in children.get(record.get("span"), []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines) + "\n" if lines else ""


# -- inline SVG lane view ------------------------------------------------------

#: fill per experiment outcome (Section IV.B.1 classes); unknown
#: outcomes (still running, no classification) render neutral blue.
OUTCOME_COLORS = {
    "crashed": "#d62728",
    "sdc": "#b03ad4",
    "non_propagated": "#c8ccd0",
    "strictly_correct": "#2ca02c",
    "correct": "#8fd18f",
}
DEFAULT_COLOR = "#4878b0"
PHASE_COLORS = {"boot": "#aec7e8", "window": "#f2c14e",
                "injection": "#ef8a62", "drain": "#b8b8d1"}
INSTANT_COLORS = {"injection": "#d62728", "divergence": "#7b1fa2"}

_SVG_GUTTER = 110       # left label column, px
_SVG_LANE = 30          # lane pitch, px
_SVG_BAR = 16           # experiment bar height, px
_SVG_STRIP = 5          # phase strip height, px


def _xml(text) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def render_timeline_svg(trace: dict, width: int = 960) -> str:
    """Render a trace-event dict (:func:`build_timeline`) as a
    self-contained SVG lane view — the web console's timeline page.

    One horizontal lane per track (worker or slot), one bar per
    ``ph: "X"`` experiment coloured by outcome, a thin phase strip
    under each bar, and tick markers for injection/divergence
    instants.  Every element carries a ``<title>`` tooltip, so the
    browser shows names/durations on hover with zero JavaScript.
    Deterministic: same trace dict, same bytes."""
    events = trace.get("traceEvents", [])
    lanes: dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" \
                and event.get("name") == "thread_name":
            lanes[event.get("tid", 0)] = \
                event.get("args", {}).get("name", "?")
    completes = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]
    for event in completes + instants:
        tid = event.get("tid", 0)
        lanes.setdefault(tid, f"track{tid}")
    row = {tid: index for index, tid in enumerate(sorted(lanes))}
    extent = max([e["ts"] + e["dur"] for e in completes]
                 + [e.get("ts", 0) for e in instants] + [0])
    extent = max(extent, 1)
    plot = max(100, width - _SVG_GUTTER - 20)

    def x(ts: float) -> float:
        return round(_SVG_GUTTER + ts / extent * plot, 2)

    height = len(row) * _SVG_LANE + 46
    out = [f'<svg xmlns="http://www.w3.org/2000/svg" '
           f'width="{width}" height="{height}" '
           f'font-family="monospace" font-size="11">',
           f'<rect width="{width}" height="{height}" fill="#ffffff"/>']
    for tid, index in sorted(row.items()):
        y = 8 + index * _SVG_LANE
        out.append(f'<text x="4" y="{y + _SVG_BAR - 3}" '
                   f'fill="#333">{_xml(lanes[tid])}</text>')
        out.append(f'<line x1="{_SVG_GUTTER}" y1="{y + _SVG_LANE - 5}" '
                   f'x2="{width - 10}" y2="{y + _SVG_LANE - 5}" '
                   f'stroke="#eeeeee"/>')
    for event in completes:
        index = row[event.get("tid", 0)]
        y = 8 + index * _SVG_LANE
        x0 = x(event["ts"])
        bar = max(1.0, round(event["dur"] / extent * plot, 2))
        args = event.get("args") or {}
        if event.get("cat") == "phase":
            color = PHASE_COLORS.get(event.get("name"), "#dddddd")
            out.append(
                f'<rect x="{x0}" y="{y + _SVG_BAR + 1}" width="{bar}" '
                f'height="{_SVG_STRIP}" fill="{color}">'
                f'<title>{_xml(event.get("name"))}</title></rect>')
            continue
        color = OUTCOME_COLORS.get(args.get("outcome"), DEFAULT_COLOR)
        tip = _xml(f'{event.get("name")} '
                   f'outcome={args.get("outcome")} '
                   f'{event["dur"] / 1e6:.3f}s')
        out.append(f'<rect x="{x0}" y="{y}" width="{bar}" '
                   f'height="{_SVG_BAR}" fill="{color}" '
                   f'stroke="#555555" stroke-width="0.4">'
                   f'<title>{tip}</title></rect>')
    for event in instants:
        index = row[event.get("tid", 0)]
        y = 8 + index * _SVG_LANE
        x0 = x(event.get("ts", 0))
        color = INSTANT_COLORS.get(event.get("name"), "#000000")
        tip = _xml(f'{event.get("name")} @ '
                   f'{(event.get("args") or {}).get("tick")}')
        out.append(f'<line x1="{x0}" y1="{y - 2}" x2="{x0}" '
                   f'y2="{y + _SVG_BAR + _SVG_STRIP + 2}" '
                   f'stroke="{color}" stroke-width="1.2">'
                   f'<title>{tip}</title></line>')
    axis_y = len(row) * _SVG_LANE + 22
    unit = trace.get("otherData", {}).get("timebase", "host")
    label = f"{extent / 1e6:.2f} s" if unit == "host" \
        else f"{extent} ticks"
    out.append(f'<line x1="{_SVG_GUTTER}" y1="{axis_y}" '
               f'x2="{width - 10}" y2="{axis_y}" stroke="#888888"/>')
    out.append(f'<text x="{_SVG_GUTTER}" y="{axis_y + 14}" '
               f'fill="#555">0</text>')
    out.append(f'<text x="{width - 10}" y="{axis_y + 14}" '
               f'text-anchor="end" fill="#555">{_xml(label)}</text>')
    out.append("</svg>")
    return "\n".join(out) + "\n"


def timeline_summary(share_dir: str) -> dict:
    """Quick share-level counts for CLI chatter (no rendering)."""
    finished, opened = load_spans(share_dir)
    experiments = _experiment_spans(finished)
    workers = sorted({r.get("worker") for r in experiments
                      if r.get("worker")})
    return {
        "experiments": len(experiments),
        "spans": len(finished),
        "open_spans": len(opened),
        "workers": workers,
        "span_files": sorted(
            name for name in os.listdir(os.path.join(share_dir, "spans"))
            if name.endswith(".jsonl")) if os.path.isdir(
                os.path.join(share_dir, "spans")) else [],
    }
