"""Campaign-level observability: manifests, heartbeats, live status.

FINJ-style campaign monitoring over the :class:`~repro.campaign.now.
SharedDirCampaign` share directory.  Everything here works purely from
the files on the share — a coordinator (or a human with ``gemfi status``)
can watch a campaign from any machine that mounts it, without talking to
the workers:

* **run manifests** — one JSON document per experiment recording the
  seed, fault specification, workload, code revision and timings, so a
  result set is self-describing and any single experiment re-runnable;
* **worker heartbeats** — small JSON files refreshed by each worker next
  to the claim files; a worker whose heartbeat stops aging is alive,
  one that stops refreshing is presumed dead (its claims are recovered
  by the stale-claim protocol);
* **status aggregation** — todo/claimed/completed/stale counts, outcome
  mix, throughput and ETA.

Also hosts :func:`diff_stats`, the Section IV.A validation diff ("the
statistical results provided by the simulator" must match) as a library
function behind ``gemfi stats-diff``.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import threading
import time
from dataclasses import dataclass, field

from .metrics import MetricsRegistry

HEARTBEAT_DIR = "heartbeats"
MANIFEST_DIR = "manifests"
# Written into a share by the service dispatcher (repro.service): marks
# the share as one job of a campaign service and points back at the
# job queue, so `gemfi status` can surface queue depth and per-tenant
# counts next to the campaign's own numbers.
SERVICE_FILE = "service.json"

_HOSTNAME: str | None = None


def _hostname() -> str:
    global _HOSTNAME
    if _HOSTNAME is None:
        try:
            _HOSTNAME = socket.gethostname()
        except OSError:
            _HOSTNAME = "?"
    return _HOSTNAME


# -- code revision -----------------------------------------------------------


def git_describe(cwd: str | None = None) -> str | None:
    """``git describe --always --dirty`` of the running tree, or None
    when not in a repository (campaign results stay self-describing
    even for installed copies)."""
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def run_manifest(*, experiment: str, workload: str, scale: str,
                 fault_text: str, seed: int | None = None,
                 worker: str | None = None,
                 started: float | None = None,
                 wall_seconds: float | None = None,
                 outcome: str | None = None,
                 git_rev: str | None = None,
                 extra: dict | None = None) -> dict:
    """Build one experiment's run manifest (FINJ-style workload record)."""
    manifest = {
        "experiment": experiment,
        "workload": workload,
        "scale": scale,
        "seed": seed,
        "fault_file": fault_text,
        "worker": worker,
        "pid": os.getpid(),
        "git": git_rev if git_rev is not None else git_describe(),
        "started": started,
        "wall_seconds": wall_seconds,
        "outcome": outcome,
    }
    if extra:
        manifest.update(extra)
    return manifest


# -- heartbeats --------------------------------------------------------------


class PeriodicBeat:
    """A daemon thread that calls *fn* every *interval* seconds until
    stopped.

    Context manager: ``__exit__`` sets the stop event and **joins** the
    thread, so long-lived processes that run many campaigns back to
    back (a campaign worker's heartbeater, the service dispatcher's
    lease extender) never accumulate beat threads across jobs.  A
    non-positive *interval* disables the thread entirely
    (deterministic single-threaded tests).  Exceptions from *fn* stop
    the beat rather than killing the process; transient errors (a
    share hiccup) are *fn*'s job to swallow.
    """

    def __init__(self, interval: float, fn, name: str = "beat") -> None:
        self.interval = interval
        self.fn = fn
        self.name = name
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "PeriodicBeat":
        if self.interval and self.interval > 0:
            self._thread = threading.Thread(
                target=self._run, name=self.name, daemon=True)
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.fn()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "PeriodicBeat":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def write_heartbeat(share_dir: str, worker_id: str, completed: int,
                    current_experiment: str | None = None,
                    clock=time.time) -> str:
    """Atomically refresh *worker_id*'s heartbeat file on the share.

    *current_experiment* names the experiment the worker is holding
    right now (None between experiments), so the dashboard and the
    dead-worker rule can pin exactly what a silent worker was running.
    """
    directory = os.path.join(share_dir, HEARTBEAT_DIR)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{worker_id}.json")
    payload = {"worker": worker_id, "pid": os.getpid(),
               "hostname": _hostname(), "time": clock(),
               "completed": completed,
               "current_experiment": current_experiment}
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)
    return path


def read_heartbeats(share_dir: str) -> dict[str, dict]:
    directory = os.path.join(share_dir, HEARTBEAT_DIR)
    if not os.path.isdir(directory):
        return {}
    beats: dict[str, dict] = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(directory, name), "r",
                      encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            continue  # mid-write; the next refresh will be readable
        beats[entry.get("worker", name[:-len(".json")])] = entry
    return beats


# -- live campaign status ----------------------------------------------------


def percentile(values: list[float], fraction: float) -> float | None:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, -(-int(fraction * 100) * len(ordered) // 100))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class CampaignStatus:
    """A point-in-time snapshot of a shared-directory campaign."""

    todo: int = 0
    claimed: int = 0
    completed: int = 0
    stale: int = 0
    outcomes: dict[str, int] = field(default_factory=dict)
    workers: dict[str, dict] = field(default_factory=dict)
    live_workers: int = 0
    rate_per_second: float = 0.0
    eta_seconds: float | None = None
    elapsed_seconds: float = 0.0
    # Host-time roll-up over the completed results: total/mean and
    # nearest-rank percentiles of per-experiment wall_seconds, the
    # slowest experiments (outlier hunting on heterogeneous NoW nodes),
    # and campaign-level KIPS (simulated instructions per host
    # kilo-second across all completed experiments).
    wall_total: float = 0.0
    wall_p50: float | None = None
    wall_p90: float | None = None
    slowest: list[tuple[str, float]] = field(default_factory=list)
    kips: float = 0.0
    # Service context (only when the share belongs to a repro.service
    # job, i.e. service.json is present): the owning job and tenant,
    # plus queue depth and per-tenant job-state counts read straight
    # from the service's job queue.  None for plain NoW shares, so
    # their status output stays byte-identical to the pre-service tool.
    service: dict | None = None
    # Fault-space coverage frame (opt-in via read_status(coverage=True)
    # / `gemfi status --coverage`): the heatmap-free summary of
    # repro.analysis.coverage — space visited, effective n, outcome
    # rates with Wilson intervals, margin convergence.  None unless
    # requested, so plain status output stays byte-identical.
    coverage: dict | None = None

    @property
    def wall_mean(self) -> float:
        return self.wall_total / self.completed if self.completed \
            else 0.0

    @property
    def total(self) -> int:
        return self.todo + self.claimed + self.completed

    @property
    def done_fraction(self) -> float:
        total = self.total
        return self.completed / total if total else 0.0

    def as_dict(self) -> dict:
        payload = {
            "todo": self.todo, "claimed": self.claimed,
            "completed": self.completed, "stale": self.stale,
            "total": self.total, "outcomes": dict(self.outcomes),
            "live_workers": self.live_workers,
            "rate_per_second": self.rate_per_second,
            "eta_seconds": self.eta_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "wall_total": self.wall_total,
            "wall_mean": self.wall_mean,
            "wall_p50": self.wall_p50,
            "wall_p90": self.wall_p90,
            "slowest": [list(item) for item in self.slowest],
            "kips": self.kips,
            "workers": {name: dict(beat) for name, beat
                        in self.workers.items()},
        }
        if self.service is not None:
            payload["service"] = dict(self.service)
        if self.coverage is not None:
            payload["coverage"] = dict(self.coverage)
        return payload


def read_service_context(share_dir: str) -> dict | None:
    """The service marker of a share (``service.json``), or None for a
    plain NoW share."""
    path = os.path.join(share_dir, SERVICE_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
    except (OSError, ValueError):
        return None
    return entry if isinstance(entry, dict) else None


def _queue_summary(queue_db: str) -> dict | None:
    """Queue depth and per-tenant job-state counts, read directly from
    the service's SQLite job queue.

    Deliberately raw SQL rather than an import of ``repro.service`` —
    telemetry stays a leaf package, and a read-only connection works
    from any machine that mounts the share, even while the service is
    writing (WAL).
    """
    import sqlite3
    try:
        conn = sqlite3.connect(f"file:{queue_db}?mode=ro", uri=True,
                               timeout=1.0)
    except sqlite3.Error:
        return None
    try:
        rows = conn.execute(
            "SELECT tenant, state, COUNT(*) FROM jobs "
            "GROUP BY tenant, state").fetchall()
    except sqlite3.Error:
        return None
    finally:
        conn.close()
    tenants: dict[str, dict[str, int]] = {}
    depth = 0
    for tenant, state, count in rows:
        tenants.setdefault(tenant, {})[state] = count
        if state == "queued":
            depth += count
    return {"queue_depth": depth, "tenants": tenants}


def read_status(share_dir: str, stale_claim_seconds: float = 600.0,
                heartbeat_timeout: float = 120.0,
                clock=time.time, coverage: bool = False
                ) -> CampaignStatus:
    """Aggregate the live state of a share directory.

    *stale* counts claims older than *stale_claim_seconds* with no
    result — experiments whose workstation presumably died and that the
    recovery protocol will return to the queue.  Throughput comes from
    result-file timestamps; the ETA extrapolates it over the remaining
    experiments.
    """
    status = CampaignStatus()
    now = clock()

    def listing(sub: str) -> list[str]:
        path = os.path.join(share_dir, sub)
        return sorted(os.listdir(path)) if os.path.isdir(path) else []

    status.todo = len(listing("todo"))
    # Claimed files stay in claimed/ after their result is written, so
    # only count the ones still awaiting a result as in flight.
    for name in listing("claimed"):
        experiment = name.split("_", 1)[1] if "_" in name else name
        result_name = experiment.replace(".txt", ".json")
        if not os.path.exists(os.path.join(share_dir, "results",
                                           result_name)):
            status.claimed += 1

    result_times: list[float] = []
    walls: list[tuple[float, str]] = []
    instructions_total = 0
    for name in listing("results"):
        if not name.endswith(".json"):
            continue
        path = os.path.join(share_dir, "results", name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            continue  # being written by a worker right now
        status.completed += 1
        outcome = entry.get("outcome", "unknown")
        status.outcomes[outcome] = status.outcomes.get(outcome, 0) + 1
        wall = entry.get("wall_seconds")
        if isinstance(wall, (int, float)):
            walls.append((float(wall), name[:-len(".json")]))
            instructions_total += int(entry.get("instructions") or 0)
        try:
            result_times.append(os.path.getmtime(path))
        except OSError:
            pass
    if walls:
        values = [wall for wall, _ in walls]
        status.wall_total = sum(values)
        status.wall_p50 = percentile(values, 0.5)
        status.wall_p90 = percentile(values, 0.9)
        status.slowest = [
            (name, wall) for wall, name in
            sorted(walls, key=lambda item: (-item[0], item[1]))[:3]]
        if status.wall_total > 0:
            status.kips = instructions_total / status.wall_total / 1e3

    claim_times: list[float] = []
    for name in listing("claims"):
        if not name.endswith(".claim"):
            continue
        experiment = name[:-len(".claim")]
        result_path = os.path.join(share_dir, "results",
                                   experiment.replace(".txt", ".json"))
        try:
            with open(os.path.join(share_dir, "claims", name), "r",
                      encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            continue
        claim_time = entry.get("time", 0.0)
        claim_times.append(claim_time)
        if not os.path.exists(result_path) and \
                now - claim_time > stale_claim_seconds:
            status.stale += 1

    status.workers = read_heartbeats(share_dir)
    for beat in status.workers.values():
        beat["age"] = max(0.0, now - beat.get("time", 0.0))
        beat["live"] = beat["age"] <= heartbeat_timeout
    status.live_workers = sum(
        1 for beat in status.workers.values() if beat["live"])

    started = min(claim_times) if claim_times else None
    if started is not None:
        status.elapsed_seconds = max(0.0, now - started)
    remaining = status.todo + status.claimed
    if status.completed and started is not None:
        finished = max(result_times) if result_times else now
        span = finished - started
        # Throughput needs a measurable interval.  One completed result,
        # or a batch whose files share a single mtime (coarse filesystem
        # timestamps), spans zero time: extrapolating would report an
        # infinite rate and a bogus ETA, so the rate stays 0 and the ETA
        # unknown (None) until a second distinct completion arrives.
        if status.completed >= 2 and span > 0:
            status.rate_per_second = status.completed / span
        if not remaining:
            status.eta_seconds = 0.0
        elif status.rate_per_second > 0:
            status.eta_seconds = remaining / status.rate_per_second

    context = read_service_context(share_dir)
    if context is not None:
        info = {"job": context.get("job"),
                "tenant": context.get("tenant")}
        queue_db = context.get("queue_db")
        if queue_db:
            summary = _queue_summary(queue_db)
            if summary is not None:
                info.update(summary)
        status.service = info

    if coverage:
        # Lazy import: analysis pulls in the campaign package; plain
        # status reads must not pay for (or depend on) it.
        from ..analysis.coverage import (
            coverage_from_share,
            coverage_summary,
        )
        space = coverage_from_share(share_dir)
        status.coverage = coverage_summary(space.as_dict())
    return status


def render_status(status: CampaignStatus) -> str:
    """Human-readable status block (``gemfi status``)."""
    lines = [
        f"experiments : {status.completed}/{status.total} completed "
        f"({status.done_fraction:.0%})",
        f"queue       : todo={status.todo} claimed={status.claimed} "
        f"stale={status.stale}",
        f"workers     : {status.live_workers} live / "
        f"{len(status.workers)} seen",
    ]
    if status.service is not None:
        line = (f"service     : job={status.service.get('job') or '?'} "
                f"tenant={status.service.get('tenant') or '?'}")
        depth = status.service.get("queue_depth")
        if depth is not None:
            line += f" queue_depth={depth}"
        lines.append(line)
        for tenant in sorted(status.service.get("tenants") or {}):
            counts = status.service["tenants"][tenant]
            mix = " ".join(f"{state}={count}" for state, count
                           in sorted(counts.items()))
            lines.append(f"  tenant {tenant}: {mix}")
    for name in sorted(status.workers):
        beat = status.workers[name]
        state = "live" if beat.get("live", True) else "silent"
        detail = f"  {name}: {state}"
        if "age" in beat:
            detail += f" {beat['age']:.0f}s ago"
        detail += f" done={beat.get('completed', 0)}"
        if beat.get("current_experiment"):
            detail += f" running={beat['current_experiment']}"
        host = beat.get("hostname")
        pid = beat.get("pid")
        if host or pid:
            detail += f" [{host or '?'}:{pid or '?'}]"
        lines.append(detail)
    if status.outcomes:
        mix = "  ".join(f"{name}={count}" for name, count
                        in sorted(status.outcomes.items()))
        lines.append(f"outcomes    : {mix}")
    if status.rate_per_second > 0:
        lines.append(f"throughput  : {status.rate_per_second * 60:.1f} "
                     f"experiments/min")
    if status.eta_seconds is not None:
        lines.append(f"eta         : {status.eta_seconds:.0f} s")
    if status.wall_total > 0:
        lines.append(
            f"host time   : total={status.wall_total:.2f}s "
            f"mean={status.wall_mean:.3f}s "
            f"p50={status.wall_p50:.3f}s p90={status.wall_p90:.3f}s")
        if status.kips > 0:
            lines.append(f"sim rate    : {status.kips:.1f} KIPS "
                         f"(campaign aggregate)")
        if status.slowest:
            outliers = "  ".join(f"{name}={wall:.3f}s"
                                 for name, wall in status.slowest)
            lines.append(f"slowest     : {outliers}")
    if status.coverage is not None:
        space = status.coverage.get("space", {})
        convergence = status.coverage.get("convergence", {})
        covered = space.get("covered_sites", 0)
        total = space.get("total")
        if total:
            fraction = space.get("covered_fraction") or 0.0
            lines.append(f"coverage    : {covered}/{total} sites "
                         f"({fraction * 100:.4g}%)")
        else:
            lines.append(f"coverage    : {covered} sites "
                         f"(space size unknown)")
        margin = convergence.get("margin", 0.0)
        confidence = convergence.get("confidence", 0.0)
        head = (f"confidence  : +-{margin * 100:g}% margin at "
                f"{confidence * 100:g}%")
        if convergence.get("margin_reached"):
            lines.append(f"{head} reached after "
                         f"{convergence.get('margin_reached_at')} "
                         f"experiments")
        else:
            half = convergence.get("max_half_width", 1.0)
            lines.append(f"{head} not reached "
                         f"(max half-width +-{half * 100:.1f}%)")
    return "\n".join(lines)


# -- per-outcome campaign metrics --------------------------------------------


def campaign_metrics(results) -> MetricsRegistry:
    """Aggregate experiment results into a metrics registry: experiment
    counts plus per-outcome wall-time distributions (the Figs. 4-8 raw
    material, dumped in the diffable stats format).

    Accepts :class:`~repro.campaign.runner.ExperimentResult` objects or
    the result dicts workers write to the share.
    """
    registry = MetricsRegistry()
    campaign = registry.scope("campaign")
    total = campaign.counter("experiments")
    injected = campaign.counter("injected")
    instructions_total = 0
    wall_total = 0.0
    phase_totals: dict[str, float] = {}
    for result in results:
        if isinstance(result, dict):
            outcome = result.get("outcome", "unknown")
            wall = float(result.get("wall_seconds", 0.0))
            was_injected = bool(result.get("injected"))
            instructions = int(result.get("instructions") or 0)
            phases = result.get("phases")
        else:
            outcome = result.outcome.value
            wall = result.wall_seconds
            was_injected = result.injected
            instructions = result.instructions
            phases = getattr(result, "phases", None)
        total.inc()
        if was_injected:
            injected.inc()
        campaign.counter(f"outcome.{outcome}").inc()
        campaign.distribution(f"wall_seconds.{outcome}").record(wall)
        campaign.distribution("wall_seconds.all").record(wall)
        instructions_total += instructions
        wall_total += wall
        if phases:
            for phase, seconds in phases.items():
                phase_totals[phase] = \
                    phase_totals.get(phase, 0.0) + float(seconds)
    # Host-side roll-up: campaign KIPS and the boot/window/injection/
    # drain attribution of the total wall time (profiler phase stamps).
    if wall_total > 0:
        campaign.set("host.kips",
                     round(instructions_total / wall_total / 1e3, 3))
    for phase, seconds in sorted(phase_totals.items()):
        campaign.set(f"host.phase_seconds.{phase}", round(seconds, 6))
    return registry


# -- the Section IV.A stats diff ---------------------------------------------


def parse_stats(text: str) -> dict[str, str]:
    """Parse ``name value`` dump lines back into a mapping."""
    stats: dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        name, _, value = line.partition(" ")
        stats[name] = value
    return stats


# Counters whose values are timing artifacts of the CPU model rather
# than architectural facts; only these are eligible for the
# ``--tolerance`` relaxation of ``gemfi stats-diff``.
TIMING_STAT_MARKERS = ("tick", "cycle", "latency", "ipc", "stall",
                      "wall", "seconds")


def _is_timing_stat(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in TIMING_STAT_MARKERS)


def _within_tolerance(a_value: str, b_value: str,
                      tolerance: float) -> bool:
    """True iff both values parse as numbers and their relative
    difference is within *tolerance*."""
    try:
        a_num = float(a_value)
        b_num = float(b_value)
    except ValueError:
        return False
    if a_num == b_num:
        return True
    scale = max(abs(a_num), abs(b_num))
    return abs(a_num - b_num) <= tolerance * scale


def diff_stats(a_text: str, b_text: str,
               tolerance: float = 0.0) -> list[str]:
    """Differences between two stats dumps, one description per line.

    Empty result == byte-equivalent statistics (modulo line order, which
    the dump format already fixes).  This is the Section IV.A check —
    "the statistical results provided by the simulator [...] were
    identical" — as a first-class operation.

    *tolerance* (default 0: strict) ignores relative differences up to
    the given fraction, but only for timing-sensitive counters
    (ticks/cycles/latencies/...): two runs of the same workload on
    different hosts legitimately disagree there, while architectural
    counters must still match exactly.
    """
    a = parse_stats(a_text)
    b = parse_stats(b_text)
    differences: list[str] = []
    for name in sorted(set(a) | set(b)):
        if name not in b:
            differences.append(f"- {name} {a[name]}")
        elif name not in a:
            differences.append(f"+ {name} {b[name]}")
        elif a[name] != b[name]:
            if tolerance > 0 and _is_timing_stat(name) and \
                    _within_tolerance(a[name], b[name], tolerance):
                continue
            differences.append(f"~ {name} {a[name]} -> {b[name]}")
    return differences
