"""Bounded metrics history: periodic registry snapshots in SQLite.

``GET /metrics`` is a point-in-time scrape; anything that wants a
*trend* (the web console's sparkline charts, ``gemfi history``) needs
someone to remember past scrapes.  :class:`HistoryStore` is that
memory: a single SQLite database (WAL, same crash-safety discipline as
the job queue) holding ``(series, time, value)`` samples with **ring
retention per series** — every series keeps at most *retention*
samples, oldest dropped first, so the database stays bounded no matter
how long the service runs.

:class:`HistoryRecorder` drives it: a
:class:`~repro.telemetry.campaign.PeriodicBeat` samples a snapshot
callable (the service wires it to the *same*
:class:`~repro.telemetry.metrics.MetricsRegistry` that ``/metrics``
renders, so the history and the exposition can never disagree) every
*interval* seconds.  A monotone ``rounds`` counter survives retention
trimming, so "has the recorder sampled since I last looked?" stays
answerable even when the per-series ring is full.

The layering rule from the rest of ``repro.telemetry`` applies: this
module knows nothing about ``repro.service`` — the recorder takes
plain callables, and the service hands it bound methods.
"""

from __future__ import annotations

import math
import sqlite3
import threading
import time

from .campaign import PeriodicBeat

#: seconds between samples (``gemfi serve --history-interval``).
DEFAULT_INTERVAL = 5.0
#: samples kept per series (``--history-retention``); at the default
#: interval this is one hour of trend per series.
DEFAULT_RETENTION = 720

_SCHEMA = """
CREATE TABLE IF NOT EXISTS samples (
    series TEXT NOT NULL,
    time   REAL NOT NULL,
    value  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS samples_by_series
    ON samples (series, time);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value REAL NOT NULL
);
"""


def numeric_snapshot(flat: dict) -> dict[str, float]:
    """Filter a ``MetricsRegistry.as_flat_dict()`` mapping down to the
    finite numeric series worth charting: histogram bucket lines
    (``.le_*`` / ``.overflow``) are dropped — they would multiply every
    family by its bucket count — while scalars, counters, distribution
    summaries and histogram sample counts survive."""
    out: dict[str, float] = {}
    for name, value in flat.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if not math.isfinite(value):
            continue
        # Bucket bounds carry dots themselves (".le_0.01"), so match
        # the marker anywhere after a dot rather than splitting on one.
        if ".le_" in name or name.endswith(".overflow"):
            continue
        out[name] = float(value)
    return out


class HistoryStore:
    """Ring-retained time series over SQLite.

    Thread-safe: the recorder beat thread writes while the HTTP event
    loop reads ``/v1/history``, so one lock serialises the shared
    connection."""

    def __init__(self, path: str,
                 retention: int = DEFAULT_RETENTION) -> None:
        self.path = path
        self.retention = max(1, int(retention))
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writing --------------------------------------------------------------

    def record(self, values: dict[str, float],
               when: float | None = None) -> int:
        """Append one sample per series, trim each touched series to
        the retention ring, bump and return the monotone round
        counter."""
        stamp = time.time() if when is None else float(when)
        with self._lock:
            cursor = self._conn.cursor()
            cursor.executemany(
                "INSERT INTO samples (series, time, value) "
                "VALUES (?, ?, ?)",
                [(name, stamp, float(value))
                 for name, value in sorted(values.items())])
            for name in values:
                cursor.execute(
                    "DELETE FROM samples WHERE series = ? AND rowid "
                    "NOT IN (SELECT rowid FROM samples WHERE "
                    "series = ? ORDER BY time DESC, rowid DESC "
                    "LIMIT ?)",
                    (name, name, self.retention))
            cursor.execute(
                "INSERT INTO meta (key, value) VALUES ('rounds', 1) "
                "ON CONFLICT(key) DO UPDATE SET value = value + 1")
            self._conn.commit()
            return self._rounds(cursor)

    @staticmethod
    def _rounds(cursor) -> int:
        row = cursor.execute(
            "SELECT value FROM meta WHERE key = 'rounds'").fetchone()
        return int(row[0]) if row else 0

    # -- reading --------------------------------------------------------------

    @property
    def rounds(self) -> int:
        """Total recording rounds since the store was created —
        monotone even though retention bounds the stored samples."""
        with self._lock:
            return self._rounds(self._conn.cursor())

    def series_names(self, prefix: str | None = None) -> list[str]:
        query = "SELECT DISTINCT series FROM samples"
        args: tuple = ()
        if prefix:
            query += " WHERE series GLOB ?"
            args = (_glob_escape(prefix) + "*",)
        with self._lock:
            rows = self._conn.execute(query + " ORDER BY series",
                                      args).fetchall()
        return [row[0] for row in rows]

    def series(self, prefix: str | None = None,
               since: float | None = None,
               limit: int | None = None
               ) -> dict[str, list[list[float]]]:
        """``{series: [[time, value], ...]}`` oldest-first; *prefix*
        filters by series-name prefix, *since* by sample time, *limit*
        caps the newest samples returned per series."""
        query = "SELECT series, time, value FROM samples"
        where, args = [], []
        if prefix:
            where.append("series GLOB ?")
            args.append(_glob_escape(prefix) + "*")
        if since is not None:
            where.append("time > ?")
            args.append(float(since))
        if where:
            query += " WHERE " + " AND ".join(where)
        query += " ORDER BY series, time, rowid"
        out: dict[str, list[list[float]]] = {}
        with self._lock:
            for name, stamp, value in self._conn.execute(query, args):
                out.setdefault(name, []).append([stamp, value])
        if limit is not None and limit > 0:
            out = {name: points[-limit:]
                   for name, points in out.items()}
        return out

    def summary(self) -> dict:
        with self._lock:
            cursor = self._conn.cursor()
            series, samples = cursor.execute(
                "SELECT COUNT(DISTINCT series), COUNT(*) "
                "FROM samples").fetchone()
            rounds = self._rounds(cursor)
        return {"series": series, "samples": samples,
                "rounds": rounds, "retention": self.retention}


def _glob_escape(text: str) -> str:
    """Escape SQLite GLOB metacharacters so a literal prefix (which
    may contain ``[`` from metric labels) matches literally."""
    return (text.replace("[", "[[]").replace("*", "[*]")
            .replace("?", "[?]"))


class HistoryRecorder:
    """Periodically sample *snapshot()* into a :class:`HistoryStore`.

    *snapshot* returns ``{series: value}`` (the service passes
    ``ServiceObserver.snapshot``); *refresh*, when given, runs first so
    scrape-time gauges (queue depth, store size, usage) are current —
    exactly what ``GET /metrics`` does before rendering.  Errors from a
    beat-driven sample are swallowed (a full disk must not kill the
    service); ``sample_once`` raises so tests see failures."""

    def __init__(self, snapshot, store: HistoryStore,
                 interval: float = DEFAULT_INTERVAL,
                 refresh=None, clock=time.time) -> None:
        self.snapshot = snapshot
        self.store = store
        self.interval = interval
        self.refresh = refresh
        self._clock = clock
        self._beat = PeriodicBeat(interval, self._tick,
                                  name="history-recorder")

    def sample_once(self) -> int:
        """One synchronous recording round; returns the round count."""
        if self.refresh is not None:
            self.refresh()
        return self.store.record(self.snapshot(),
                                 when=self._clock())

    def _tick(self) -> None:
        try:
            self.sample_once()
        except Exception:
            pass  # keep beating; the next round may succeed

    def start(self) -> "HistoryRecorder":
        self._beat.start()
        return self

    def stop(self) -> None:
        self._beat.stop()

    def __enter__(self) -> "HistoryRecorder":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def alive(self) -> bool:
        return self._beat.alive
