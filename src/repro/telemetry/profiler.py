"""Simulator self-profiler: where does *host* time go?

PRs 2-3 made the simulated program observable; this module turns the
same lens on the simulator itself.  ZOFI argues that the value of a
fault-injection tool is bounded by its measured overhead — so the repo
needs a first-class way to measure itself before any perf PR can prove
it helped.  Two complementary modes:

* :class:`Profiler` — lightweight *scoped timers*.  ``install(sim)``
  wraps the hot entry points of an assembled platform (the run loop, the
  CPU model's pipeline stages, the cache hierarchy, the OS-lite kernel,
  the injector hooks and the telemetry sinks) with self-time-attributing
  wrappers.  Attribution is exclusive ("self") time: a nested scope's
  elapsed time is subtracted from its parent, so the buckets partition
  the run-loop wall time and sum to ~100% of it.  Full enter-stacks are
  also folded into flame-graph lines (``Profiler.folded``).
* :class:`SamplingProfiler` — optional signal-based statistical
  sampling (``SIGPROF``/``ITIMER_PROF``).  No wrappers, near-zero
  distortion, coarser answers; useful to sanity-check what the scoped
  timers report.

**Zero overhead when disabled** is structural, not a fast-path test:
profiling works by *replacing bound methods on one simulator instance*.
A simulator that never called ``install`` runs the exact same code
objects as before this module existed — there is no flag, no pointer
test, nothing on any instruction path.  ``uninstall`` deletes the
instance attributes again, restoring the class-level methods
byte-identically (asserted in tests/test_profiler.py).

Stage-bucket vocabulary (per-component host-time attribution):

====================  =======================================================
bucket                what lands there (self time)
====================  =======================================================
``loop``              the simulator run loop itself (quantum/poll checks)
``cpu.step``          CPU-model step dispatch and hazard bookkeeping
``cpu.fetch``         instruction fetch (MainMemory/MemoryHierarchy.fetch)
``cpu.decode``        DecodeCache.decode
``cpu.rename``        O3 front end minus fetch/decode: predict + ROB insert
``cpu.issue``         O3 commit-side scoreboard wakeup/select
``cpu.execute``       Core.execute minus nested memory accesses
``cpu.mem``           data-side memory reads/writes
``cpu.commit``        commit bookkeeping (serve_instruction / O3 _retire)
``cpu.switch``        mid-run CPU model switches (drain + rebuild)
``mem.l1i/l1d/l2``    cache tag/LRU modelling per level
``kernel.syscall``    the OS-lite syscall path
``kernel.schedule``   context switches and run-queue management
``kernel.process``    process exit/crash handling
``injector``          all GemFI per-stage hooks and pseudo-instructions
``telemetry.sink``    trace-bus sink delivery
``checkpoint``        checkpoint capture
====================  =======================================================

Models without a stage simply never touch its bucket (an AtomicSimple
run reports no ``cpu.rename`` line), mirroring the uniform-counter
philosophy of :mod:`repro.sim.stats` without emitting noise zeros.
"""

from __future__ import annotations

import signal
import time


class _TimedDecodeCache:
    """Timing proxy for :class:`~repro.isa.instructions.DecodeCache`.

    DecodeCache is ``__slots__``-ed, so its ``decode`` method cannot be
    shadowed per instance; the profiler swaps the core's reference to
    this delegating proxy instead (and swaps the original back on
    uninstall).
    """

    def __init__(self, inner, profiler: "Profiler") -> None:
        self._inner = inner
        self._profiler = profiler

    def decode(self, word):
        profiler = self._profiler
        frame = profiler._enter("cpu.decode")
        try:
            return self._inner.decode(word)
        finally:
            profiler._exit(frame)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class Profiler:
    """Scoped-timer host-time attribution over one simulator.

    Accounting model: a stack of frames, one per active scope.  On exit
    a frame's *self* time (elapsed minus the elapsed of its nested
    children) is added to its bucket, and its full elapsed time is
    charged to the parent's child accumulator.  Self times therefore
    partition the wall time of the outermost scopes exactly; wrapper
    bookkeeping executed after a child's exit timestamp is absorbed by
    the parent frame, so nothing leaks except the outermost scope's own
    epilogue (a handful of dict updates per ``run()`` call).
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self.clock = clock
        self.buckets: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        # Folded enter-stacks: tuple of bucket names -> self seconds.
        self.paths: dict[tuple[str, ...], float] = {}
        self.total_seconds = 0.0        # elapsed of outermost scopes
        self._stack: list[list] = []    # frames: [bucket, start, child]
        self._wrapped: list[tuple] = []  # (obj, attr) instance overrides
        self._decode_cores: list[tuple] = []  # (core, original_cache)
        self._sim = None

    # -- frame accounting (also usable directly via scope()) -----------------

    def _enter(self, bucket: str) -> list:
        frame = [bucket, self.clock(), 0.0]
        self._stack.append(frame)
        return frame

    def _exit(self, frame: list) -> None:
        now = self.clock()
        stack = self._stack
        stack.pop()
        bucket, start, child = frame
        elapsed = now - start
        self_time = elapsed - child
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + self_time
        self.calls[bucket] = self.calls.get(bucket, 0) + 1
        if stack:
            stack[-1][2] += elapsed
            path = tuple(f[0] for f in stack) + (bucket,)
        else:
            self.total_seconds += elapsed
            path = (bucket,)
        self.paths[path] = self.paths.get(path, 0.0) + self_time

    class _Scope:
        __slots__ = ("profiler", "bucket", "frame")

        def __init__(self, profiler: "Profiler", bucket: str) -> None:
            self.profiler = profiler
            self.bucket = bucket

        def __enter__(self):
            self.frame = self.profiler._enter(self.bucket)
            return self

        def __exit__(self, *exc) -> None:
            self.profiler._exit(self.frame)

    def scope(self, bucket: str) -> "Profiler._Scope":
        """Context manager timing an ad-hoc region into *bucket*."""
        return Profiler._Scope(self, bucket)

    # -- method wrapping ------------------------------------------------------

    def wrap(self, obj, attr: str, bucket: str) -> None:
        """Shadow ``obj.attr`` (a bound method) with a timed wrapper.

        The wrapper lives as an *instance* attribute so other instances
        of the class — and this instance after :meth:`uninstall` — keep
        running the original, untouched code object.
        """
        original = getattr(obj, attr)
        enter = self._enter
        exit_ = self._exit

        def timed(*args, **kwargs):
            frame = enter(bucket)
            try:
                return original(*args, **kwargs)
            finally:
                exit_(frame)

        timed.__profiled__ = bucket
        setattr(obj, attr, timed)
        self._wrapped.append((obj, attr))

    # -- platform instrumentation ---------------------------------------------

    def install(self, sim) -> "Profiler":
        """Thread scoped timers through every layer of *sim*.

        Covers the run loop, the active CPU model (re-wrapped across
        mid-run model switches), the memory hierarchy, the kernel, the
        injector and any attached trace-bus sinks.  Returns self.
        """
        if self._sim is not None:
            raise RuntimeError("profiler is already installed")
        self._sim = sim

        self.wrap(sim, "run", "loop")
        self.wrap(sim, "_take_checkpoint", "checkpoint")

        # Memory system: instruction side -> cpu.fetch, data side ->
        # cpu.mem, per-level cache modelling -> mem.l1i/l1d/l2.
        self.wrap(sim.memory, "fetch", "cpu.fetch")
        self.wrap(sim.memory, "read", "cpu.mem")
        self.wrap(sim.memory, "write", "cpu.mem")
        self.wrap(sim.hierarchy, "fetch", "cpu.fetch")
        self.wrap(sim.hierarchy, "read", "cpu.mem")
        self.wrap(sim.hierarchy, "write", "cpu.mem")
        for level in ("l1i", "l1d", "l2"):
            self.wrap(getattr(sim.hierarchy, level), "access",
                      f"mem.{level}")

        core = sim.core
        self.wrap(core, "serve_instruction", "cpu.commit")
        self.wrap(core, "execute", "cpu.execute")
        self._decode_cores.append((core, core.decode_cache))
        core.decode_cache = _TimedDecodeCache(core.decode_cache, self)

        system = sim.system
        self.wrap(system, "syscall", "kernel.syscall")
        self.wrap(system, "schedule", "kernel.schedule")
        self.wrap(system, "on_exit", "kernel.process")
        self.wrap(system, "on_crash", "kernel.process")

        injector = sim.injector
        if injector is not None:
            for hook in ("on_fetch", "on_decode", "on_execute",
                         "on_mem", "on_commit", "on_trace", "observe",
                         "handle_fi_activate", "handle_fi_read_init"):
                self.wrap(injector, hook, "injector")

        if sim.bus is not None:
            for sink in sim.bus.sinks:
                self.wrap(sink, "accept", "telemetry.sink")

        self._wrap_cpu(sim.cpu)

        # switch_model replaces sim.cpu with a fresh (unwrapped) model;
        # intercept it so the new model's stages stay attributed.
        original_switch = sim.switch_model
        enter = self._enter
        exit_ = self._exit

        def switch_model(model_name: str) -> None:
            frame = enter("cpu.switch")
            try:
                original_switch(model_name)
            finally:
                exit_(frame)
            self._wrap_cpu(sim.cpu)

        switch_model.__profiled__ = "cpu.switch"
        sim.switch_model = switch_model
        self._wrapped.append((sim, "switch_model"))

        sim.profiler = self
        return self

    def _wrap_cpu(self, cpu) -> None:
        """Per-stage wrappers for the active CPU model."""
        self.wrap(cpu, "step", "cpu.step")
        if cpu.model_name == "o3":
            # Self times: _frontend minus fetch/decode = predict + ROB
            # insert (rename); _commit minus execute/_retire = the
            # scoreboard wakeup/select loop (issue).
            self.wrap(cpu, "_frontend", "cpu.rename")
            self.wrap(cpu, "_commit", "cpu.issue")
            self.wrap(cpu, "_retire", "cpu.commit")

    def uninstall(self) -> None:
        """Delete every instance override, restoring the original
        class-level methods (and the original decode cache)."""
        for obj, attr in reversed(self._wrapped):
            try:
                delattr(obj, attr)
            except AttributeError:
                pass
        self._wrapped.clear()
        for core, cache in self._decode_cores:
            core.decode_cache = cache
        self._decode_cores.clear()
        if self._sim is not None:
            self._sim.profiler = None
            self._sim = None

    @property
    def installed(self) -> bool:
        return self._sim is not None

    # -- results ---------------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        """Total elapsed time of the outermost profiled scopes (i.e.
        time spent inside ``sim.run``)."""
        return self.total_seconds

    def attribution(self) -> dict[str, float]:
        """Bucket -> self seconds, every recorded bucket."""
        return dict(self.buckets)

    def attributed_seconds(self) -> float:
        return sum(self.buckets.values())

    def coverage(self, wall_seconds: float | None = None) -> float:
        """Fraction of *wall_seconds* the buckets account for (the
        acceptance bar is >= 0.90 on every CPU model)."""
        wall = self.total_seconds if wall_seconds is None \
            else wall_seconds
        if wall <= 0:
            return 0.0
        return self.attributed_seconds() / wall

    def folded(self) -> str:
        """Brendan-Gregg folded-stack lines (``a;b;c <microseconds>``),
        ready for ``flamegraph.pl`` or speedscope."""
        lines = []
        for path, seconds in sorted(self.paths.items()):
            micros = round(seconds * 1e6)
            if micros:
                lines.append(";".join(path) + f" {micros}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render_table(self, wall_seconds: float | None = None) -> str:
        """The ``gemfi profile`` attribution table."""
        wall = self.total_seconds if wall_seconds is None \
            else wall_seconds
        rows = sorted(self.buckets.items(),
                      key=lambda item: (-item[1], item[0]))
        lines = [f"{'component':<18} {'self':>10} {'share':>7} "
                 f"{'calls':>12}"]
        for bucket, seconds in rows:
            share = seconds / wall if wall > 0 else 0.0
            lines.append(f"{bucket:<18} {seconds:>9.4f}s {share:>6.1%} "
                         f"{self.calls.get(bucket, 0):>12}")
        attributed = self.attributed_seconds()
        share = attributed / wall if wall > 0 else 0.0
        lines.append(f"{'attributed':<18} {attributed:>9.4f}s "
                     f"{share:>6.1%}")
        return "\n".join(lines)


# -- sim-rate helpers ---------------------------------------------------------


def sim_rates(instructions: int, ticks: int,
              wall_seconds: float) -> dict[str, float]:
    """The three sim-rate gauges: committed-KIPS, ticks/second and
    host-seconds per simulated instruction."""
    if wall_seconds <= 0:
        return {"kips": 0.0, "ticks_per_second": 0.0,
                "host_seconds_per_instruction": 0.0}
    return {
        "kips": instructions / wall_seconds / 1e3,
        "ticks_per_second": ticks / wall_seconds,
        "host_seconds_per_instruction":
            wall_seconds / instructions if instructions else 0.0,
    }


# -- signal-based sampling ----------------------------------------------------

# Innermost-repro-frame -> component mapping for sample attribution.
_COMPONENT_PREFIXES = (
    ("repro/cpu/", "cpu"),
    ("repro/memory/", "mem"),
    ("repro/system/", "kernel"),
    ("repro/core/", "injector"),
    ("repro/telemetry/", "telemetry"),
    ("repro/isa/", "isa"),
    ("repro/sim/", "loop"),
)


def _component_of(filename: str) -> str | None:
    normalized = filename.replace("\\", "/")
    for prefix, component in _COMPONENT_PREFIXES:
        if prefix in normalized:
            return component
    return None


class SamplingProfiler:
    """Statistical profiler: periodic ``SIGPROF`` stack samples.

    Complements the scoped timers: no wrappers, so (almost) no observer
    effect, at the cost of needing enough CPU seconds for the sample
    population to stabilise.  ``ITIMER_PROF`` counts *CPU* time, so a
    sleeping simulator is never sampled.  Main-thread only (a CPython
    signal-handler restriction); :meth:`start` raises ``ValueError``
    elsewhere, which ``gemfi profile --sample`` reports cleanly.
    """

    def __init__(self, hz: int = 97, max_depth: int = 64) -> None:
        if hz <= 0:
            raise ValueError("sampling frequency must be positive")
        self.interval = 1.0 / hz
        self.max_depth = max_depth
        self.samples = 0
        self.stacks: dict[tuple[str, ...], int] = {}
        self.components: dict[str, int] = {}
        self._previous_handler = None
        self._running = False

    # The handler body is also the test seam: tests call sample() with a
    # real frame object directly, no timer involved.
    def _handle(self, signum, frame) -> None:  # pragma: no cover - timer
        self.sample(frame)

    def sample(self, frame) -> None:
        """Record one stack sample rooted at *frame*."""
        stack: list[str] = []
        component = None
        depth = 0
        while frame is not None and depth < self.max_depth:
            code = frame.f_code
            name = code.co_filename.rsplit("/", 1)[-1]
            if name.endswith(".py"):
                name = name[:-3]
            stack.append(f"{name}.{code.co_name}")
            if component is None:
                component = _component_of(code.co_filename)
            frame = frame.f_back
            depth += 1
        stack.reverse()
        path = tuple(stack)
        self.stacks[path] = self.stacks.get(path, 0) + 1
        self.samples += 1
        bucket = component or "other"
        self.components[bucket] = self.components.get(bucket, 0) + 1

    def start(self) -> None:
        self._previous_handler = signal.signal(signal.SIGPROF,
                                               self._handle)
        signal.setitimer(signal.ITIMER_PROF, self.interval,
                         self.interval)
        self._running = True

    def stop(self) -> None:
        if not self._running:
            return
        signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
        if self._previous_handler is not None:
            signal.signal(signal.SIGPROF, self._previous_handler)
        self._previous_handler = None
        self._running = False

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def folded(self) -> str:
        """Folded-stack lines, weights in sample counts."""
        lines = [";".join(path) + f" {count}"
                 for path, count in sorted(self.stacks.items())]
        return "\n".join(lines) + ("\n" if lines else "")

    def attribution(self) -> dict[str, float]:
        """Component -> fraction of samples."""
        if not self.samples:
            return {}
        return {name: count / self.samples
                for name, count in sorted(self.components.items())}

    def render_table(self) -> str:
        lines = [f"{'component':<18} {'samples':>8} {'share':>7}"]
        for name, count in sorted(self.components.items(),
                                  key=lambda item: (-item[1], item[0])):
            share = count / self.samples if self.samples else 0.0
            lines.append(f"{name:<18} {count:>8} {share:>6.1%}")
        lines.append(f"{'total':<18} {self.samples:>8}")
        return "\n".join(lines)
