"""The simulator: assembles the platform and owns the run loop.

Responsibilities mirroring gem5 + the GemFI extensions:

* build memory, caches, core, CPU model, kernel from a :class:`SimConfig`;
* run the fetch-decode-execute loop with scheduler quanta and watchdog;
* service ``fi_read_init_all`` checkpoint requests (DMTCP substitute);
* switch CPU models mid-run (detailed -> atomic once the fault committed,
  the campaign methodology of Section IV.B.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.injector import FaultInjector
from ..cpu import CPU_MODELS
from ..cpu.base import CheckpointRequested, Core
from ..isa.instructions import DecodeCache
from ..isa.traps import HaltRequest, SimTrap
from ..memory.hierarchy import MemoryHierarchy
from ..memory.mainmem import MainMemory
from ..system.kernel import System
from ..system.process import Process
from ..system.syscalls import ProcessExited
from .config import SimConfig


@dataclass
class RunResult:
    """Outcome of one :meth:`Simulator.run` call."""

    status: str                 # "completed" | "limit" | "halted"
    instructions: int
    ticks: int
    checkpoint_taken: bool = False

    @property
    def hit_limit(self) -> bool:
        return self.status == "limit"


class Simulator:
    """A complete simulated machine."""

    def __init__(self, config: SimConfig | None = None,
                 injector: FaultInjector | None = None,
                 bus=None) -> None:
        self.config = config or SimConfig()
        self.tick = 0
        self.instructions = 0
        self.memory = MainMemory()
        self.hierarchy = MemoryHierarchy(self.memory,
                                         self.config.hierarchy)
        self.injector = injector
        if injector is not None:
            injector.clock = lambda: self.tick
        self.system = System(self.memory, clock=lambda: self.tick,
                             quantum=self.config.quantum)
        self.core = Core(
            self.config.core_name, self.hierarchy, injector=injector,
            decode_cache=DecodeCache(enabled=self.config.decode_cache))
        self.core.system = self.system
        self.core.fi_hash_lookup = \
            self.config.fi_hash_lookup_per_instruction
        self.cpu = CPU_MODELS[self.config.cpu_model](self.core)
        self.checkpoint_path = None
        self.checkpoint_taken = False
        self.on_checkpoint = None        # callable(sim) -> None
        self._switched_to_atomic = False
        self._quantum_counter = 0
        # Kept so checkpoints can re-create processes: pid -> (asm, name).
        self.program_sources: dict[int, tuple[str, str]] = {}
        # Structured trace bus (repro.telemetry); None = telemetry off.
        self.bus = None
        if bus is not None:
            self.attach_bus(bus)
        # Self-profiler handle; set by Profiler.install(sim).  Never
        # consulted on the instruction path — profiling works by method
        # replacement, so a plain run carries no flag checks at all.
        self.profiler = None
        # Span tracer (repro.telemetry.spans); None = tracing off.
        # Only consulted on checkpoint saves — a per-experiment-rare
        # event — so the run loop stays untouched.
        self.tracer = None

    # -- telemetry ---------------------------------------------------------------

    def attach_bus(self, bus) -> None:
        """Wire a :class:`~repro.telemetry.TraceBus` through the
        platform: the simulator, the core (syscall events), the CPU
        model (drain/squash events) and the injector (fault lifecycle)
        all share the one bus, clocked by the global tick."""
        self.bus = bus
        bus.clock = lambda: self.tick
        self.core.bus = bus
        if self.injector is not None:
            self.injector.bus = bus

    # -- program loading -----------------------------------------------------------

    def load(self, asm_source: str, name: str = "app",
             entry_symbol: str = "main") -> Process:
        """Load a program; the first loaded process runs first."""
        process = self.system.spawn(asm_source, name,
                                    entry_symbol=entry_symbol)
        self.program_sources[process.pid] = (asm_source, name)
        return process

    # -- the run loop ------------------------------------------------------------------

    def run(self, max_instructions: int | None = None,
            until_checkpoint: bool = False) -> RunResult:
        """Simulate until every process finishes, the watchdog fires, a
        ``halt`` executes, or (optionally) a checkpoint is taken."""
        limit = max_instructions or self.config.max_instructions
        system = self.system
        core = self.core
        config = self.config
        poll = config.poll_interval
        next_poll = self.instructions + poll

        if system.current_pid is None or \
                not system.processes[system.current_pid].alive:
            if system.schedule(core) is None:
                return self._result("completed")

        status = "completed"
        while True:
            try:
                ticks, committed = self.cpu.step()
            except ProcessExited as exited:
                self.cpu.drain()
                if self.bus is not None:
                    self.bus.emit("process_exit", pid=exited.pid,
                                  code=exited.code)
                system.on_exit(core, exited)
                if not system.any_alive:
                    status = "completed"
                    break
                continue
            except CheckpointRequested as request:
                # Complete the fi_read_init_all instruction by hand, then
                # snapshot: the checkpoint lands exactly between it and
                # the following instruction.
                self.cpu.drain()
                core.arch.pc = request.next_pc
                core.committed += 1
                self.tick += 1
                self.instructions += 1
                if self.injector is not None:
                    self.injector.checkpoint_requested = False
                self._take_checkpoint()
                if until_checkpoint:
                    status = "completed"
                    break
                continue
            except HaltRequest:
                if self.bus is not None:
                    self.bus.emit("halt", pc=core.arch.pc)
                status = "halted"
                break
            except SimTrap as trap:
                self.cpu.drain()
                if self.bus is not None:
                    self.bus.emit(
                        "trap", trap=type(trap).__name__,
                        reason=str(trap), pid=system.current_pid,
                        pc=trap.pc if trap.pc is not None
                        else core.arch.pc)
                system.on_crash(core, trap)
                if not system.any_alive:
                    status = "completed"
                    break
                continue

            self.tick += ticks
            self.instructions += committed
            self._quantum_counter += committed

            if self.instructions >= next_poll:
                next_poll = self.instructions + poll
                injector = self.injector
                if injector is not None:
                    if (config.switch_to_atomic_after_fi
                            and not self._switched_to_atomic
                            and injector.injection_happened
                            and injector.all_faults_done):
                        self.switch_model("atomic")
                if limit is not None and self.instructions >= limit:
                    status = "limit"
                    break
                if system.yield_requested or (
                        self._quantum_counter >= system.quantum
                        and len(system.runnable) > 1):
                    system.yield_requested = False
                    self._quantum_counter = 0
                    self.cpu.drain()
                    system.schedule(core)
        return self._result(status)

    def _result(self, status: str) -> RunResult:
        return RunResult(status=status, instructions=self.instructions,
                         ticks=self.tick,
                         checkpoint_taken=self.checkpoint_taken)

    # -- CPU model switching --------------------------------------------------------------

    def switch_model(self, model_name: str) -> None:
        """Drain the pipeline and swap CPU models (O3 -> atomic in the
        campaign methodology)."""
        if self.cpu.model_name == model_name:
            self._switched_to_atomic = model_name == "atomic"
            return
        self.cpu.drain()
        if self.bus is not None:
            self.bus.emit("model_switch", old=self.cpu.model_name,
                          new=model_name)
        self.cpu = CPU_MODELS[model_name](self.core)
        if model_name == "atomic":
            self._switched_to_atomic = True

    # -- checkpointing ------------------------------------------------------------------------

    def _take_checkpoint(self) -> None:
        if self.tracer is not None and \
                (self.on_checkpoint is not None
                 or self.checkpoint_path is not None):
            with self.tracer.span("checkpoint_save", tick=self.tick,
                                  kind="checkpoint",
                                  instructions=self.instructions):
                self._write_checkpoint()
        else:
            self._write_checkpoint()

    def _write_checkpoint(self) -> None:
        from . import checkpoint as ckpt
        if self.on_checkpoint is not None:
            self.on_checkpoint(self)
            self.checkpoint_taken = True
        elif self.checkpoint_path is not None:
            ckpt.save_checkpoint(self, self.checkpoint_path)
            self.checkpoint_taken = True
        # With no checkpoint sink configured the request is a no-op, like
        # running the binary outside a campaign.
        if self.checkpoint_taken and self.bus is not None:
            self.bus.emit("checkpoint_save",
                          instructions=self.instructions)

    # -- convenience accessors -------------------------------------------------------------------

    def console_text(self, pid: int = 0) -> str:
        return self.system.processes[pid].console_text()

    def process(self, pid: int = 0) -> Process:
        return self.system.processes[pid]

    def stats_dump(self) -> str:
        from . import stats
        return stats.dump(self)
