"""gem5-style statistics collection and text dump.

The validation methodology of Section IV.A compares both the application
output *and* "the statistical results provided by the simulator" between
GemFI (faults configured off) and unmodified gem5.  :func:`collect`
gathers every counter of the simulated platform; :func:`dump` renders
them in the sorted ``name value`` format of gem5's stats.txt so dumps can
be diffed directly.
"""

from __future__ import annotations

from typing import Any


def collect(sim) -> dict[str, Any]:
    """Gather all statistics of a simulator into a flat dict."""
    stats: dict[str, Any] = {
        "sim.ticks": sim.tick,
        "sim.instructions": sim.instructions,
        "system.context_switches": sim.system.context_switches,
    }
    core = sim.core
    stats[f"{core.name}.committed"] = core.committed
    for level_name, level in (("l1i", sim.hierarchy.l1i),
                              ("l1d", sim.hierarchy.l1d),
                              ("l2", sim.hierarchy.l2)):
        for key, value in level.stats.as_dict().items():
            stats[f"{core.name}.{level_name}.{key}"] = value
    cpu = sim.cpu
    if hasattr(cpu, "predictor"):
        stats[f"{core.name}.bp.lookups"] = cpu.predictor.lookups
        stats[f"{core.name}.bp.mispredicts"] = cpu.predictor.mispredicts
    if hasattr(cpu, "squashed_instructions"):
        stats[f"{core.name}.squashed"] = cpu.squashed_instructions
    if hasattr(cpu, "rob_hwm"):
        stats[f"{core.name}.rob.occupancy_hwm"] = cpu.rob_hwm
        stats[f"{core.name}.rob.rename_stalls"] = cpu.rename_stalls
    for pid, process in sorted(sim.system.processes.items()):
        stats[f"process.{pid}.state"] = process.state.value
        stats[f"process.{pid}.instructions"] = process.instructions
    return stats


def dump(sim) -> str:
    """Render statistics as sorted ``name value`` lines (stats.txt)."""
    lines = [f"{name} {value}" for name, value in
             sorted(collect(sim).items())]
    return "\n".join(lines) + "\n"
