"""gem5-style statistics collection and text dump.

The validation methodology of Section IV.A compares both the application
output *and* "the statistical results provided by the simulator" between
GemFI (faults configured off) and unmodified gem5.  :func:`build_registry`
gathers every counter of the simulated platform into a
:class:`~repro.telemetry.metrics.MetricsRegistry`; :func:`dump` renders
it in the sorted ``name value`` format of gem5's stats.txt so dumps can
be diffed directly (``gemfi stats-diff``).

Uniformity guarantee: every CPU model emits the same counter set for the
same program — branch-predictor, squash and ROB counters are reported as
zero by models that do not implement them — so dumps are line-diffable
*across* models, not just across runs.  Injection statistics
(per-stage counts, injection-to-first-divergence latency) appear only
once a fault has actually fired: a GemFI run with faults configured off
dumps byte-identically to an unmodified-simulator run, which is exactly
the Section IV.A validation property.
"""

from __future__ import annotations

from typing import Any

from ..telemetry.metrics import MetricsRegistry


def build_registry(sim) -> MetricsRegistry:
    """Assemble the statistics registry of a simulated platform."""
    registry = MetricsRegistry()
    registry.set("sim.ticks", sim.tick)
    registry.set("sim.instructions", sim.instructions)
    registry.set("system.context_switches",
                 sim.system.context_switches)

    core = sim.core
    cpu = sim.cpu
    scope = registry.scope(core.name)
    scope.set("committed", core.committed)
    # Uniform micro-architectural counters: models without the feature
    # report zero instead of omitting the line.
    predictor = getattr(cpu, "predictor", None)
    scope.set("bp.lookups",
              predictor.lookups if predictor is not None else 0)
    scope.set("bp.mispredicts",
              predictor.mispredicts if predictor is not None else 0)
    scope.set("squashed", getattr(cpu, "squashed_instructions", 0))
    scope.set("rob.occupancy_hwm", getattr(cpu, "rob_hwm", 0))
    scope.set("rob.rename_stalls", getattr(cpu, "rename_stalls", 0))
    scope.formula(
        "ipc",
        lambda reg: (reg.get(f"{core.name}.committed") /
                     reg.get("sim.ticks")) if sim.tick else 0.0)

    for level_name, level in (("l1i", sim.hierarchy.l1i),
                              ("l1d", sim.hierarchy.l1d),
                              ("l2", sim.hierarchy.l2)):
        cache_scope = scope.scope(level_name)
        for key, value in level.stats.as_dict().items():
            cache_scope.set(key, value)

    for pid, process in sorted(sim.system.processes.items()):
        proc_scope = registry.scope(f"process.{pid}")
        proc_scope.set("state", process.state.value)
        proc_scope.set("instructions", process.instructions)

    _fault_injection_stats(sim, registry)
    _host_profile_stats(sim, registry)
    return registry


def _fault_injection_stats(sim, registry: MetricsRegistry) -> None:
    """Injection statistics, present only once a fault has fired.

    Emitting nothing for injection-free runs keeps a GemFI-attached,
    faults-off dump byte-identical to an unmodified run (Section IV.A).
    When faults did fire, the counter set is uniform: every stage line
    is present even at zero, so campaigns can diff dumps across
    experiments hitting different stages.
    """
    injector = getattr(sim, "injector", None)
    if injector is None or not injector.records:
        return
    fi = registry.scope("fi")
    stage_counts = {stage: 0 for stage in
                    ("fetch", "decode", "execute", "mem", "regfile")}
    latency = fi.distribution("divergence_latency")
    propagated = 0
    for record in injector.records:
        stage_counts[record.fault.stage.value] += 1
        if record.propagated:
            propagated += 1
            if record.resolved_tick is not None:
                latency.record(record.resolved_tick - record.tick)
    for stage, count in stage_counts.items():
        fi.set(f"injections.{stage}", count)
    fi.set("injections.total", len(injector.records))
    fi.set("propagated", propagated)


def _host_profile_stats(sim, registry: MetricsRegistry) -> None:
    """Host-side sim-rate gauges, present only under a profiler.

    Host timings are nondeterministic, so — exactly like the ``fi.*``
    scope — they are emitted only when the run opted in by installing a
    :class:`~repro.telemetry.profiler.Profiler`.  Unprofiled dumps stay
    byte-identical to pre-profiler dumps (the Section IV.A property).
    """
    profiler = getattr(sim, "profiler", None)
    if profiler is None or profiler.wall_seconds <= 0:
        return
    from ..telemetry.profiler import sim_rates
    host = registry.scope("host")
    host.set("wall_seconds", round(profiler.wall_seconds, 6))
    rates = sim_rates(sim.instructions, sim.tick,
                      profiler.wall_seconds)
    host.set("kips", round(rates["kips"], 3))
    host.set("ticks_per_second",
             round(rates["ticks_per_second"], 1))
    host.set("seconds_per_instruction",
             round(rates["host_seconds_per_instruction"], 9))
    profile = host.scope("profile")
    for bucket, seconds in profiler.attribution().items():
        profile.set(bucket, round(seconds, 6))
    host.set("profile_coverage", round(profiler.coverage(), 4))


def collect(sim) -> dict[str, Any]:
    """Gather all statistics of a simulator into a flat dict."""
    return build_registry(sim).as_flat_dict()


def dump(sim) -> str:
    """Render statistics as sorted ``name value`` lines (stats.txt)."""
    return build_registry(sim).dump()
