"""Simulation driver: configuration, run loop, stats, checkpointing."""

from .checkpoint import (
    CheckpointError,
    dumps_checkpoint,
    restore_checkpoint,
    save_checkpoint,
    snapshot_state,
)
from .config import SimConfig
from .simulator import RunResult, Simulator
from . import stats

__all__ = [
    "CheckpointError", "RunResult", "SimConfig", "Simulator",
    "dumps_checkpoint", "restore_checkpoint", "save_checkpoint",
    "snapshot_state", "stats",
]
