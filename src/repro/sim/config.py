"""Simulation configuration (the gem5 Python-config analogue).

A :class:`SimConfig` fully determines the simulated machine; it is
picklable and stored inside checkpoints so a restored simulation rebuilds
an identical platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..memory.hierarchy import HierarchyConfig

CPU_MODEL_NAMES = ("atomic", "timing", "inorder", "o3")


@dataclass
class SimConfig:
    """Machine + run-policy configuration."""

    cpu_model: str = "atomic"
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    # Scheduler time slice, in committed instructions.
    quantum: int = 20_000
    # Watchdog: end the run (status "limit") after this many committed
    # instructions.  Fault campaigns rely on it to reap fault-induced
    # infinite loops.
    max_instructions: int | None = None
    # Campaign methodology of Section IV.B.1: once the injected fault has
    # committed (or can never fire again), switch from the detailed CPU
    # model to AtomicSimple for the rest of the run.
    switch_to_atomic_after_fi: bool = False
    # Decode-cache ablation knob.
    decode_cache: bool = True
    # Ablation of the Section III.C design choice: when True, the
    # core looks the running thread up in the PCB hash table on
    # EVERY instruction instead of refreshing a pointer at context
    # switches ("eliminate the overhead of checking the fault
    # injection status of the executing thread in the hash table on
    # each simulated clock tick").
    fi_hash_lookup_per_instruction: bool = False
    # How often (committed instructions) the run loop polls for FI model
    # switching and checkpoint requests.
    poll_interval: int = 64
    core_name: str = "system.cpu0"

    def __post_init__(self) -> None:
        if self.cpu_model not in CPU_MODEL_NAMES:
            raise ValueError(
                f"unknown cpu model '{self.cpu_model}', "
                f"expected one of {CPU_MODEL_NAMES}")
        if self.quantum < 1:
            raise ValueError("quantum must be positive")
