"""Whole-simulator checkpointing (the DMTCP substitute, Section III.D).

The paper checkpoints the *Linux process running the simulator* with
DMTCP rather than using gem5's internal checkpoints (which either force a
pipeline-flushing model switch or require the slow MOESI-hammer ruby
model).  The Python equivalent of a process-level checkpoint is a
complete snapshot of the simulator object graph: memory pages, caches,
architectural state, kernel state, predictor tables and the tick clock.

Restoring re-parses the fault configuration (``FaultInjector.reset`` +
``load_faults``), so one checkpoint fast-forwards *every* experiment of a
campaign past boot + application initialisation (Fig. 3).
"""

from __future__ import annotations

import io
import pickle

from ..core.fault import Fault
from ..core.injector import FaultInjector
from .config import SimConfig
from .simulator import Simulator

FORMAT_VERSION = 3


class CheckpointError(Exception):
    """Raised for version or content mismatches on restore."""


def snapshot_state(sim: Simulator) -> dict:
    """Capture everything needed to resume *sim* exactly where it is."""
    return {
        "version": FORMAT_VERSION,
        "config": sim.config,
        "tick": sim.tick,
        "instructions": sim.instructions,
        "memory": sim.memory.snapshot(),
        "hierarchy": sim.hierarchy.snapshot(),
        "core": sim.core.snapshot(),
        "cpu_model": sim.cpu.model_name,
        "cpu": sim.cpu.snapshot(),
        "system": sim.system.snapshot(),
        "program_sources": dict(sim.program_sources),
    }


def save_checkpoint(sim: Simulator, path) -> None:
    """Serialise a checkpoint to *path*."""
    with open(path, "wb") as handle:
        pickle.dump(snapshot_state(sim), handle,
                    protocol=pickle.HIGHEST_PROTOCOL)


def dumps_checkpoint(sim: Simulator) -> bytes:
    """Serialise a checkpoint to bytes (in-memory campaigns)."""
    buffer = io.BytesIO()
    pickle.dump(snapshot_state(sim), buffer,
                protocol=pickle.HIGHEST_PROTOCOL)
    return buffer.getvalue()


def restore_checkpoint(source, faults: list[Fault] | None = None,
                       config_override: SimConfig | None = None,
                       bus=None, tracer=None) -> Simulator:
    """Rebuild a simulator from a checkpoint.

    ``source`` is a path or a bytes blob.  ``faults`` installs a fresh
    fault configuration (the per-experiment input file); the injector is
    always reset, matching ``fi_read_init_all`` semantics.
    ``config_override`` lets campaigns restore into a different CPU model
    (e.g. the detailed O3 model for the injection window).  ``bus``
    attaches a :class:`~repro.telemetry.TraceBus` to the restored
    platform and reports the restore on it.  ``tracer`` wraps the
    restore in a ``checkpoint_restore`` span and stays attached to the
    simulator, so span context survives the save/restore boundary.
    """
    span = None
    if tracer is not None:
        span = tracer.start("checkpoint_restore", kind="checkpoint")
    try:
        sim = _restore(source, faults, config_override, bus)
    except Exception:
        if span is not None:
            tracer.finish(span, error=True)
        raise
    if tracer is not None:
        sim.tracer = tracer
        tracer.finish(span, tick=sim.tick,
                      instructions=sim.instructions,
                      faults=len(faults or []))
    return sim


def _restore(source, faults, config_override, bus) -> Simulator:
    if isinstance(source, (bytes, bytearray)):
        state = pickle.loads(bytes(source))
    else:
        with open(source, "rb") as handle:
            state = pickle.load(handle)
    if state.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint version {state.get('version')} != "
            f"{FORMAT_VERSION}")

    config = config_override or state["config"]
    injector = FaultInjector(faults or [])
    sim = Simulator(config=config, injector=injector)

    # Blow away the fresh platform state and install the snapshot.
    sim.tick = state["tick"]
    sim.instructions = state["instructions"]
    sim.memory.restore(state["memory"])
    sim.hierarchy.restore(state["hierarchy"])
    sim.core.restore(state["core"])
    sim.system.restore(state["system"])
    sim.program_sources = dict(state["program_sources"])

    # CPU model: honour the override, otherwise resume the stored model.
    target_model = config.cpu_model if config_override is not None \
        else state["cpu_model"]
    if sim.cpu.model_name != target_model:
        from ..cpu import CPU_MODELS
        sim.cpu = CPU_MODELS[target_model](sim.core)
    if sim.cpu.model_name == state["cpu_model"]:
        sim.cpu.restore(state["cpu"])

    # The restored core must point at the (restored) injector state.
    injector.reset()
    if sim.system.current_pid is not None:
        current = sim.system.processes[sim.system.current_pid]
        sim.core.pcb_addr = current.pcb_addr
    sim.core.fi_thread = None
    if bus is not None:
        sim.attach_bus(bus)
        bus.emit("checkpoint_restore", tick=sim.tick,
                 instructions=sim.instructions,
                 faults=len(faults or []))
        for fault in faults or []:
            bus.emit("fault_armed", fault=fault.describe())
    return sim
