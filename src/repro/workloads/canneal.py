"""Canneal: simulated-annealing netlist placement (PARSEC kernel).

Minimises the routing cost of a chip by randomly swapping the locations
of netlist elements, accepting all improving swaps plus — early in the
schedule — some worsening ones (threshold annealing: a worsening swap is
accepted while its cost delta is below the current temperature, a
standard exp-free formulation).

Acceptance follows the paper: "correct Canneal executions are those that
reduce the total cost of routing and produce a correct chip" — the final
placement must be a valid permutation (every element placed exactly
once) and the final cost must not exceed the initial cost.
"""

from __future__ import annotations

from .quality import Outputs, is_permutation
from .spec import WorkloadSpec

SCALES = {
    "tiny": {"boot": 12000, "nets": 12, "fanout": 2, "steps": 120},
    "small": {"boot": 30000, "nets": 24, "fanout": 2, "steps": 400},
    "medium": {"boot": 80000, "nets": 48, "fanout": 3, "steps": 1500},
    "paper": {"boot": 900000, "nets": 100, "fanout": 3, "steps": 10000},
}


def netlist(nets: int, fanout: int) -> list[int]:
    """Deterministic netlist: net i connects to `fanout` pseudo-random
    other nets.  Flattened to an int array of size nets*fanout."""
    edges = []
    for i in range(nets):
        for k in range(fanout):
            edges.append((i * 31 + k * 17 + 7) % nets)
    return edges


def _minic_source(nets: int, fanout: int, steps: int,
                  boot_n: int) -> str:
    grid = 1
    while grid * grid < nets:
        grid += 1
    edges = ", ".join(str(v) for v in netlist(nets, fanout))
    return f'''
BOOT_N = {boot_n}
NETS = {nets}
FANOUT = {fanout}
STEPS = {steps}
GRID = {grid}
EDGES = iarray_init([{edges}])
PLACE = iarray({nets})
COST_OUT = iarray(2)
RNG = iarray(1)


def rng_next() -> int:
    RNG[0] = RNG[0] * 6364136223846793005 + 1442695040888963407
    return (RNG[0] >> 33) & 2147483647


def dist(a, b) -> int:
    ax = PLACE[a] % GRID
    ay = PLACE[a] // GRID
    bx = PLACE[b] % GRID
    by = PLACE[b] // GRID
    dx = ax - bx
    if dx < 0:
        dx = -dx
    dy = ay - by
    if dy < 0:
        dy = -dy
    return dx + dy


def net_cost(i) -> int:
    total = 0
    for k in range(FANOUT):
        total += dist(i, EDGES[i * FANOUT + k])
    return total


def total_cost() -> int:
    total = 0
    for i in range(NETS):
        total += net_cost(i)
    return total



def boot_warmup() -> int:
    # Models OS boot + application initialisation (the pre-checkpoint
    # phase that Fig. 8's fast-forwarding skips).
    x = 1
    for i in range(BOOT_N):
        x = x + ((x >> 3) ^ i)
    return x

def main():
    boot_warmup()
    RNG[0] = 987654321
    for i in range(NETS):
        PLACE[i] = i
    initial = total_cost()
    fi_read_init_all()
    fi_activate_inst(0)
    temperature = initial // 4 + 2
    for step in range(STEPS):
        a = rng_next() % NETS
        b = rng_next() % NETS
        if a != b:
            before = net_cost(a) + net_cost(b)
            tmp = PLACE[a]
            PLACE[a] = PLACE[b]
            PLACE[b] = tmp
            after = net_cost(a) + net_cost(b)
            delta = after - before
            if delta > 0 and delta >= temperature:
                tmp = PLACE[a]
                PLACE[a] = PLACE[b]
                PLACE[b] = tmp
        if step % 16 == 15 and temperature > 0:
            temperature -= 1
    fi_activate_inst(0)
    final = total_cost()
    COST_OUT[0] = initial
    COST_OUT[1] = final
    print_str("cost ")
    print_int(initial)
    print_str(" -> ")
    print_int(final)
    print_char(10)
    exit(0)
'''


def build(scale: str = "small") -> WorkloadSpec:
    params = SCALES[scale]
    nets = params["nets"]

    def accept(golden: Outputs, test: Outputs) -> bool:
        place = test.arrays.get("PLACE")
        costs = test.arrays.get("COST_OUT")
        if place is None or costs is None:
            return False
        if not is_permutation(place, nets):
            return False  # not "a correct chip"
        initial, final = costs
        golden_initial = golden.arrays["COST_OUT"][0]
        return initial == golden_initial and final <= initial

    return WorkloadSpec(
        name="canneal",
        source=_minic_source(nets, params["fanout"], params["steps"],
                             params["boot"]),
        output_arrays=[("PLACE", nets, "int"), ("COST_OUT", 2, "int")],
        accept=accept,
        description=f"simulated-annealing placement of {nets} nets, "
                    f"{params['steps']} swap steps (paper: 100 nets); "
                    f"correct iff the placement is a valid permutation "
                    f"and routing cost did not increase",
        uses_fp=False,
        scale=scale,
    )
