"""Monte Carlo PI estimation.

Randomly samples points in the unit square and counts those inside the
inscribed quarter circle.  The paper uses 10^5 points and accepts runs
"that have computed the first two decimal points correctly, since this is
the accuracy expected by the error-free execution"; at smaller sample
counts the expected accuracy shrinks accordingly (documented per scale).

Randomness comes from a 64-bit LCG implemented *in MiniC*, so injected
faults can corrupt the generator state itself — exactly the exposure the
real benchmark has.
"""

from __future__ import annotations

from .quality import Outputs, decimal_digits_match, parse_floats
from .spec import WorkloadSpec

SCALES = {
    "tiny": {"boot": 50000, "points": 500, "digits": 1},
    "small": {"boot": 120000, "points": 2000, "digits": 1},
    "medium": {"boot": 400000, "points": 20000, "digits": 2},
    "paper": {"boot": 3000000, "points": 100000, "digits": 2},
}

LCG_MUL = 6364136223846793005
LCG_ADD = 1442695040888963407
TWO53 = float(1 << 53)


def _minic_source(points: int, boot_n: int) -> str:
    return f'''
BOOT_N = {boot_n}
NPOINTS = {points}
SEED = 88172645463325252
RESULT = farray(1)


def lcg_next(state) -> int:
    return state * {LCG_MUL} + {LCG_ADD}


def to_unit(state) -> float:
    return float((state >> 11) & {(1 << 53) - 1}) / {TWO53!r}



def boot_warmup() -> int:
    # Models OS boot + application initialisation (the pre-checkpoint
    # phase that Fig. 8's fast-forwarding skips).
    x = 1
    for i in range(BOOT_N):
        x = x + ((x >> 3) ^ i)
    return x

def main():
    boot_warmup()
    fi_read_init_all()
    fi_activate_inst(0)
    state = SEED
    inside = 0
    for i in range(NPOINTS):
        state = lcg_next(state)
        x = to_unit(state)
        state = lcg_next(state)
        y = to_unit(state)
        if x * x + y * y <= 1.0:
            inside += 1
    estimate = 4.0 * float(inside) / float(NPOINTS)
    fi_activate_inst(0)
    RESULT[0] = estimate
    print_str("pi ")
    print_float(estimate)
    print_char(10)
    exit(0)
'''


def build(scale: str = "small") -> WorkloadSpec:
    params = SCALES[scale]
    points, digits = params["points"], params["digits"]

    def accept(golden: Outputs, test: Outputs) -> bool:
        golden_values = parse_floats(golden.console)
        test_values = parse_floats(test.console)
        if len(test_values) != 1 or len(golden_values) != 1:
            return False
        return decimal_digits_match(test_values[0], golden_values[0],
                                    digits)

    return WorkloadSpec(
        name="pi",
        source=_minic_source(points, params["boot"]),
        output_arrays=[("RESULT", 1, "float")],
        accept=accept,
        description=f"Monte Carlo PI with {points} points (paper: 1e5); "
                    f"correct iff the first {digits} decimal(s) match "
                    f"the error-free estimate",
        uses_fp=True,
        scale=scale,
    )
