"""Knapsack: 0/1 knapsack solved with a genetic algorithm.

Mirrors the paper's benchmark (24 items, weight limit 500, GA) at a
configurable size.  Chromosomes are bit masks; fitness is the packed
value (zero when overweight); selection is 2-way tournament, crossover is
single-point, mutation flips one bit — all randomness from an in-kernel
LCG so faults can hit the GA state.

The paper observes that *later* faults are increasingly harmless: a
corrupted individual that does not move toward the optimum is discarded
by the next selection round (Fig. 6).  Acceptance: the reported best
value equals the golden run's best value.
"""

from __future__ import annotations

from .quality import Outputs
from .spec import WorkloadSpec

SCALES = {
    "tiny": {"boot": 6000, "items": 8, "pop": 8, "gens": 10, "limit": 120},
    "small": {"boot": 20000, "items": 12, "pop": 16, "gens": 18, "limit": 180},
    "medium": {"boot": 50000, "items": 16, "pop": 24, "gens": 30, "limit": 260},
    "paper": {"boot": 500000, "items": 24, "pop": 64, "gens": 100, "limit": 500},
}


def item_weights(n: int) -> list[int]:
    return [(i * 29 + 17) % 53 + 5 for i in range(n)]


def item_values(n: int) -> list[int]:
    return [(i * 41 + 13) % 67 + 3 for i in range(n)]


def _minic_source(n: int, pop: int, gens: int, limit: int,
                  boot_n: int) -> str:
    weights = ", ".join(str(v) for v in item_weights(n))
    values = ", ".join(str(v) for v in item_values(n))
    return f'''
BOOT_N = {boot_n}
NITEMS = {n}
POP = {pop}
GENS = {gens}
LIMIT = {limit}
WEIGHTS = iarray_init([{weights}])
VALUES = iarray_init([{values}])
POPULATION = iarray({pop})
NEXTGEN = iarray({pop})
BEST = iarray(2)
RNG = iarray(1)


def rng_next() -> int:
    RNG[0] = RNG[0] * 6364136223846793005 + 1442695040888963407
    return (RNG[0] >> 33) & 2147483647


def fitness(mask) -> int:
    weight = 0
    value = 0
    for i in range(NITEMS):
        if (mask >> i) & 1:
            weight += WEIGHTS[i]
            value += VALUES[i]
    if weight > LIMIT:
        return 0
    return value


def tournament() -> int:
    a = rng_next() % POP
    b = rng_next() % POP
    fa = fitness(POPULATION[a])
    fb = fitness(POPULATION[b])
    if fa >= fb:
        return POPULATION[a]
    return POPULATION[b]


def evolve():
    for k in range(POP):
        p1 = tournament()
        p2 = tournament()
        point = rng_next() % NITEMS
        low_mask = (1 << point) - 1
        child = (p1 & low_mask) | (p2 & ~low_mask)
        if rng_next() % 8 == 0:
            child = child ^ (1 << (rng_next() % NITEMS))
        child = child & ((1 << NITEMS) - 1)
        NEXTGEN[k] = child
    for k in range(POP):
        POPULATION[k] = NEXTGEN[k]


def track_best():
    for k in range(POP):
        f = fitness(POPULATION[k])
        if f > BEST[0]:
            BEST[0] = f
            BEST[1] = POPULATION[k]



def boot_warmup() -> int:
    # Models OS boot + application initialisation (the pre-checkpoint
    # phase that Fig. 8's fast-forwarding skips).
    x = 1
    for i in range(BOOT_N):
        x = x + ((x >> 3) ^ i)
    return x

def main():
    boot_warmup()
    RNG[0] = 123456789
    for k in range(POP):
        POPULATION[k] = rng_next() & ((1 << NITEMS) - 1)
    BEST[0] = 0
    BEST[1] = 0
    fi_read_init_all()
    fi_activate_inst(0)
    for g in range(GENS):
        evolve()
        track_best()
    fi_activate_inst(0)
    print_str("best ")
    print_int(BEST[0])
    print_str(" mask ")
    print_int(BEST[1])
    print_char(10)
    exit(0)
'''


def build(scale: str = "small") -> WorkloadSpec:
    params = SCALES[scale]

    def accept(golden: Outputs, test: Outputs) -> bool:
        golden_best = golden.arrays.get("BEST")
        test_best = test.arrays.get("BEST")
        if not golden_best or not test_best:
            return False
        # Same best value, and the reported mask must actually achieve
        # it within the weight limit (guards against corrupted BEST[0]).
        n = params["items"]
        weights = item_weights(n)
        values = item_values(n)
        mask = test_best[1]
        if not 0 <= mask < (1 << n):
            return False
        weight = sum(weights[i] for i in range(n) if (mask >> i) & 1)
        value = sum(values[i] for i in range(n) if (mask >> i) & 1)
        return (test_best[0] == golden_best[0]
                and weight <= params["limit"]
                and value == test_best[0])

    return WorkloadSpec(
        name="knapsack",
        source=_minic_source(params["items"], params["pop"],
                             params["gens"], params["limit"],
                             params["boot"]),
        output_arrays=[("BEST", 2, "int")],
        accept=accept,
        description=f"0/1 knapsack GA: {params['items']} items, "
                    f"pop {params['pop']}, {params['gens']} generations "
                    f"(paper: 24 items, limit 500); correct iff the best "
                    f"value matches the golden run and the mask is valid",
        uses_fp=False,
        scale=scale,
    )
