"""DCT: the JPEG compression kernel of Section IV.

Forward 8x8 two-dimensional DCT plus quantisation over a synthetic
grayscale image (the paper uses a 512x512 photo; we synthesise a smooth
gradient with block texture at a configurable, smaller size — the kernel
structure, loop nests and FP behaviour are identical).

Acceptance (Fig. 4): the classifier dequantises and inverse-transforms
the produced coefficients in Python and computes the PSNR against the
original input image; outputs above 30 dB are *correct* ("typical PSNR
values in lossy image and video compression range between 30 and 50 dB").
"""

from __future__ import annotations

import math

from .quality import Outputs, psnr
from .spec import WorkloadSpec

SCALES = {
    "tiny": {"boot": 18000, "width": 8, "height": 8},
    "small": {"boot": 40000, "width": 16, "height": 16},
    "medium": {"boot": 120000, "width": 32, "height": 32},
    "paper": {"boot": 2000000, "width": 512, "height": 512},
}

PSNR_THRESHOLD_DB = 30.0

# Standard JPEG luminance quantisation table.
QUANT_TABLE = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
]


def cosine_table() -> list[float]:
    """C[u*8+x] = c(u) * cos((2x+1) u pi / 16)."""
    table = []
    for u in range(8):
        cu = math.sqrt(0.25) if u else math.sqrt(0.125)
        for x in range(8):
            table.append(cu * math.cos((2 * x + 1) * u * math.pi / 16.0))
    return table


def input_image(width: int, height: int) -> list[int]:
    """Deterministic synthetic grayscale image: smooth gradient plus an
    8x8 block texture (so the DCT has both DC and AC energy)."""
    img = []
    for y in range(height):
        for x in range(width):
            gradient = (x * 255 // max(width - 1, 1)
                        + y * 255 // max(height - 1, 1)) // 2
            texture = 24 if ((x // 4) + (y // 4)) % 2 else 0
            ripple = (x * 13 + y * 7 + x * y) % 17
            img.append(min(255, gradient + texture + ripple))
    return img


def decode(coeffs, width: int, height: int) -> list[float]:
    """Dequantise + inverse 8x8 DCT (Python-side, used for PSNR)."""
    table = cosine_table()
    out = [0.0] * (width * height)
    for by in range(height // 8):
        for bx in range(width // 8):
            block = [0.0] * 64
            for v in range(8):
                for u in range(8):
                    index = ((by * 8 + v) * width) + bx * 8 + u
                    block[v * 8 + u] = (float(coeffs[index])
                                        * QUANT_TABLE[v * 8 + u])
            for y in range(8):
                for x in range(8):
                    acc = 0.0
                    for v in range(8):
                        for u in range(8):
                            acc += (table[u * 8 + x] * table[v * 8 + y]
                                    * block[v * 8 + u])
                    out[(by * 8 + y) * width + bx * 8 + x] = acc + 128.0
    return out


def _minic_source(width: int, height: int, boot_n: int) -> str:
    size = width * height
    cos_values = ", ".join(repr(v) for v in cosine_table())
    quant = ", ".join(str(v) for v in QUANT_TABLE)
    return f'''
BOOT_N = {boot_n}
W = {width}
H = {height}
IMG = iarray({size})
OUT = iarray({size})
COS = farray_init([{cos_values}])
QT = iarray_init([{quant}])
BLK = farray(64)
TMP = farray(64)


def init_input():
    for y in range(H):
        for x in range(W):
            gradient = (x * 255 // (W - 1) + y * 255 // (H - 1)) // 2
            texture = 0
            if ((x // 4) + (y // 4)) % 2 == 1:
                texture = 24
            ripple = (x * 13 + y * 7 + x * y) % 17
            value = gradient + texture + ripple
            if value > 255:
                value = 255
            IMG[y * W + x] = value


def dct_block(bx, by):
    for y in range(8):
        for x in range(8):
            BLK[y * 8 + x] = float(IMG[(by * 8 + y) * W + bx * 8 + x]
                                   - 128)
    for u in range(8):
        for y in range(8):
            acc = 0.0
            for x in range(8):
                acc = acc + COS[u * 8 + x] * BLK[y * 8 + x]
            TMP[y * 8 + u] = acc
    for v in range(8):
        for u in range(8):
            acc = 0.0
            for y in range(8):
                acc = acc + COS[v * 8 + y] * TMP[y * 8 + u]
            q = acc / float(QT[v * 8 + u])
            if q >= 0.0:
                OUT[(by * 8 + v) * W + bx * 8 + u] = int(q + 0.5)
            else:
                OUT[(by * 8 + v) * W + bx * 8 + u] = -int(0.5 - q)



def boot_warmup() -> int:
    # Models OS boot + application initialisation (the pre-checkpoint
    # phase that Fig. 8's fast-forwarding skips).
    x = 1
    for i in range(BOOT_N):
        x = x + ((x >> 3) ^ i)
    return x

def main():
    boot_warmup()
    init_input()
    fi_read_init_all()
    fi_activate_inst(0)
    for by in range(H // 8):
        for bx in range(W // 8):
            dct_block(bx, by)
    fi_activate_inst(0)
    print_str("dct done\\n")
    exit(0)
'''


def build(scale: str = "small") -> WorkloadSpec:
    params = SCALES[scale]
    width, height = params["width"], params["height"]
    original = input_image(width, height)

    def accept(golden: Outputs, test: Outputs) -> bool:
        coeffs = test.arrays.get("OUT")
        if coeffs is None:
            return False
        decoded = decode(coeffs, width, height)
        return psnr(original, decoded) > PSNR_THRESHOLD_DB

    return WorkloadSpec(
        name="dct",
        source=_minic_source(width, height, params["boot"]),
        output_arrays=[("OUT", width * height, "int")],
        accept=accept,
        description=f"JPEG forward DCT + quantisation, {width}x{height} "
                    f"grayscale (paper: 512x512); correct iff decoded "
                    f"PSNR > {PSNR_THRESHOLD_DB} dB",
        uses_fp=True,
        scale=scale,
    )
