"""Uniform access to the six benchmark workloads of Section IV."""

from __future__ import annotations

from . import canneal, dct, deblocking, jacobi, knapsack, pi
from .spec import WorkloadSpec

_BUILDERS = {
    "dct": dct.build,
    "jacobi": jacobi.build,
    "pi": pi.build,
    "knapsack": knapsack.build,
    "deblocking": deblocking.build,
    "canneal": canneal.build,
}

WORKLOAD_NAMES = tuple(_BUILDERS)


def build(name: str, scale: str = "small") -> WorkloadSpec:
    """Build one workload at the requested scale
    (tiny / small / medium / paper)."""
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown workload '{name}'; available: {WORKLOAD_NAMES}")
    return _BUILDERS[name](scale)


def build_all(scale: str = "small") -> dict[str, WorkloadSpec]:
    """Build every paper workload at one scale."""
    return {name: build(name, scale) for name in WORKLOAD_NAMES}
