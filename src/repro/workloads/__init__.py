"""The six benchmark applications of Section IV, written in MiniC."""

from .quality import (
    Outputs,
    decimal_digits_match,
    extract_outputs,
    is_permutation,
    parse_floats,
    psnr,
    read_float_array,
    read_int_array,
)
from .registry import WORKLOAD_NAMES, build, build_all
from .spec import WorkloadSpec

__all__ = [
    "Outputs", "WORKLOAD_NAMES", "WorkloadSpec", "build", "build_all",
    "decimal_digits_match", "extract_outputs", "is_permutation",
    "parse_floats", "psnr", "read_float_array", "read_int_array",
]
