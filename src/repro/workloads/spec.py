"""Workload specification shared by all six benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .quality import Outputs


@dataclass
class WorkloadSpec:
    """A runnable benchmark: MiniC source + outputs + acceptance rule.

    ``accept(golden, test)`` implements the application's *relaxed
    correctness* criterion from Section IV.B.1 (PSNR threshold, decimal
    digits, converged solution, valid chip...).  Bit-exact equality
    (strict correctness) is checked generically by the campaign
    classifier and never reaches ``accept``.
    """

    name: str
    source: str
    # (symbol, element_count, "int"|"float") triples read postmortem.
    output_arrays: list[tuple[str, int, str]] = field(default_factory=list)
    accept: Callable[[Outputs, Outputs], bool] = lambda g, t: False
    description: str = ""
    uses_fp: bool = True
    scale: str = "small"
    # Rough golden instruction count, filled in lazily by campaigns.
    golden_instructions: int | None = None
