"""Jacobi: iterative solver on a diagonally dominant system.

The paper applies Jacobi to a diagonally dominant 64x64 matrix and
classifies as *correct* any run that converges to the same (bit-exact)
solution as the golden model "after a potentially different number of
iterations" — a fault that perturbs intermediate data is repaired by the
contraction mapping, at the cost of extra iterations.

The MiniC kernel iterates until the max component delta drops below a
threshold, rounds the solution to a fixed number of decimals (so the
converged fixed point is bit-stable) and reports the iteration count on
the console.
"""

from __future__ import annotations

from .quality import Outputs
from .spec import WorkloadSpec

SCALES = {
    "tiny": {"boot": 8000, "n": 6, "max_iters": 60},
    "small": {"boot": 25000, "n": 12, "max_iters": 120},
    "medium": {"boot": 60000, "n": 24, "max_iters": 200},
    "paper": {"boot": 800000, "n": 64, "max_iters": 500},
}

EPSILON = 1e-9
ROUND_SCALE = 1e6     # solution rounded to 6 decimals before output


def matrix(n: int) -> list[int]:
    """Deterministic diagonally dominant integer matrix."""
    a = []
    for i in range(n):
        for j in range(n):
            if i == j:
                a.append(4 * n)
            else:
                a.append((i * 7 + j * 3) % 4)
    return a


def rhs(n: int) -> list[int]:
    return [(i * 5) % 11 + 1 for i in range(n)]


def _minic_source(n: int, max_iters: int, boot_n: int) -> str:
    a_values = ", ".join(str(v) for v in matrix(n))
    b_values = ", ".join(str(v) for v in rhs(n))
    return f'''
BOOT_N = {boot_n}
N = {n}
MAX_ITERS = {max_iters}
A = iarray_init([{a_values}])
B = iarray_init([{b_values}])
X = farray({n})
XNEW = farray({n})
XOUT = farray({n})


def sweep() -> float:
    delta = 0.0
    for i in range(N):
        acc = 0.0
        for j in range(N):
            if j != i:
                acc = acc + float(A[i * N + j]) * X[j]
        value = (float(B[i]) - acc) / float(A[i * N + i])
        XNEW[i] = value
        d = value - X[i]
        if d < 0.0:
            d = -d
        if d > delta:
            delta = d
    for i in range(N):
        X[i] = XNEW[i]
    return delta


def roundout():
    for i in range(N):
        v = X[i] * {ROUND_SCALE!r}
        if v >= 0.0:
            XOUT[i] = float(int(v + 0.5)) / {ROUND_SCALE!r}
        else:
            XOUT[i] = -(float(int(0.5 - v)) / {ROUND_SCALE!r})



def boot_warmup() -> int:
    # Models OS boot + application initialisation (the pre-checkpoint
    # phase that Fig. 8's fast-forwarding skips).
    x = 1
    for i in range(BOOT_N):
        x = x + ((x >> 3) ^ i)
    return x

def main():
    boot_warmup()
    for i in range(N):
        X[i] = 0.0
    fi_read_init_all()
    fi_activate_inst(0)
    iters = 0
    delta = 1.0
    while delta > {EPSILON!r} and iters < MAX_ITERS:
        delta = sweep()
        iters += 1
    fi_activate_inst(0)
    roundout()
    print_str("iters ")
    print_int(iters)
    print_char(10)
    exit(0)
'''


def build(scale: str = "small") -> WorkloadSpec:
    params = SCALES[scale]
    n, max_iters = params["n"], params["max_iters"]

    def accept(golden: Outputs, test: Outputs) -> bool:
        # Bit-exact converged solution; the iteration count (printed on
        # the console) is allowed to differ.
        return test.arrays.get("XOUT") == golden.arrays.get("XOUT")

    return WorkloadSpec(
        name="jacobi",
        source=_minic_source(n, max_iters, params["boot"]),
        output_arrays=[("XOUT", n, "float")],
        accept=accept,
        description=f"Jacobi on a diagonally dominant {n}x{n} system "
                    f"(paper: 64x64); correct iff the rounded converged "
                    f"solution is bit-exact, iterations may differ",
        uses_fp=True,
        scale=scale,
    )
