"""Deblocking: the AVS video-decoder in-loop filter kernel.

Smooths the artificial discontinuities at 8x8 block boundaries of a
decoded frame.  Pure integer arithmetic — the paper highlights that this
benchmark has *no floating point operations* and therefore shows 100%
strict correctness under FP-register faults.

Acceptance: PSNR of the filtered output versus the error-free filtered
output above 80 dB (the paper's threshold for this kernel).
"""

from __future__ import annotations

from .quality import Outputs, psnr
from .spec import WorkloadSpec

SCALES = {
    "tiny": {"boot": 25000, "width": 16, "height": 8},
    "small": {"boot": 60000, "width": 48, "height": 16},
    "medium": {"boot": 150000, "width": 96, "height": 32},
    "paper": {"boot": 4000000, "width": 720, "height": 240},
}

PSNR_THRESHOLD_DB = 80.0
ALPHA = 22    # edge-activity thresholds of the AVS filter
BETA = 6


def input_frame(width: int, height: int) -> list[int]:
    """A blocky frame: per-8x8-block DC level plus deterministic noise,
    i.e. what a coarse quantiser produces before deblocking."""
    img = []
    for y in range(height):
        for x in range(width):
            block_dc = (((x // 8) * 37 + (y // 8) * 59) % 12) * 16 + 40
            noise = (x * 3 + y * 5 + (x * y) % 7) % 5
            img.append(min(255, block_dc + noise))
    return img


def _minic_source(width: int, height: int, boot_n: int) -> str:
    size = width * height
    return f'''
BOOT_N = {boot_n}
W = {width}
H = {height}
ALPHA = {ALPHA}
BETA = {BETA}
IMG = iarray({size})
OUT = iarray({size})


def init_input():
    for y in range(H):
        for x in range(W):
            block_dc = (((x // 8) * 37 + (y // 8) * 59) % 12) * 16 + 40
            noise = (x * 3 + y * 5 + (x * y) % 7) % 5
            value = block_dc + noise
            if value > 255:
                value = 255
            IMG[y * W + x] = value


def absdiff(a, b) -> int:
    d = a - b
    if d < 0:
        d = -d
    return d


def filter_vertical_edge(ex, y):
    p1 = OUT[y * W + ex - 2]
    p0 = OUT[y * W + ex - 1]
    q0 = OUT[y * W + ex]
    q1 = OUT[y * W + ex + 1]
    if absdiff(p0, q0) < ALPHA and absdiff(p1, p0) < BETA and \\
            absdiff(q1, q0) < BETA:
        OUT[y * W + ex - 1] = (p1 + 2 * p0 + q0 + 2) // 4
        OUT[y * W + ex] = (p0 + 2 * q0 + q1 + 2) // 4


def filter_horizontal_edge(x, ey):
    p1 = OUT[(ey - 2) * W + x]
    p0 = OUT[(ey - 1) * W + x]
    q0 = OUT[ey * W + x]
    q1 = OUT[(ey + 1) * W + x]
    if absdiff(p0, q0) < ALPHA and absdiff(p1, p0) < BETA and \\
            absdiff(q1, q0) < BETA:
        OUT[(ey - 1) * W + x] = (p1 + 2 * p0 + q0 + 2) // 4
        OUT[ey * W + x] = (p0 + 2 * q0 + q1 + 2) // 4



def boot_warmup() -> int:
    # Models OS boot + application initialisation (the pre-checkpoint
    # phase that Fig. 8's fast-forwarding skips).
    x = 1
    for i in range(BOOT_N):
        x = x + ((x >> 3) ^ i)
    return x

def main():
    boot_warmup()
    init_input()
    for i in range(W * H):
        OUT[i] = IMG[i]
    fi_read_init_all()
    fi_activate_inst(0)
    ex = 8
    while ex < W:
        for y in range(H):
            filter_vertical_edge(ex, y)
        ex += 8
    ey = 8
    while ey < H:
        for x in range(W):
            filter_horizontal_edge(x, ey)
        ey += 8
    fi_activate_inst(0)
    print_str("deblock done\\n")
    exit(0)
'''


def build(scale: str = "small") -> WorkloadSpec:
    params = SCALES[scale]
    width, height = params["width"], params["height"]

    def accept(golden: Outputs, test: Outputs) -> bool:
        golden_out = golden.arrays.get("OUT")
        test_out = test.arrays.get("OUT")
        if golden_out is None or test_out is None:
            return False
        return psnr(golden_out, test_out) > PSNR_THRESHOLD_DB

    return WorkloadSpec(
        name="deblocking",
        source=_minic_source(width, height, params["boot"]),
        output_arrays=[("OUT", width * height, "int")],
        accept=accept,
        description=f"AVS deblocking filter on a {width}x{height} frame "
                    f"(paper: 720x240); correct iff PSNR vs the "
                    f"error-free output exceeds {PSNR_THRESHOLD_DB} dB; "
                    f"integer-only kernel",
        uses_fp=False,
        scale=scale,
    )
