"""Output extraction and quality metrics for the benchmark workloads.

Implements the per-application acceptance criteria of Section IV.B.1:
PSNR thresholds for the image kernels, decimal-digit accuracy for PI,
converged-solution equality for Jacobi, routing-cost validity for
Canneal and solution-value equality for Knapsack.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field


@dataclass
class Outputs:
    """Everything a workload produced: console text + named arrays."""

    console: str = ""
    arrays: dict[str, tuple] = field(default_factory=dict)

    def __eq__(self, other) -> bool:  # bit-exact comparison
        return (isinstance(other, Outputs)
                and self.console == other.console
                and self.arrays == other.arrays)


def read_int_array(memory, base: int, count: int) -> tuple:
    blob = memory.peek_bytes(base, 8 * count)
    return struct.unpack(f"<{count}q", blob)


def read_float_array(memory, base: int, count: int) -> tuple:
    blob = memory.peek_bytes(base, 8 * count)
    return struct.unpack(f"<{count}d", blob)


def extract_outputs(spec, sim, process) -> Outputs:
    """Pull a workload's outputs from a finished simulation."""
    outputs = Outputs(console=process.console_text())
    for symbol, count, kind in spec.output_arrays:
        base = process.symbol(f"g_{symbol}")
        reader = read_int_array if kind == "int" else read_float_array
        outputs.arrays[symbol] = reader(sim.memory, base, count)
    return outputs


# -- metrics ---------------------------------------------------------------------


def psnr(reference, test, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB; +inf for identical signals."""
    if len(reference) != len(test):
        return 0.0
    if not reference:
        return math.inf
    mse = 0.0
    for ref_value, test_value in zip(reference, test):
        if isinstance(test_value, float) and not math.isfinite(test_value):
            return 0.0
        diff = float(ref_value) - float(test_value)
        mse += diff * diff
    mse /= len(reference)
    if mse == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / mse)


def is_permutation(values, size: int) -> bool:
    """True when *values* is a permutation of 0..size-1 (Canneal's
    "correct chip" check: every net placed exactly once)."""
    if len(values) != size:
        return False
    seen = [False] * size
    for value in values:
        if not 0 <= value < size or seen[value]:
            return False
        seen[value] = True
    return True


def decimal_digits_match(a: float, b: float, digits: int) -> bool:
    """Do two values agree in their first *digits* decimal places?"""
    if not (math.isfinite(a) and math.isfinite(b)):
        return False
    scale = 10 ** digits
    return math.floor(a * scale) == math.floor(b * scale)


def parse_floats(console: str) -> list[float]:
    """Parse every float-looking token from console output; malformed
    tokens (from corrupted output paths) simply do not parse."""
    values = []
    for token in console.split():
        try:
            values.append(float(token))
        except ValueError:
            continue
    return values
