"""Parser for GemFI fault-input files (Listing 1 of the paper).

Each non-empty, non-comment line describes one fault::

    RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu1 occ:1 int 1
    PCInjectedFault Tick:10000 Xor:0xff Threadid:0 system.cpu0 occ:1
    FetchStageInjectedFault Inst:100 Flip:5 Threadid:0 system.cpu0 occ:2
    DecodeStageInjectedFault Inst:100 Flip:2 Threadid:0 system.cpu0 occ:1 src 0
    ExecutionStageInjectedFault Inst:100 Imm:0 Threadid:0 system.cpu0 occ:1
    MemoryInjectedFault Inst:100 All1 Threadid:0 system.cpu0 occ:permanent

Tokens may appear in any order after the fault-type head token, mirroring
the keyword-ish format of the original tool.  Lines starting with ``#``
are comments.
"""

from __future__ import annotations

from .fault import (
    PERMANENT,
    Behavior,
    BehaviorKind,
    Fault,
    LocationKind,
    TimeMode,
)

_HEAD_TO_LOCATION = {
    "registerinjectedfault": None,   # refined by the int/fp trailing tokens
    "pcinjectedfault": LocationKind.PC,
    "fetchstageinjectedfault": LocationKind.FETCH,
    "decodestageinjectedfault": LocationKind.DECODE,
    "executionstageinjectedfault": LocationKind.EXECUTE,
    "memoryinjectedfault": LocationKind.MEM,
}


class FaultParseError(Exception):
    """Raised on malformed fault-description lines."""

    def __init__(self, message: str, lineno: int | None = None) -> None:
        if lineno is not None:
            message = f"fault input line {lineno}: {message}"
        super().__init__(message)
        self.lineno = lineno


def parse_fault_file(text: str) -> list[Fault]:
    """Parse a whole fault-input file into a list of faults."""
    faults = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip().strip('"')
        if not line or line.startswith("#"):
            continue
        faults.append(parse_fault_line(line, lineno=lineno))
    return faults


def parse_fault_line(line: str, lineno: int | None = None) -> Fault:
    """Parse a single Listing-1 style fault description."""
    tokens = line.split()
    head = tokens[0].lower()
    if head not in _HEAD_TO_LOCATION:
        raise FaultParseError(f"unknown fault type '{tokens[0]}'", lineno)
    location = _HEAD_TO_LOCATION[head]

    time_mode: TimeMode | None = None
    time_value: int | None = None
    behavior_kind: BehaviorKind | None = None
    operand = 0
    bits: tuple[int, ...] = ()
    occ: float = 1
    thread_id = 0
    cpu = "system.cpu0"
    trailing: list[str] = []

    for token in tokens[1:]:
        lowered = token.lower()
        if lowered.startswith("inst:"):
            time_mode, time_value = TimeMode.INSTRUCTIONS, \
                _int(token[5:], lineno)
        elif lowered.startswith("tick:"):
            time_mode, time_value = TimeMode.TICKS, _int(token[5:], lineno)
        elif lowered.startswith("imm:"):
            behavior_kind, operand = BehaviorKind.IMMEDIATE, \
                _int(token[4:], lineno)
        elif lowered.startswith("xor:"):
            behavior_kind, operand = BehaviorKind.XOR, _int(token[4:], lineno)
        elif lowered.startswith("flip:"):
            behavior_kind = BehaviorKind.FLIP
            bits = tuple(_int(b, lineno) for b in token[5:].split(","))
        elif lowered == "all0":
            behavior_kind = BehaviorKind.ALL_ZERO
        elif lowered == "all1":
            behavior_kind = BehaviorKind.ALL_ONE
        elif lowered.startswith("occ:"):
            occ_str = token[4:].lower()
            occ = PERMANENT if occ_str in ("permanent", "inf") \
                else _int(occ_str, lineno)
        elif lowered.startswith("threadid:"):
            thread_id = _int(token[9:], lineno)
        elif lowered.startswith("system.cpu"):
            cpu = token
        else:
            trailing.append(token)

    if time_mode is None or time_value is None:
        raise FaultParseError("missing Inst:/Tick: time attribute", lineno)
    if behavior_kind is None:
        raise FaultParseError(
            "missing behavior (Imm:/Xor:/Flip:/All0/All1)", lineno)
    if occ != PERMANENT and occ < 1:
        raise FaultParseError(f"occ must be >= 1, got {occ}", lineno)

    reg_index = 0
    operand_role = "src"
    operand_index = 0
    if head == "registerinjectedfault":
        if len(trailing) < 2 or trailing[0].lower() not in ("int", "fp"):
            raise FaultParseError(
                "register faults need trailing 'int N' or 'fp N'", lineno)
        location = (LocationKind.INT_REG if trailing[0].lower() == "int"
                    else LocationKind.FP_REG)
        reg_index = _int(trailing[1], lineno)
        if not 0 <= reg_index < 32:
            raise FaultParseError(
                f"register index {reg_index} outside [0,31]", lineno)
    elif location is LocationKind.DECODE and trailing:
        operand_role = trailing[0].lower()
        if operand_role not in ("src", "dst"):
            raise FaultParseError(
                f"decode operand role must be src/dst, got "
                f"'{trailing[0]}'", lineno)
        if len(trailing) > 1:
            operand_index = _int(trailing[1], lineno)

    behavior = Behavior(kind=behavior_kind, operand=operand, bits=bits,
                        occ=occ)
    return Fault(location=location, time_mode=time_mode, time=time_value,
                 behavior=behavior, thread_id=thread_id, cpu=cpu,
                 reg_index=reg_index, operand_role=operand_role,
                 operand_index=operand_index)


def render_fault_file(faults: list[Fault]) -> str:
    """Serialise faults back into input-file text (round-trips the
    parser; campaigns use this to materialise per-experiment configs)."""
    return "\n".join(fault.describe() for fault in faults) + "\n"


def _int(text: str, lineno: int | None) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise FaultParseError(f"bad integer '{text}'", lineno) from None
