"""Fault descriptions: *(Location, Thread, Time, Behavior)*.

Section III.A of the paper characterises every fault by four attributes:

* **Location** — the micro-architectural module to corrupt: a register
  (integer / floating-point / special), the fetched instruction word, the
  register-selection fields at the decode stage, the result of an
  instruction at the execute stage, the PC, or a memory transaction.
* **Thread** — the numeric id assigned by ``fi_activate_inst(id)``; only
  that thread observes the fault.
* **Time** — relative to the thread's fault-injection activation, counted
  either in committed instructions or in simulation ticks.
* **Behavior** — how the value at the location is corrupted, and for how
  many occurrences (transient, intermittent or permanent faults).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum


class LocationKind(Enum):
    """Where a fault strikes.  Each kind maps to one of the five internal
    per-stage queues of Section III.C (registers and the PC share the
    register-file queue)."""

    INT_REG = "int_reg"
    FP_REG = "fp_reg"
    PC = "pc"
    FETCH = "fetch"
    DECODE = "decode"
    EXECUTE = "execute"
    MEM = "mem"


class Stage(Enum):
    """The five internal fault queues (one per pipeline stage)."""

    FETCH = "fetch"
    DECODE = "decode"
    EXECUTE = "execute"
    MEM = "mem"
    REGFILE = "regfile"      # register-file and PC faults


STAGE_OF_KIND = {
    LocationKind.FETCH: Stage.FETCH,
    LocationKind.DECODE: Stage.DECODE,
    LocationKind.EXECUTE: Stage.EXECUTE,
    LocationKind.MEM: Stage.MEM,
    LocationKind.INT_REG: Stage.REGFILE,
    LocationKind.FP_REG: Stage.REGFILE,
    LocationKind.PC: Stage.REGFILE,
}


class TimeMode(Enum):
    """Fault timing reference (Section III.A.3)."""

    INSTRUCTIONS = "inst"
    TICKS = "tick"


class BehaviorKind(Enum):
    """Value-corruption behaviours (Section III.A.4)."""

    IMMEDIATE = "imm"     # assign a user-provided value
    XOR = "xor"           # XOR the running value with a constant
    FLIP = "flip"         # flip specific bit positions
    ALL_ZERO = "all0"     # set every bit to 0
    ALL_ONE = "all1"      # set every bit to 1


PERMANENT = math.inf


@dataclass(frozen=True)
class Behavior:
    """How the targeted value is corrupted and for how many occurrences."""

    kind: BehaviorKind
    operand: int = 0                  # immediate value / xor mask
    bits: tuple[int, ...] = ()        # bit positions for FLIP
    occ: float = 1                    # occurrences; PERMANENT = forever

    def apply(self, value: int, width: int = 64) -> int:
        """Corrupt *value* (an unsigned integer of *width* bits)."""
        mask = (1 << width) - 1
        if self.kind is BehaviorKind.IMMEDIATE:
            return self.operand & mask
        if self.kind is BehaviorKind.XOR:
            return (value ^ self.operand) & mask
        if self.kind is BehaviorKind.FLIP:
            for bit in self.bits:
                if bit < width:
                    value ^= 1 << bit
            return value & mask
        if self.kind is BehaviorKind.ALL_ZERO:
            return 0
        return mask  # ALL_ONE

    def describe(self) -> str:
        if self.kind is BehaviorKind.IMMEDIATE:
            return f"Imm:{self.operand:#x}"
        if self.kind is BehaviorKind.XOR:
            return f"Xor:{self.operand:#x}"
        if self.kind is BehaviorKind.FLIP:
            return "Flip:" + ",".join(str(b) for b in self.bits)
        return "All0" if self.kind is BehaviorKind.ALL_ZERO else "All1"


@dataclass(frozen=True)
class Fault:
    """A complete fault description (one line of the GemFI input file)."""

    location: LocationKind
    time_mode: TimeMode
    time: int
    behavior: Behavior
    thread_id: int = 0
    cpu: str = "system.cpu0"
    # Location details:
    reg_index: int = 0            # INT_REG / FP_REG register number
    operand_role: str = "src"     # DECODE: corrupt a "src" or "dst" selection
    operand_index: int = 0        # DECODE: which source/destination operand
    label: str = ""               # free-form tag kept in campaign results

    @property
    def stage(self) -> Stage:
        return STAGE_OF_KIND[self.location]

    def describe(self) -> str:
        """Render in (extended) Listing-1 input-file syntax."""
        head = {
            LocationKind.INT_REG: "RegisterInjectedFault",
            LocationKind.FP_REG: "RegisterInjectedFault",
            LocationKind.PC: "PCInjectedFault",
            LocationKind.FETCH: "FetchStageInjectedFault",
            LocationKind.DECODE: "DecodeStageInjectedFault",
            LocationKind.EXECUTE: "ExecutionStageInjectedFault",
            LocationKind.MEM: "MemoryInjectedFault",
        }[self.location]
        time_tok = ("Inst" if self.time_mode is TimeMode.INSTRUCTIONS
                    else "Tick") + f":{self.time}"
        occ = "occ:permanent" if self.behavior.occ == PERMANENT \
            else f"occ:{int(self.behavior.occ)}"
        parts = [head, time_tok, self.behavior.describe(),
                 f"Threadid:{self.thread_id}", self.cpu, occ]
        if self.location is LocationKind.INT_REG:
            parts += ["int", str(self.reg_index)]
        elif self.location is LocationKind.FP_REG:
            parts += ["fp", str(self.reg_index)]
        elif self.location is LocationKind.DECODE:
            parts += [self.operand_role, str(self.operand_index)]
        return " ".join(parts)


@dataclass
class InjectionRecord:
    """Postmortem log entry emitted when a fault actually fires
    (Section IV.B.1: "we print information on the affected assembly
    instruction")."""

    fault: Fault
    tick: int
    instruction_count: int
    pc: int
    asm: str
    detail: str = ""
    before: int | None = None
    after: int | None = None
    # Did the corrupted value architecturally propagate?  True once a
    # corrupted register is read (or a changed instruction semantic
    # executes); False when it is overwritten first, lands in unused
    # encoding bits, or is never consumed.  None = undetermined at
    # program end (treated as not propagated, like the paper's dead
    # register example).
    propagated: bool | None = None
    # Tick at which the propagated/masked verdict was reached: equal to
    # ``tick`` for stages that resolve at injection time, later for
    # register faults whose watch resolves on first read/overwrite.
    # ``resolved_tick - tick`` is the injection-to-first-divergence
    # latency dumped by repro.sim.stats.
    resolved_tick: int | None = None

    def as_dict(self) -> dict:
        return {
            "fault": self.fault.describe(),
            "tick": self.tick,
            "instruction_count": self.instruction_count,
            "pc": self.pc,
            "asm": self.asm,
            "detail": self.detail,
            "before": self.before,
            "after": self.after,
            "propagated": self.propagated,
            "resolved_tick": self.resolved_tick,
        }
