"""The five per-stage fault queues (Section III.C).

The input file is parsed at startup and every fault is inserted into the
queue of its pipeline stage, sorted by trigger time.  On each simulated
instruction GemFI scans only the queue of the stage being served, so the
common case (no fault due) is a cheap emptiness/threshold check.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fault import Fault, PERMANENT, Stage, TimeMode
from .thread_state import ThreadEnabledFault


@dataclass
class ActiveFault:
    """A fault that has triggered and remains live for its ``occ`` span."""

    fault: Fault
    remaining: float          # occurrences left (PERMANENT = forever)
    expiry_tick: float = PERMANENT   # for tick-scoped occurrences

    def consume(self) -> None:
        if self.remaining != PERMANENT:
            self.remaining -= 1

    @property
    def exhausted(self) -> bool:
        return self.remaining != PERMANENT and self.remaining <= 0


class StageQueue:
    """Pending + active faults for one pipeline stage."""

    def __init__(self, stage: Stage) -> None:
        self.stage = stage
        self.pending: list[Fault] = []
        self.active: list[ActiveFault] = []

    def insert(self, fault: Fault) -> None:
        self.pending.append(fault)
        self.pending.sort(key=lambda f: f.time)

    @property
    def empty(self) -> bool:
        return not self.pending and not self.active

    def due(self, thread: ThreadEnabledFault, count: int,
            now: int, core_name: str) -> list[ActiveFault]:
        """Move newly-triggered faults to the active set and return every
        fault that applies to this instruction of *thread*."""
        if self.pending:
            still_pending: list[Fault] = []
            for fault in self.pending:
                if not self._matches_thread(fault, thread, core_name):
                    still_pending.append(fault)
                    continue
                t = (count if fault.time_mode is TimeMode.INSTRUCTIONS
                     else thread.elapsed_ticks(now))
                if t >= fault.time:
                    expiry = PERMANENT
                    if fault.time_mode is TimeMode.TICKS \
                            and fault.behavior.occ != PERMANENT:
                        expiry = fault.time + fault.behavior.occ + \
                            thread.activation_tick
                    remaining = (fault.behavior.occ
                                 if fault.time_mode is TimeMode.INSTRUCTIONS
                                 else PERMANENT)
                    self.active.append(ActiveFault(
                        fault, remaining=remaining, expiry_tick=expiry))
                else:
                    still_pending.append(fault)
            self.pending = still_pending

        if not self.active:
            return []
        live: list[ActiveFault] = []
        hits: list[ActiveFault] = []
        for entry in self.active:
            if entry.expiry_tick != PERMANENT and now >= entry.expiry_tick:
                continue
            if not self._matches_thread(entry.fault, thread, core_name):
                live.append(entry)
                continue
            hits.append(entry)
            entry.consume()
            if not entry.exhausted:
                live.append(entry)
        self.active = live
        return hits

    @staticmethod
    def _matches_thread(fault: Fault, thread: ThreadEnabledFault,
                        core_name: str) -> bool:
        if fault.thread_id != thread.thread_id:
            return False
        return fault.cpu in ("any", core_name)


class FaultQueues:
    """All five stage queues plus bulk load/reset."""

    def __init__(self, faults: list[Fault] | None = None) -> None:
        self.queues = {stage: StageQueue(stage) for stage in Stage}
        self._initial: list[Fault] = []
        if faults:
            self.load(faults)

    def load(self, faults: list[Fault]) -> None:
        self._initial = list(faults)
        for fault in faults:
            self.queues[fault.stage].insert(fault)

    def reset(self) -> None:
        """Re-arm every fault from the originally-loaded list — invoked
        when restoring a checkpoint (``fi_read_init_all`` semantics)."""
        self.queues = {stage: StageQueue(stage) for stage in Stage}
        for fault in self._initial:
            self.queues[fault.stage].insert(fault)

    def queue(self, stage: Stage) -> StageQueue:
        return self.queues[stage]

    @property
    def all_exhausted(self) -> bool:
        """True when no fault can ever fire again — the simulator may
        switch from the detailed CPU model to atomic mode (Section
        IV.B.1)."""
        return all(q.empty for q in self.queues.values())

    def pending_count(self) -> int:
        return sum(len(q.pending) for q in self.queues.values())
