"""GemFI core: the paper's contribution — configurable fault injection."""

from .fault import (
    Behavior,
    BehaviorKind,
    Fault,
    InjectionRecord,
    LocationKind,
    PERMANENT,
    Stage,
    TimeMode,
)
from .injector import FaultInjector
from .parser import FaultParseError, parse_fault_file, parse_fault_line, \
    render_fault_file
from .queues import ActiveFault, FaultQueues, StageQueue
from .thread_state import ThreadEnabledFault, ThreadTable

__all__ = [
    "ActiveFault", "Behavior", "BehaviorKind", "Fault", "FaultInjector",
    "FaultParseError", "FaultQueues", "InjectionRecord", "LocationKind",
    "PERMANENT", "Stage", "StageQueue", "ThreadEnabledFault",
    "ThreadTable", "TimeMode", "parse_fault_file", "parse_fault_line",
    "render_fault_file",
]
