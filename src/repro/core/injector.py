"""The GemFI fault-injection engine (Fig. 2 of the paper).

A :class:`FaultInjector` is attached to the simulated system.  CPU models
call its hooks at each pipeline stage of every instruction *of threads
that activated fault injection*; the injector counts the thread's
progress, scans the per-stage fault queues and corrupts the in-flight
value when a fault is due.  Register-file and PC faults are applied at
instruction boundaries directly to the architectural state.

Cores where the running thread has not activated FI carry a ``None``
thread pointer and skip the hooks entirely — the mechanism that keeps
GemFI's overhead within a few percent of unmodified gem5 (Fig. 7).
"""

from __future__ import annotations

import time

from ..isa import disasm
from ..isa.instructions import Decoded, decode as _decode_word
from ..isa.traps import IllegalInstruction
from .fault import Fault, InjectionRecord, LocationKind, Stage
from .parser import parse_fault_file
from .queues import FaultQueues
from .thread_state import ThreadEnabledFault, ThreadTable


def same_semantics(before: int, after: int) -> bool:
    """True when two instruction words decode to identical semantics —
    i.e. a fetch-stage flip landed in architecturally unused bits
    (Section IV.B.2: "experiments affecting unused bits always resulted
    into strict correct results").  Also used by the liveness analysis
    (``repro.analysis``) to pre-classify fetch-stage fault sites."""
    if before == after:
        return True
    try:
        d1 = _decode_word(before)
        d2 = _decode_word(after)
    except IllegalInstruction:
        return False
    return (d1.name == d2.name and d1.kind == d2.kind and d1.ra == d2.ra
            and d1.rb == d2.rb and d1.rc == d2.rc and d1.lit == d2.lit
            and d1.disp == d2.disp and d1.func == d2.func)


class FaultInjector:
    """Per-system fault-injection state machine."""

    def __init__(self, faults: list[Fault] | None = None,
                 clock=None) -> None:
        self.queues = FaultQueues(list(faults) if faults else [])
        self.threads = ThreadTable()
        # Per-stage hot flags: hooks are only invoked for stages that
        # still have pending/active faults, so a GemFI run with no
        # faults configured pays almost nothing per instruction
        # (the Fig. 7 minimal-overhead property).
        self.hot_fetch = False
        self.hot_decode = False
        self.hot_execute = False
        self.hot_mem = False
        self.hot_regfile = False
        self.frontend_hot = False
        self.records: list[InjectionRecord] = []
        self.clock = clock or (lambda: 0)
        # Optional def-use trace recorder (repro.analysis): one boolean
        # test per committed instruction when absent, mirroring the
        # per-stage hot flags.
        self.tracer = None
        self.trace_hot = False
        # Optional structured trace bus (repro.telemetry).  None means
        # telemetry off; the hooks below only test the pointer on the
        # rare events (injection, window toggles), never per
        # instruction, preserving the Fig. 7 overhead property.
        self.bus = None
        # Completed fi_activate..fi_activate windows, recorded on
        # deactivation; campaigns profile these to learn how many
        # instructions the region of interest executes.
        self.windows: list[dict] = []
        # Register-fault propagation watches: (cls, idx) -> record.
        self._watches: dict[tuple[str, int], object] = {}
        self.has_watches = False
        # Set when a fi_read_init_all pseudo-instruction retires; the
        # simulator turns it into a checkpoint request.
        self.checkpoint_requested = False
        # Host-clock stamps of the first/last injection, taken inside
        # _record (a per-experiment-rare event, so no hot-path cost).
        # Campaigns split wall_seconds into boot/window/injection/drain
        # phases around them.
        self.first_injection_host: float | None = None
        self.last_injection_host: float | None = None
        self.refresh_hot_flags()

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_file(cls, path, clock=None) -> "FaultInjector":
        with open(path, "r", encoding="utf-8") as handle:
            faults = parse_fault_file(handle.read())
        return cls(faults, clock=clock)

    @classmethod
    def from_text(cls, text: str, clock=None) -> "FaultInjector":
        return cls(parse_fault_file(text), clock=clock)

    def refresh_hot_flags(self) -> None:
        """Recompute the per-stage fast-path flags."""
        queues = self.queues.queues
        self.hot_fetch = not queues[Stage.FETCH].empty
        self.hot_decode = not queues[Stage.DECODE].empty
        self.hot_execute = not queues[Stage.EXECUTE].empty
        self.hot_mem = not queues[Stage.MEM].empty
        self.hot_regfile = not queues[Stage.REGFILE].empty
        self.frontend_hot = (self.hot_fetch or self.hot_decode
                             or self.has_watches)

    def reset(self) -> None:
        """Forget all dynamic state and re-arm every configured fault.

        Invoked on checkpoint restore: the same checkpoint then serves as
        the starting point for experiments with different fault configs
        (``fi_read_init_all`` semantics, Section III.A).
        """
        self.queues.reset()
        self.threads.clear()
        self.records.clear()
        self.windows.clear()
        self._watches.clear()
        self.has_watches = False
        self.checkpoint_requested = False
        self.first_injection_host = None
        self.last_injection_host = None
        self.refresh_hot_flags()

    def load_faults(self, faults: list[Fault]) -> None:
        """Replace the configured fault list (campaign restores use this
        right after :meth:`reset` to install the next experiment)."""
        self.queues = FaultQueues(list(faults))
        self.refresh_hot_flags()
        if self.bus is not None:
            for fault in faults:
                self.bus.emit("fault_armed", fault=fault.describe())

    # -- def-use trace recording (repro.analysis) -------------------------------

    def install_tracer(self, tracer) -> None:
        """Attach a commit-time tracer: a
        :class:`repro.analysis.DefUseTracer` or one of the flight-
        recorder hooks (:class:`repro.telemetry.flight.FlightRecorder` /
        :class:`~repro.telemetry.flight.DivergenceScanner`).  Recording
        starts at the first committed instruction of an FI-active thread
        (the activating ``fi_activate_inst``) and runs to program end."""
        self.tracer = tracer
        self.trace_hot = True

    def on_trace(self, core, pc: int, decoded, result) -> None:
        """Commit-time trace hook (invoked only while ``trace_hot``)."""
        tracer = self.tracer
        thread = core.fi_thread
        if not tracer.started:
            if thread is None:
                return
            tracer.capture_initial(core)
            tracer.started = True
        window_index = None
        if thread is not None:
            window_index = thread.effective_committed(core.committed)
            if window_index <= 0:   # the activating fi_activate itself
                window_index = None
        tracer.record(window_index, pc, decoded, result, core)

    # -- activation and thread tracking ---------------------------------------

    def handle_fi_activate(self, core, thread_id: int) -> bool:
        """``fi_activate_inst(id)`` retired on *core*: toggle FI for the
        running thread (identified by its PCB address).  Returns True if
        the thread is now active."""
        existing = self.threads.lookup(core.pcb_addr)
        thread = self.threads.toggle(core.pcb_addr, thread_id,
                                     self.clock())
        core.fi_thread = thread
        if thread is not None:
            # +1 excludes the fi_activate_inst instruction itself, which
            # commits right after this handler runs.
            thread.base_committed = core.committed + 1
            if self.bus is not None:
                self.bus.emit("fi_window_open", thread_id=thread_id)
        elif existing is not None:
            existing.settle(core.committed)
            window = {
                "thread_id": existing.thread_id,
                "committed": existing.committed,
                "ticks": self.clock() - existing.activation_tick,
                "stage_counts": {s.value: c for s, c
                                 in existing.stage_counts.items()},
            }
            self.windows.append(window)
            if self.bus is not None:
                self.bus.emit("fi_window_close",
                              thread_id=existing.thread_id,
                              committed=window["committed"],
                              ticks=window["ticks"])
        return thread is not None

    def handle_fi_read_init(self, core) -> None:
        """``fi_read_init_all()`` retired: request a checkpoint."""
        self.checkpoint_requested = True

    def on_context_switch(self, core, pcb_addr: int) -> None:
        """The kernel switched threads on *core*: refresh the core's
        ThreadEnabledFault pointer so the per-instruction path does not
        need a hash lookup (Section III.C), and settle the outgoing
        thread's lazily-accumulated instruction count."""
        outgoing = core.fi_thread
        if outgoing is not None:
            outgoing.settle(core.committed)
        if self.tracer is not None and self.tracer.started:
            # Register state swaps under the trace's feet: pruning
            # verdicts over a multithreaded window would be unsound.
            self.tracer.context_switches += 1
        incoming = self.threads.lookup(pcb_addr)
        if incoming is not None:
            incoming.base_committed = core.committed
        core.fi_thread = incoming

    # -- per-stage hooks --------------------------------------------------------

    def on_fetch(self, core, thread: ThreadEnabledFault, pc: int,
                 word: int) -> int:
        thread.bump(Stage.FETCH)
        count = thread.effective_committed(core.committed) + 1
        queue = self.queues.queue(Stage.FETCH)
        for hit in queue.due(thread, count, self.clock(), core.name):
            before = word
            word = hit.fault.behavior.apply(word, width=32)
            record = self._record(
                hit.fault, pc, count, before, word,
                asm=disasm.disassemble_word(before, pc),
                detail="fetched instruction word")
            record.propagated = not same_semantics(before, word)
            self._resolve(record)
        if queue.empty:
            self.hot_fetch = False
            self.frontend_hot = (self.hot_decode or self.has_watches)
        return word

    def on_decode(self, core, thread: ThreadEnabledFault, pc: int,
                  decoded: Decoded) -> Decoded:
        thread.bump(Stage.DECODE)
        count = thread.effective_committed(core.committed) + 1
        queue = self.queues.queue(Stage.DECODE)
        for hit in queue.due(thread, count, self.clock(), core.name):
            fault = hit.fault
            fields = (decoded.src_reg_fields()
                      if fault.operand_role == "src"
                      else decoded.dest_reg_fields())
            if not fields:
                self._record(fault, pc, count, None, None,
                             asm=disasm.disassemble(decoded, pc),
                             detail="no register selection at this "
                                    "instruction; fault had no effect")
                continue
            attr = fields[fault.operand_index % len(fields)]
            before = getattr(decoded, attr)
            after = fault.behavior.apply(before, width=5)
            decoded = decoded.copy()
            setattr(decoded, attr, after)
            record = self._record(
                fault, pc, count, before, after,
                asm=disasm.disassemble(decoded, pc),
                detail=f"decode {fault.operand_role} selection "
                       f"'{attr}' {before} -> {after}")
            record.propagated = before != after
            self._resolve(record)
        if queue.empty:
            self.hot_decode = False
            self.frontend_hot = (self.hot_fetch or self.has_watches)
        return decoded

    def on_execute(self, core, thread: ThreadEnabledFault, pc: int,
                   decoded: Decoded, result: int, width: int = 64) -> int:
        thread.bump(Stage.EXECUTE)
        count = thread.effective_committed(core.committed) + 1
        queue = self.queues.queue(Stage.EXECUTE)
        for hit in queue.due(thread, count, self.clock(), core.name):
            before = result
            result = hit.fault.behavior.apply(result, width=width)
            what = ("effective address" if decoded.is_mem()
                    else "execution result")
            record = self._record(hit.fault, pc, count, before, result,
                                  asm=disasm.disassemble(decoded, pc),
                                  detail=what)
            record.propagated = before != result
            self._resolve(record)
        if queue.empty:
            self.hot_execute = False
        return result

    def on_mem(self, core, thread: ThreadEnabledFault, pc: int,
               decoded: Decoded, value: int, is_load: bool,
               width: int = 64) -> int:
        thread.bump(Stage.MEM)
        count = thread.effective_committed(core.committed) + 1
        queue = self.queues.queue(Stage.MEM)
        for hit in queue.due(thread, count, self.clock(), core.name):
            before = value
            value = hit.fault.behavior.apply(value, width=width)
            record = self._record(hit.fault, pc, count, before, value,
                                  asm=disasm.disassemble(decoded, pc),
                                  detail="loaded value" if is_load
                                         else "stored value")
            record.propagated = before != value
            self._resolve(record)
        if queue.empty:
            self.hot_mem = False
        return value

    def on_commit(self, core, thread: ThreadEnabledFault, pc: int) -> bool:
        """Instruction boundary (invoked only while register-file/PC
        faults are hot): apply due faults directly to the architectural
        state.  Returns True when the PC was corrupted (pipelined models
        must re-steer/squash)."""
        thread.bump(Stage.REGFILE)
        count = thread.effective_committed(core.committed)
        queue = self.queues.queue(Stage.REGFILE)
        if queue.empty:
            self.hot_regfile = False
            return False
        pc_changed = False
        for hit in queue.due(thread, count, self.clock(), core.name):
            fault = hit.fault
            arch = core.arch
            if fault.location is LocationKind.INT_REG:
                before = arch.intregs.peek(fault.reg_index)
                after = fault.behavior.apply(before)
                arch.intregs.poke(fault.reg_index, after)
                detail = f"int register r{fault.reg_index}"
            elif fault.location is LocationKind.FP_REG:
                before = arch.fpregs.peek(fault.reg_index)
                after = fault.behavior.apply(before)
                arch.fpregs.poke(fault.reg_index, after)
                detail = f"fp register f{fault.reg_index}"
            else:  # PC
                before = arch.pc
                after = fault.behavior.apply(before)
                arch.pc = after
                detail = "program counter"
                pc_changed = True
            record = self._record(fault, pc, count, before, after,
                                  asm="", detail=detail)
            if fault.location is LocationKind.PC:
                record.propagated = True
                self._resolve(record)
            elif before == after:
                record.propagated = False
                self._resolve(record)
            else:
                cls = ("int" if fault.location is LocationKind.INT_REG
                       else "fp")
                self._watches[(cls, fault.reg_index)] = record
                self.has_watches = True
                self.frontend_hot = True
        return pc_changed

    # -- campaign conveniences ---------------------------------------------------

    @property
    def injection_happened(self) -> bool:
        return bool(self.records)

    @property
    def all_faults_done(self) -> bool:
        """True once every configured fault has fired and expired — the
        signal to switch from the detailed to the atomic CPU model."""
        return self.queues.all_exhausted

    def observe(self, decoded: Decoded) -> None:
        """Propagation tracking: called (only while watches are live)
        for each architecturally-executed instruction.  A corrupted
        register that is *read* propagated; one that is overwritten
        first did not (the paper's non-propagated class)."""
        for key in list(self._watches):
            record = self._watches[key]
            if key in decoded.src_regs():
                record.propagated = True
            elif key in decoded.dest_regs():
                record.propagated = False
            else:
                continue
            self._resolve(record)
            del self._watches[key]
        self.has_watches = bool(self._watches)
        if not self.has_watches:
            self.frontend_hot = self.hot_fetch or self.hot_decode

    def _record(self, fault: Fault, pc: int, count: int,
                before: int | None, after: int | None, asm: str,
                detail: str) -> InjectionRecord:
        record = InjectionRecord(
            fault=fault, tick=self.clock(), instruction_count=count,
            pc=pc, asm=asm, detail=detail, before=before, after=after)
        self.records.append(record)
        now = time.perf_counter()
        if self.first_injection_host is None:
            self.first_injection_host = now
        self.last_injection_host = now
        if self.bus is not None:
            self.bus.emit(
                "fault_injected", tick=record.tick,
                fault=fault.describe(), pc=pc, detail=detail,
                instruction_count=count, before=before, after=after)
        return record

    def _resolve(self, record: InjectionRecord) -> None:
        """A record's propagated/masked verdict just became known:
        stamp the divergence-resolution tick and publish the event."""
        record.resolved_tick = self.clock()
        if self.bus is not None:
            self.bus.emit(
                "fault_propagated" if record.propagated
                else "fault_masked",
                fault=record.fault.describe(), pc=record.pc,
                injected_tick=record.tick)
