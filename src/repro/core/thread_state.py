"""Per-thread fault-injection state (Section III.C).

Threads that have enabled fault injection are represented by
:class:`ThreadEnabledFault` instances, held in a hash table keyed by the
thread's Process Control Block (PCB) address — the hardware-level thread
identity.  Each core carries a pointer to the object of the thread it is
currently running (``None`` when that thread has not activated fault
injection); the pointer is refreshed on context switches so the hot path
never performs a hash lookup per simulated instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .fault import Stage


@dataclass
class ThreadEnabledFault:
    """All per-thread information needed for fault injection."""

    thread_id: int
    pcb_addr: int
    activation_tick: int = 0
    # Instructions committed by this thread while FI was active.  To keep
    # the per-instruction fast path free of bookkeeping, the count is
    # accumulated lazily: ``committed`` holds the total up to the last
    # context switch and ``base_committed`` the core's global committed
    # counter at switch-in; the live value is
    # ``committed + core.committed - base_committed``.
    committed: int = 0
    base_committed: int = 0
    stage_counts: dict[Stage, int] = field(
        default_factory=lambda: {stage: 0 for stage in Stage})

    def effective_committed(self, core_committed: int) -> int:
        return self.committed + core_committed - self.base_committed

    def settle(self, core_committed: int) -> None:
        """Fold the pending span into ``committed`` (switch-out /
        deactivation)."""
        self.committed += core_committed - self.base_committed
        self.base_committed = core_committed

    def count_for(self, stage: Stage) -> int:
        return self.stage_counts[stage]

    def bump(self, stage: Stage) -> int:
        value = self.stage_counts[stage] + 1
        self.stage_counts[stage] = value
        return value

    def elapsed_ticks(self, now: int) -> int:
        return now - self.activation_tick


class ThreadTable:
    """The PCB-address → ThreadEnabledFault hash table.

    ``fi_activate_inst`` *toggles* activation: the first call for a PCB
    creates an entry, the second destroys it (Section III.C).
    """

    def __init__(self) -> None:
        self._by_pcb: dict[int, ThreadEnabledFault] = {}

    def toggle(self, pcb_addr: int, thread_id: int,
               now: int) -> ThreadEnabledFault | None:
        """Activate or deactivate FI for the thread with this PCB.

        Returns the (new) ThreadEnabledFault on activation, or None on
        deactivation.
        """
        existing = self._by_pcb.pop(pcb_addr, None)
        if existing is not None:
            return None
        thread = ThreadEnabledFault(thread_id=thread_id, pcb_addr=pcb_addr,
                                    activation_tick=now)
        self._by_pcb[pcb_addr] = thread
        return thread

    def lookup(self, pcb_addr: int) -> ThreadEnabledFault | None:
        return self._by_pcb.get(pcb_addr)

    def active_threads(self) -> list[ThreadEnabledFault]:
        return list(self._by_pcb.values())

    def clear(self) -> None:
        self._by_pcb.clear()

    def __len__(self) -> int:
        return len(self._by_pcb)

    def __contains__(self, pcb_addr: int) -> bool:
        return pcb_addr in self._by_pcb
