"""Fault-site liveness analysis and campaign pruning.

The pipeline (docs/analysis.md):

1. :class:`DefUseTracer` records per-commit register/memory def-use
   events during a replay of the golden run (hooked into the CPU models
   via ``FaultInjector.install_tracer``; the no-trace path stays
   zero-overhead behind the ``trace_hot`` flag).
2. :class:`LivenessAnalysis` classifies candidate ``(location, time,
   bit)`` SEU sites as provably masked or live.
3. :func:`build_classes` collapses live sites that share their
   first-use instruction into weighted equivalence classes.
4. ``campaign.generator.PrunedGenerator`` plans a campaign that runs
   only class representatives and predicts masked outcomes for free;
   ``campaign.results.expand_pruned`` re-expands to the unpruned
   estimator.
"""

from .equivalence import SiteClass, build_classes
from .propagation import PropagationGraph, build_propagation_graph
from .liveness import (
    LIVE,
    MASK_REASONS,
    MASKED_BIT_OUT_OF_RANGE,
    MASKED_DEAD_DESTINATION,
    MASKED_DEAD_REGISTER,
    MASKED_DEAD_RESULT,
    MASKED_DISCARDED_WRITE,
    MASKED_EQUAL_VALUE_SOURCE,
    MASKED_NEVER_TRIGGERS,
    MASKED_NO_OPERAND_FIELDS,
    MASKED_OVERWRITTEN_REGISTER,
    MASKED_OVERWRITTEN_RESULT,
    MASKED_OVERWRITTEN_STORE,
    MASKED_UNUSED_ENCODING_BITS,
    MASKED_ZERO_REGISTER,
    LivenessAnalysis,
    SiteVerdict,
)
from .trace import DefUseTracer, TraceEvent

# .coverage lazily imports campaign.generator (which itself imports
# .equivalence above at module scope) — keep it last so the partially
# initialised package never bites.
from .coverage import (
    ConvergenceTracker,
    CoverageCell,
    FaultSpaceMap,
    coverage_from_share,
    coverage_gauges,
    coverage_summary,
    render_coverage_markdown,
    render_coverage_svg,
    render_coverage_tables,
    render_heatmap_table,
)

# .diff builds on .coverage (heatmap rollups) and campaign.sampling
# (Wilson/Kish machinery) — same ordering caveat as above.
from .diff import (
    CampaignDiff,
    CampaignSummary,
    compare_gauges,
    newcombe_interval,
    proportions_differ,
    render_diff_markdown,
    render_diff_svg,
    render_diff_text,
)

__all__ = [
    "CampaignDiff", "CampaignSummary", "compare_gauges",
    "newcombe_interval", "proportions_differ",
    "render_diff_markdown", "render_diff_svg", "render_diff_text",
    "ConvergenceTracker", "CoverageCell", "FaultSpaceMap",
    "coverage_from_share", "coverage_gauges", "coverage_summary",
    "render_coverage_markdown", "render_coverage_svg",
    "render_coverage_tables", "render_heatmap_table",
    "DefUseTracer", "LIVE", "LivenessAnalysis", "MASK_REASONS",
    "MASKED_BIT_OUT_OF_RANGE", "MASKED_DEAD_DESTINATION",
    "MASKED_DEAD_REGISTER", "MASKED_DEAD_RESULT",
    "MASKED_DISCARDED_WRITE", "MASKED_EQUAL_VALUE_SOURCE",
    "MASKED_NEVER_TRIGGERS",
    "MASKED_NO_OPERAND_FIELDS", "MASKED_OVERWRITTEN_REGISTER",
    "MASKED_OVERWRITTEN_RESULT", "MASKED_OVERWRITTEN_STORE",
    "MASKED_UNUSED_ENCODING_BITS", "MASKED_ZERO_REGISTER",
    "PropagationGraph", "SiteClass", "SiteVerdict", "TraceEvent",
    "build_classes", "build_propagation_graph",
]
