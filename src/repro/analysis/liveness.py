"""Fault-site liveness analysis over a def-use trace.

Given the golden run's :class:`~repro.analysis.trace.DefUseTracer`
output, :class:`LivenessAnalysis` classifies any candidate SEU fault
site ``(location, time, bit)`` as **provably masked** or **live**.  A
site is provably masked only when the trace shows the corrupted value
can never reach an architecturally observable output:

* ``never_triggers`` — the fault's time lies beyond the last eligible
  pipeline transaction of its stage queue, so it never fires at all.
* ``zero_register`` — R31/F31 storage: ``read()`` always returns zero,
  so a poked bit is invisible (the flip still *fires* and is watched,
  which decides the predicted propagated flag).
* ``dead_register`` / ``overwritten_register`` — the struck register is
  never accessed again, or its next access is a write (the paper's
  Section IV.B.2 dead-register discussion).
* ``unused_encoding_bits`` — a fetch-stage flip in bits the Table I
  format ignores: both words decode to identical semantics.
* ``no_operand_fields`` — a decode-stage fault at an instruction with no
  register-selection field for the requested role (the injector logs the
  hit and drops it).
* ``dead_destination`` — a decode-stage *dst* flip that redirects a
  write between two registers that are both dead or overwritten before
  their next read.
* ``bit_out_of_range`` — the flipped bit exceeds the corrupted value's
  width (``Behavior.apply`` skips it; e.g. bit 40 of a 4-byte store).
* ``discarded_write`` / ``dead_result`` / ``overwritten_result`` — an
  execute- or load-value corruption whose destination register is R31,
  never read again, or overwritten first.
* ``overwritten_store`` — a corrupted store byte rewritten by a later
  store before any load or syscall can observe it.
* ``equal_value_source`` — a fetch/decode flip that redirects one
  *source* register selection to a register holding the **same value**
  at that instruction (the trace records post-commit write values plus
  the initial register files, so both operands' values are known):
  execution is bit-identical downstream.

Everything else is LIVE, and live sites carry an *equivalence key*: two
sites whose corrupted value first meets the same dynamic instruction
with the same bit flipped produce bit-identical downstream state, so a
campaign only needs to run one representative per key (see
``equivalence.py``).

Soundness notes: the analysis refuses to prune (classifies everything
LIVE) when the trace is tainted — context switches or overflow — and
predictions for FETCH/DECODE sites assume the in-order frontends (the
campaign default); the O3 frontend fetches along speculative paths with
different stage counts.  The final ``exit`` syscall never commits (the
process unwinds mid-execute), so an implicit exit barrier that reads
``v0``/``a0`` is appended at trace end — a corrupted register feeding
the exit code is correctly LIVE (the dispatcher's unconditional
``a1``/``a2`` loads are discarded by exit, so they are not part of the
barrier).  Memory that is never accessed again is *not* dead: final
memory is where campaign outputs are extracted from.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from ..core.fault import BehaviorKind, Fault, LocationKind, TimeMode
from ..core.injector import same_semantics
from ..isa.instructions import (
    KIND_FLOAD,
    KIND_FSTORE,
    KIND_LOAD,
    KIND_STORE,
    decode as decode_word,
)
from ..isa.traps import IllegalInstruction
from .trace import DefUseTracer, EXIT_REG_READS

LIVE = "live"
MASKED_NEVER_TRIGGERS = "never_triggers"
MASKED_ZERO_REGISTER = "zero_register"
MASKED_DEAD_REGISTER = "dead_register"
MASKED_OVERWRITTEN_REGISTER = "overwritten_register"
MASKED_UNUSED_ENCODING_BITS = "unused_encoding_bits"
MASKED_NO_OPERAND_FIELDS = "no_operand_fields"
MASKED_DEAD_DESTINATION = "dead_destination"
MASKED_BIT_OUT_OF_RANGE = "bit_out_of_range"
MASKED_DISCARDED_WRITE = "discarded_write"
MASKED_DEAD_RESULT = "dead_result"
MASKED_OVERWRITTEN_RESULT = "overwritten_result"
MASKED_OVERWRITTEN_STORE = "overwritten_store"
MASKED_EQUAL_VALUE_SOURCE = "equal_value_source"

MASK_REASONS = (
    MASKED_NEVER_TRIGGERS, MASKED_ZERO_REGISTER, MASKED_DEAD_REGISTER,
    MASKED_OVERWRITTEN_REGISTER, MASKED_UNUSED_ENCODING_BITS,
    MASKED_NO_OPERAND_FIELDS, MASKED_DEAD_DESTINATION,
    MASKED_BIT_OUT_OF_RANGE, MASKED_DISCARDED_WRITE, MASKED_DEAD_RESULT,
    MASKED_OVERWRITTEN_RESULT, MASKED_OVERWRITTEN_STORE,
    MASKED_EQUAL_VALUE_SOURCE,
)

# Kinds whose execute stage invokes on_execute (result or effective
# address corruption) and whose mem stage invokes on_mem.
from ..isa.instructions import (  # noqa: E402  (grouped for readability)
    KIND_ALU, KIND_CMOV, KIND_FCMOV, KIND_FPALU, KIND_FTOI, KIND_ITOF,
    KIND_LDA,
)

MEM_KINDS = frozenset((KIND_LOAD, KIND_STORE, KIND_FLOAD, KIND_FSTORE))
EXECUTE_KINDS = frozenset((KIND_ALU, KIND_CMOV, KIND_FPALU, KIND_FCMOV,
                           KIND_ITOF, KIND_FTOI, KIND_LDA)) | MEM_KINDS

_READ = 1
_WRITE = 2


@dataclass(frozen=True)
class SiteVerdict:
    """Classification of one candidate fault site."""

    masked: bool
    reason: str                    # LIVE or one of MASK_REASONS
    propagated: bool = False       # predicted InjectionRecord.propagated
    injected: bool = True          # predicted "the fault actually fired"
    class_key: tuple | None = None  # equivalence key for LIVE sites

    @property
    def live(self) -> bool:
        return not self.masked


class LivenessAnalysis:
    """Index a def-use trace for O(log n) per-site classification."""

    def __init__(self, trace: DefUseTracer) -> None:
        self.trace = trace
        self.events = trace.events
        self.tainted = trace.tainted
        # window[k-1] = trace index of the k-th FI-window instruction.
        self._window: list[int] = []
        # Per-register access streams: (cls, reg) -> sorted trace
        # indices + parallel read/write bitmask codes.
        self._reg_gidx: dict[tuple[str, int], list[int]] = {}
        self._reg_code: dict[tuple[str, int], list[int]] = {}
        # Window positions (and trace indices) of stage-eligible events.
        self._exec_widx: list[int] = []
        self._exec_gidx: list[int] = []
        self._mem_widx: list[int] = []
        self._mem_gidx: list[int] = []
        # Whole-trace memory transaction stream for store-byte scans.
        self._mem_scan: list[tuple[int, int, int, bool, bool]] = []
        self._mem_scan_gidx: list[int] = []
        # Per-register value timelines (post-commit write samples) for
        # the equal-value source rule; disabled when the trace carries
        # no values (events recorded without a core).
        self._val_gidx: dict[tuple[str, int], list[int]] = {}
        self._val: dict[tuple[str, int], list[int]] = {}
        self._values_ok = trace.initial_regs is not None
        self._build()

    # -- index construction ----------------------------------------------------

    def _build(self) -> None:
        expected = 1
        for gidx, event in enumerate(self.events):
            widx = event.window_index
            if widx is not None:
                if widx != expected:
                    # Second window / reordered indices: refuse to prune.
                    self.tainted = True
                    return
                expected += 1
                self._window.append(gidx)
                if event.kind in EXECUTE_KINDS:
                    self._exec_widx.append(widx)
                    self._exec_gidx.append(gidx)
                if event.kind in MEM_KINDS:
                    self._mem_widx.append(widx)
                    self._mem_gidx.append(gidx)
            codes: dict[tuple[str, int], int] = {}
            for key in event.reads:
                codes[key] = codes.get(key, 0) | _READ
            for key in event.writes:
                codes[key] = codes.get(key, 0) | _WRITE
            for key, code in codes.items():
                self._reg_gidx.setdefault(key, []).append(gidx)
                self._reg_code.setdefault(key, []).append(code)
            if event.writes:
                if len(event.write_values) == len(event.writes):
                    for key, value in zip(event.writes,
                                          event.write_values):
                        self._val_gidx.setdefault(key, []).append(gidx)
                        self._val.setdefault(key, []).append(value)
                else:
                    self._values_ok = False
            if event.is_syscall or event.mem_addr is not None:
                addr = event.mem_addr if event.mem_addr is not None else 0
                self._mem_scan.append((gidx, addr, event.mem_size,
                                       event.is_load, event.is_syscall))
                self._mem_scan_gidx.append(gidx)
        # Implicit exit barrier: the final exit() syscall unwinds the
        # instruction before it can commit, so its register reads (v0
        # selects the syscall, a0 is the exit code; a1/a2 are loaded by
        # the dispatcher but discarded) are appended synthetically at
        # trace end.
        exit_gidx = len(self.events)
        for key in EXIT_REG_READS:
            self._reg_gidx.setdefault(key, []).append(exit_gidx)
            self._reg_code.setdefault(key, []).append(_READ)

    # -- scan primitives -------------------------------------------------------

    def _first_access(self, cls: str, reg: int, after_gidx: int
                      ) -> tuple[int | None, int]:
        """(trace index, read/write code) of the first access to
        ``(cls, reg)`` strictly after *after_gidx*; (None, 0) if none."""
        gidxs = self._reg_gidx.get((cls, reg))
        if not gidxs:
            return None, 0
        i = bisect_right(gidxs, after_gidx)
        if i == len(gidxs):
            return None, 0
        return gidxs[i], self._reg_code[(cls, reg)][i]

    def _dead_or_overwritten(self, cls: str, reg: int,
                             after_gidx: int) -> str | None:
        """MASKED reason if ``(cls, reg)``'s value after *after_gidx* can
        never be read (never accessed, or overwritten first)."""
        gidx, code = self._first_access(cls, reg, after_gidx)
        if gidx is None:
            return MASKED_DEAD_RESULT
        if code & _READ:
            return None
        return MASKED_OVERWRITTEN_RESULT

    def _watch_propagated(self, cls: str, reg: int,
                          strike_gidx: int) -> bool:
        """Predict the propagation watch set by a register-file fault:
        ``observe()`` runs only for FI-window instructions, marks
        propagated on a source read and clears it on a destination
        write (reads win inside one instruction)."""
        if not self._window:
            return False
        end_gidx = self._window[-1]
        gidx, code = self._first_access(cls, reg, strike_gidx)
        if gidx is None or gidx > end_gidx:
            return False
        return bool(code & _READ)

    def _value_before(self, cls: str, reg: int,
                      gidx: int) -> int | None:
        """Raw bits ``(cls, reg)`` holds when event *gidx* issues its
        reads (= the last write sample strictly before it, else the
        initial register file); None when unknown."""
        if reg == 31:
            return 0          # read() pins the zero register
        key = (cls, reg)
        gidxs = self._val_gidx.get(key)
        if gidxs:
            i = bisect_left(gidxs, gidx)
            if i > 0:
                return self._val[key][i - 1]
        initial = self.trace.initial_regs
        return initial.get(key) if initial is not None else None

    def _equal_value_redirect(self, decoded, attr: str, old: int,
                              new: int, strike: int) -> bool:
        """True iff redirecting *source* field *attr* from register
        *old* to *new* provably reads the same value — execution is then
        bit-identical downstream.  CMOV-style fields that double as the
        destination are never eligible (the write moves too)."""
        if not self._values_ok:
            return False
        srcs = decoded.src_reg_fields()
        if attr not in srcs or attr in decoded.dest_reg_fields():
            return False
        cls = decoded.src_regs()[srcs.index(attr)][0]
        v_old = self._value_before(cls, old, strike)
        v_new = self._value_before(cls, new, strike)
        return v_old is not None and v_new is not None and v_old == v_new

    def _strike_event(self, t: int, n: int) -> int | None:
        """Trace index of the FI-window commit slot *t* (1-based).  Slot
        ``n + 1`` is the deactivating ``fi_activate_inst`` itself, whose
        commit still runs the regfile/fetch hooks."""
        if t <= n:
            return self._window[t - 1]
        gidx = self._window[-1] + 1
        return gidx if gidx < len(self.events) else None

    # -- classification --------------------------------------------------------

    def classify(self, fault: Fault) -> SiteVerdict:
        """Classify one fault.  Only the campaign SEU shape (one flipped
        bit, occ=1, instruction-counted time) is analysed; anything else
        is conservatively LIVE."""
        if self.tainted or not self._window:
            return SiteVerdict(False, LIVE)
        behavior = fault.behavior
        if (fault.time_mode is not TimeMode.INSTRUCTIONS
                or behavior.kind is not BehaviorKind.FLIP
                or len(behavior.bits) != 1 or behavior.occ != 1):
            return SiteVerdict(False, LIVE)
        bit = behavior.bits[0]
        t = max(1, fault.time)
        n = len(self._window)
        loc = fault.location
        if loc in (LocationKind.INT_REG, LocationKind.FP_REG):
            return self._classify_register(fault, loc, t, bit, n)
        if loc is LocationKind.FETCH:
            return self._classify_fetch(t, bit, n)
        if loc is LocationKind.DECODE:
            return self._classify_decode(fault, t, bit, n)
        if loc is LocationKind.EXECUTE:
            return self._classify_execute(t, bit, n)
        if loc is LocationKind.MEM:
            return self._classify_mem(t, bit, n)
        return SiteVerdict(False, LIVE)  # PC faults always redirect

    def _classify_register(self, fault: Fault, loc: LocationKind,
                           t: int, bit: int, n: int) -> SiteVerdict:
        if t > n + 1:
            return SiteVerdict(True, MASKED_NEVER_TRIGGERS,
                               injected=False)
        strike = self._strike_event(t, n)
        if strike is None:
            return SiteVerdict(False, LIVE)
        if bit >= 64:
            return SiteVerdict(True, MASKED_BIT_OUT_OF_RANGE)
        cls = "int" if loc is LocationKind.INT_REG else "fp"
        reg = fault.reg_index
        if not 0 <= reg < 32:
            return SiteVerdict(False, LIVE)
        if reg == 31:
            # poke() corrupts the raw slot but read() pins it to zero.
            return SiteVerdict(
                True, MASKED_ZERO_REGISTER,
                propagated=self._watch_propagated(cls, reg, strike))
        gidx, code = self._first_access(cls, reg, strike)
        if gidx is None:
            return SiteVerdict(True, MASKED_DEAD_REGISTER)
        if code & _READ:
            return SiteVerdict(False, LIVE,
                               class_key=("reg", cls, reg, bit, gidx))
        return SiteVerdict(True, MASKED_OVERWRITTEN_REGISTER)

    def _classify_fetch(self, t: int, bit: int, n: int) -> SiteVerdict:
        if t > n + 1:
            return SiteVerdict(True, MASKED_NEVER_TRIGGERS,
                               injected=False)
        strike = self._strike_event(t, n)
        if strike is None:
            return SiteVerdict(False, LIVE)
        if bit >= 32:
            return SiteVerdict(True, MASKED_BIT_OUT_OF_RANGE)
        word = self.events[strike].word
        corrupted = word ^ (1 << bit)
        if same_semantics(word, corrupted):
            return SiteVerdict(True, MASKED_UNUSED_ENCODING_BITS)
        verdict = self._fetch_redirect(word, corrupted, strike)
        if verdict is not None:
            return verdict
        return SiteVerdict(False, LIVE)

    def _fetch_redirect(self, word: int, corrupted: int,
                        strike: int) -> SiteVerdict | None:
        """A fetch flip whose only decode-level effect is moving one
        register-selection field: masked like the matching decode-stage
        fault (equal-value source read, or dead-destination write).
        ``record.propagated`` is True either way — the words differ."""
        try:
            d0 = decode_word(word)
            d1 = decode_word(corrupted)
        except IllegalInstruction:
            return None
        if (d0.name != d1.name or d0.kind != d1.kind or d0.op != d1.op
                or d0.lit != d1.lit or d0.disp != d1.disp
                or d0.func != d1.func or d0.size != d1.size
                or d0.signed != d1.signed):
            return None
        diffs = [a for a in ("ra", "rb", "rc")
                 if getattr(d0, a) != getattr(d1, a)]
        if len(diffs) != 1:
            return None
        attr = diffs[0]
        old, new = getattr(d0, attr), getattr(d1, attr)
        if self._equal_value_redirect(d0, attr, old, new, strike):
            return SiteVerdict(True, MASKED_EQUAL_VALUE_SOURCE,
                               propagated=True)
        if attr in d0.dest_reg_fields() \
                and attr not in d0.src_reg_fields():
            cls = d0.dest_regs()[0][0]
            old_ok = old == 31 or \
                self._dead_or_overwritten(cls, old, strike) is not None
            new_ok = new == 31 or \
                self._dead_or_overwritten(cls, new, strike) is not None
            if old_ok and new_ok:
                return SiteVerdict(True, MASKED_DEAD_DESTINATION,
                                   propagated=True)
        return None

    def _classify_decode(self, fault: Fault, t: int, bit: int,
                         n: int) -> SiteVerdict:
        if t > n + 1:
            return SiteVerdict(True, MASKED_NEVER_TRIGGERS,
                               injected=False)
        strike = self._strike_event(t, n)
        if strike is None:
            return SiteVerdict(False, LIVE)
        try:
            decoded = decode_word(self.events[strike].word)
        except IllegalInstruction:  # pragma: no cover - committed words
            return SiteVerdict(False, LIVE)
        fields = (decoded.src_reg_fields() if fault.operand_role == "src"
                  else decoded.dest_reg_fields())
        if not fields:
            # The injector records the hit and drops it.
            return SiteVerdict(True, MASKED_NO_OPERAND_FIELDS)
        if bit >= 5:
            return SiteVerdict(True, MASKED_BIT_OUT_OF_RANGE)
        if fault.operand_role == "src":
            attr = fields[fault.operand_index % len(fields)]
            old = getattr(decoded, attr)
            if self._equal_value_redirect(decoded, attr, old,
                                          old ^ (1 << bit), strike):
                return SiteVerdict(True, MASKED_EQUAL_VALUE_SOURCE,
                                   propagated=True)
            return SiteVerdict(False, LIVE)
        # dst flip: the write is redirected from `old` to `new`.  Masked
        # iff neither register's next access is a read — the stale value
        # left in `old` and the clobbered value in `new` both vanish.
        attr = fields[fault.operand_index % len(fields)]
        old = getattr(decoded, attr)
        new = old ^ (1 << bit)
        cls = decoded.dest_regs()[0][0]
        old_ok = old == 31 or \
            self._dead_or_overwritten(cls, old, strike) is not None
        new_ok = new == 31 or \
            self._dead_or_overwritten(cls, new, strike) is not None
        if old_ok and new_ok:
            return SiteVerdict(True, MASKED_DEAD_DESTINATION,
                               propagated=True)
        return SiteVerdict(False, LIVE)

    def _classify_execute(self, t: int, bit: int, n: int) -> SiteVerdict:
        i = bisect_left(self._exec_widx, t)
        if i == len(self._exec_widx):
            return SiteVerdict(True, MASKED_NEVER_TRIGGERS,
                               injected=False)
        gidx = self._exec_gidx[i]
        event = self.events[gidx]
        if bit >= 64:
            return SiteVerdict(True, MASKED_BIT_OUT_OF_RANGE)
        if event.kind in MEM_KINDS:
            # Effective-address corruption: always live.
            return SiteVerdict(False, LIVE,
                               class_key=("exec", bit, gidx))
        cls, dest = event.writes[0]
        if dest == 31:
            return SiteVerdict(True, MASKED_DISCARDED_WRITE,
                               propagated=True)
        reason = self._dead_or_overwritten(cls, dest, gidx)
        if reason is not None:
            return SiteVerdict(True, reason, propagated=True)
        return SiteVerdict(False, LIVE, class_key=("exec", bit, gidx))

    def _classify_mem(self, t: int, bit: int, n: int) -> SiteVerdict:
        i = bisect_left(self._mem_widx, t)
        if i == len(self._mem_widx):
            return SiteVerdict(True, MASKED_NEVER_TRIGGERS,
                               injected=False)
        gidx = self._mem_gidx[i]
        event = self.events[gidx]
        if bit >= 8 * event.mem_size:
            return SiteVerdict(True, MASKED_BIT_OUT_OF_RANGE)
        if event.is_load:
            cls, dest = event.writes[0]
            if dest == 31:
                return SiteVerdict(True, MASKED_DISCARDED_WRITE,
                                   propagated=True)
            reason = self._dead_or_overwritten(cls, dest, gidx)
            if reason is not None:
                return SiteVerdict(True, reason, propagated=True)
            return SiteVerdict(False, LIVE,
                               class_key=("mem", bit, gidx))
        # Store-value corruption of one byte of memory.
        byte_addr = event.mem_addr + bit // 8
        if self._store_byte_masked(byte_addr, gidx):
            return SiteVerdict(True, MASKED_OVERWRITTEN_STORE,
                               propagated=True)
        return SiteVerdict(False, LIVE, class_key=("mem", bit, gidx))

    def _store_byte_masked(self, byte_addr: int, gidx: int) -> bool:
        """True iff the byte at *byte_addr* is rewritten by a later
        store before any load or syscall (a memory-read barrier) can
        observe it.  Memory never touched again stays LIVE — final
        memory is where campaign outputs are extracted."""
        i = bisect_right(self._mem_scan_gidx, gidx)
        for j in range(i, len(self._mem_scan)):
            _, addr, size, is_load, is_syscall = self._mem_scan[j]
            if is_syscall:
                return False
            if addr <= byte_addr < addr + size:
                return not is_load
        return False

    # -- summaries -------------------------------------------------------------

    def window_length(self) -> int:
        return len(self._window)
