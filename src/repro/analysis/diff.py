"""Differential campaign analytics: summaries, diffs, regression gates.

GemFI's evaluation is comparative — protected vs unprotected binaries,
CPU models, fault models (PAPER.md Figs. 4-6) — and DAVOS ships
decision support over a persistent result database.  This module is
that layer for the reproduction:

* :class:`CampaignSummary` — a byte-deterministic digest of a finished
  campaign: spec fingerprint, Kish-weighted outcome distribution,
  per-dimension coverage heatmap rollups (reusing
  :meth:`~repro.analysis.coverage.FaultSpaceMap.as_dict`), the
  divergence-latency histogram and a host-time/KIPS rollup.  Buildable
  from a share directory, a result list, or an archived payload; the
  same inputs always produce the same bytes (sorted keys, rounded
  floats, no timestamps or absolute paths).
* :class:`CampaignDiff` — significance-tested deltas between two
  summaries: a Newcombe score interval on each outcome-rate difference
  (built from the weighted Wilson intervals over Kish effective sample
  sizes), per-dimension delta heatmaps, the latency-histogram shift,
  and a per-class verdict (``regressed`` / ``improved`` /
  ``unchanged``) plus an overall gate verdict with a configurable
  rate margin — the outcome-distribution analogue of the CI KIPS gate.
* the **shared two-proportion significance helpers** the telemetry
  watchdog's ``outcome-drift`` rule delegates to, so the repo has
  exactly one implementation of "are these two proportions different".

Everything here is read-only over existing result streams and
byte-deterministic, so ``gemfi compare --json`` documents can be
diffed, cached, archived and gated on in CI.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass

from .coverage import (
    DIMENSION_TITLES,
    DIMENSIONS,
    FaultSpaceMap,
    _round,
    _window_from_share,
    _xml,
    iter_share_results,
    outcome_columns,
)

#: outcomes where a rate *increase* is good news; everything else
#: (crashed, sdc, unknown outcome strings — conservative) regresses
#: when it goes up.
GOOD_OUTCOMES = frozenset({"correct", "strictly_correct",
                           "non_propagated"})

VERDICT_SCORE = {"unchanged": 0, "improved": 1, "regressed": 2}

SUMMARY_SCHEMA = "gemfi.campaign_summary.v1"
DIFF_SCHEMA = "gemfi.campaign_diff.v1"


def canonical_summary_bytes(payload: dict) -> bytes:
    """Digest-stable encoding of a summary/diff payload (sorted keys,
    minimal separators — the content store's canonical JSON form)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")


# -- shared two-proportion significance ---------------------------------------


def proportions_differ(successes_a: int, trials_a: int,
                       successes_b: int, trials_b: int,
                       confidence: float = 0.95
                       ) -> tuple[bool, tuple[float, float],
                                  tuple[float, float]]:
    """Disjoint-Wilson-intervals significance test on two unweighted
    proportions: ``(significant, (low_a, high_a), (low_b, high_b))``.

    This is the watchdog ``outcome-drift`` criterion — two Wilson
    score intervals at *confidence* that do not overlap — kept here so
    drift alerts and campaign diffs share one implementation.
    """
    from ..campaign.sampling import proportion_confidence_interval
    low_a, high_a = proportion_confidence_interval(
        successes_a, trials_a, confidence=confidence)
    low_b, high_b = proportion_confidence_interval(
        successes_b, trials_b, confidence=confidence)
    significant = low_b > high_a or low_a > high_b
    return significant, (low_a, high_a), (low_b, high_b)


def newcombe_interval(success_base: float, total_base: float,
                      effective_base: float,
                      success_head: float, total_head: float,
                      effective_head: float,
                      confidence: float = 0.95
                      ) -> tuple[float, float, float]:
    """``(delta, low, high)`` for ``p_head - p_base`` by Newcombe's
    score method: the interval is assembled from the two weighted
    Wilson intervals, each computed over its side's Kish effective
    sample size, so pruned (weighted) campaigns are not overconfident.
    """
    from ..campaign.sampling import (
        weighted_proportion_confidence_interval,
    )
    p_base = success_base / total_base if total_base > 0 else 0.0
    p_head = success_head / total_head if total_head > 0 else 0.0
    low_base, high_base = weighted_proportion_confidence_interval(
        success_base, total_base, effective_base,
        confidence=confidence)
    low_head, high_head = weighted_proportion_confidence_interval(
        success_head, total_head, effective_head,
        confidence=confidence)
    delta = p_head - p_base
    low = delta - math.sqrt((p_head - low_head) ** 2
                            + (high_base - p_base) ** 2)
    high = delta + math.sqrt((high_head - p_head) ** 2
                             + (p_base - low_base) ** 2)
    return delta, max(-1.0, low), min(1.0, high)


# -- campaign summaries -------------------------------------------------------


def _normalise_entry(entry) -> dict:
    if isinstance(entry, dict):
        return entry
    as_dict = getattr(entry, "as_dict", None)
    if callable(as_dict):
        return as_dict()
    raise TypeError(f"not a result record: {type(entry).__name__}")


@dataclass
class CampaignSummary:
    """One campaign's byte-deterministic digest (see module doc)."""

    payload: dict

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_results(cls, results, name: str = "",
                     spec: dict | None = None, window=None,
                     confidence: float = 0.99) -> "CampaignSummary":
        """Summarise an in-memory result list (dicts or objects with
        ``as_dict``).  *window* is the FI window's committed count
        when known (sizes the enumerated fault space)."""
        from ..telemetry.report import latency_histogram
        space = FaultSpaceMap(window=window, confidence=confidence)
        counts: dict[str, int] = {}
        weights: dict[str, float] = {}
        latencies: list[int] = []
        kinds: dict[str, int] = {}
        wall_total = 0.0
        instructions = 0
        timed = 0
        for raw in results:
            entry = _normalise_entry(raw)
            space.account(entry)
            outcome = str(entry.get("outcome", "unknown"))
            weight = max(0.0, float(entry.get("weight") or 1.0))
            counts[outcome] = counts.get(outcome, 0) + 1
            weights[outcome] = weights.get(outcome, 0.0) + weight
            divergence = entry.get("divergence")
            if isinstance(divergence, dict):
                kind = str(divergence.get("kind", "unknown"))
                kinds[kind] = kinds.get(kind, 0) + 1
                latency = divergence.get("latency")
                if isinstance(latency, int) and latency >= 0:
                    latencies.append(latency)
            wall = entry.get("wall_seconds")
            if isinstance(wall, (int, float)):
                timed += 1
                wall_total += float(wall)
                instructions += int(entry.get("instructions") or 0)
        total_weight = sum(weights.values())
        outcomes = {}
        for outcome in sorted(counts):
            weight = weights[outcome]
            outcomes[outcome] = {
                "count": counts[outcome],
                "weight": _round(weight),
                "rate": _round(weight / total_weight)
                if total_weight > 0 else 0.0,
            }
        coverage = space.as_dict()
        host = None
        if timed:
            host = {"experiments": timed,
                    "wall_seconds": _round(wall_total),
                    "instructions": instructions}
            if wall_total > 0 and instructions:
                host["kips"] = _round(
                    instructions / wall_total / 1000.0)
        payload = {
            "schema": SUMMARY_SCHEMA,
            "name": name,
            "spec": spec,
            "confidence": confidence,
            "experiments": space.accounted,
            "weight": _round(total_weight),
            "effective_n": _round(space.tracker.effective_n),
            "outcomes": outcomes,
            "coverage": {
                "space": coverage["space"],
                "heatmaps": coverage["heatmaps"],
            },
            "latency": {
                "divergences": len(latencies),
                "kinds": kinds,
                "histogram": [[label, count] for label, count
                              in latency_histogram(latencies)],
            },
            "host": host,
        }
        return cls(payload)

    @classmethod
    def from_share(cls, share_dir: str, name: str | None = None,
                   confidence: float = 0.99) -> "CampaignSummary":
        """Summarise a campaign share directory (read-only).  The
        spec fingerprint comes from the share's ``workload.json``
        minus the service request context (which carries a
        per-submission request id — not part of the campaign)."""
        if name is None:
            name = os.path.basename(os.path.normpath(share_dir))
        spec = None
        path = os.path.join(share_dir, "workload.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                spec = json.load(handle)
        except (OSError, ValueError):
            spec = None
        if isinstance(spec, dict):
            spec.pop("request", None)
        else:
            spec = None
        return cls.from_results(iter_share_results(share_dir),
                                name=name, spec=spec,
                                window=_window_from_share(share_dir),
                                confidence=confidence)

    @classmethod
    def from_payload(cls, payload) -> "CampaignSummary":
        """Re-hydrate a summary from its JSON payload (an archived
        row, a ``gemfi compare --json`` operand, or the ``summary``
        wrapper a service endpoint returns).  A bare result list is
        summarised on the spot."""
        if isinstance(payload, list):
            return cls.from_results(payload)
        if not isinstance(payload, dict):
            raise ValueError("not a campaign summary payload")
        if "outcomes" not in payload and \
                isinstance(payload.get("summary"), dict):
            payload = payload["summary"]
        if "outcomes" not in payload:
            raise ValueError("not a campaign summary payload "
                             "(no outcome distribution)")
        return cls(payload)

    # -- views ----------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.payload.get("name") or ""

    def canonical_bytes(self) -> bytes:
        return canonical_summary_bytes(self.payload)

    def digest(self) -> str:
        """SHA-256 of the canonical payload bytes — the summary's
        content-store address."""
        return hashlib.sha256(self.canonical_bytes()).hexdigest()


# -- campaign diffs -----------------------------------------------------------


def _class_verdict(outcome: str, delta: float, low: float,
                   high: float, margin: float) -> str:
    significant = (low > 0.0 or high < 0.0) and abs(delta) > margin
    if not significant:
        return "unchanged"
    worse = delta < 0.0 if outcome in GOOD_OUTCOMES else delta > 0.0
    return "regressed" if worse else "improved"


class CampaignDiff:
    """Significance-tested comparison of two campaign summaries.

    The per-class verdict is ``regressed``/``improved`` only when the
    *confidence* Newcombe interval on the rate delta excludes zero
    **and** the delta exceeds *margin* (so a statistically-real but
    operationally-irrelevant shift stays ``unchanged``); the overall
    verdict is the worst per-class one.  :attr:`payload` is
    byte-deterministic for the same two summaries.
    """

    def __init__(self, base: CampaignSummary, head: CampaignSummary,
                 confidence: float = 0.95,
                 margin: float = 0.02) -> None:
        if not 0.5 < confidence < 1.0:
            raise ValueError("confidence must be in (0.5, 1.0)")
        if not 0.0 <= margin < 1.0:
            raise ValueError("margin must be in [0, 1)")
        self.base = base
        self.head = head
        self.confidence = confidence
        self.margin = margin
        self.payload = self._build()

    # -- assembly -------------------------------------------------------------

    def _side(self, summary: CampaignSummary) -> dict:
        payload = summary.payload
        return {"name": payload.get("name") or "",
                "spec": payload.get("spec"),
                "experiments": payload.get("experiments", 0),
                "weight": payload.get("weight", 0.0),
                "effective_n": payload.get("effective_n", 0.0)}

    def _outcome_rows(self) -> dict[str, dict]:
        base, head = self.base.payload, self.head.payload
        base_w = base.get("weight", 0.0)
        head_w = head.get("weight", 0.0)
        base_n = base.get("effective_n", 0.0)
        head_n = head.get("effective_n", 0.0)
        rows = {}
        names = set(base.get("outcomes", {})) \
            | set(head.get("outcomes", {}))
        for outcome in sorted(names):
            b = base["outcomes"].get(outcome, {})
            h = head["outcomes"].get(outcome, {})
            delta, low, high = newcombe_interval(
                b.get("weight", 0.0), base_w, base_n,
                h.get("weight", 0.0), head_w, head_n,
                confidence=self.confidence)
            verdict = _class_verdict(outcome, delta, low, high,
                                     self.margin)
            rows[outcome] = {
                "base_rate": _round(b.get("rate", 0.0)),
                "head_rate": _round(h.get("rate", 0.0)),
                "delta": _round(delta),
                "ci_low": _round(low),
                "ci_high": _round(high),
                "significant": low > 0.0 or high < 0.0,
                "verdict": verdict,
            }
        return rows

    def _heatmap_rows(self) -> dict[str, dict]:
        base = self.base.payload.get("coverage") or {}
        head = self.head.payload.get("coverage") or {}
        base_maps = base.get("heatmaps") or {}
        head_maps = head.get("heatmaps") or {}
        out = {}
        for dimension in DIMENSIONS:
            base_cells = {cell["label"]: cell for cell in
                          (base_maps.get(dimension) or {})
                          .get("cells", [])}
            head_cells = {cell["label"]: cell for cell in
                          (head_maps.get(dimension) or {})
                          .get("cells", [])}
            # Base cell order first (it is already canonically
            # sorted), then head-only labels — deterministic.
            labels = [label for label in base_cells
                      if label in head_cells]
            cells = []
            for label in labels:
                b_cell, h_cell = base_cells[label], head_cells[label]
                outcomes = {}
                names = set(b_cell["outcomes"]) \
                    | set(h_cell["outcomes"])
                for outcome in sorted(names):
                    b = b_cell["outcomes"].get(outcome, {})
                    h = h_cell["outcomes"].get(outcome, {})
                    delta, low, high = newcombe_interval(
                        b.get("weight", 0.0), b_cell["weight"],
                        b_cell["effective_n"],
                        h.get("weight", 0.0), h_cell["weight"],
                        h_cell["effective_n"],
                        confidence=self.confidence)
                    outcomes[outcome] = {
                        "base_rate": _round(b.get("rate", 0.0)),
                        "head_rate": _round(h.get("rate", 0.0)),
                        "delta": _round(delta),
                        "ci_low": _round(low),
                        "ci_high": _round(high),
                        "significant": low > 0.0 or high < 0.0,
                    }
                cells.append({"label": label, "outcomes": outcomes})
            out[dimension] = {
                "title": DIMENSION_TITLES[dimension],
                "cells": cells,
                "only_base": sorted(set(base_cells)
                                    - set(head_cells)),
                "only_head": sorted(set(head_cells)
                                    - set(base_cells)),
            }
        return out

    def _latency_rows(self) -> dict:
        base = self.base.payload.get("latency") or {}
        head = self.head.payload.get("latency") or {}
        base_hist = base.get("histogram") or []
        head_hist = head.get("histogram") or []
        rows = []
        for index in range(max(len(base_hist), len(head_hist))):
            base_row = base_hist[index] if index < len(base_hist) \
                else None
            head_row = head_hist[index] if index < len(head_hist) \
                else None
            label = (head_row or base_row)[0]
            b = base_row[1] if base_row else 0
            h = head_row[1] if head_row else 0
            rows.append([label, b, h, h - b])
        return {"base_divergences": base.get("divergences", 0),
                "head_divergences": head.get("divergences", 0),
                "rows": rows}

    def _host_rows(self) -> dict | None:
        base = self.base.payload.get("host")
        head = self.head.payload.get("host")
        if not base or not head:
            return None
        out = {"base_wall_seconds": base.get("wall_seconds"),
               "head_wall_seconds": head.get("wall_seconds")}
        if "kips" in base and "kips" in head:
            out["base_kips"] = base["kips"]
            out["head_kips"] = head["kips"]
            out["delta_kips"] = _round(head["kips"]
                                       - base["kips"])
        return out

    def _build(self) -> dict:
        outcomes = self._outcome_rows()
        verdicts = [row["verdict"] for row in outcomes.values()]
        if "regressed" in verdicts:
            overall = "regressed"
        elif "improved" in verdicts:
            overall = "improved"
        else:
            overall = "unchanged"
        base_spec = self.base.payload.get("spec")
        head_spec = self.head.payload.get("spec")
        return {
            "schema": DIFF_SCHEMA,
            "config": {"confidence": self.confidence,
                       "margin": self.margin},
            "base": self._side(self.base),
            "head": self._side(self.head),
            "spec_match": base_spec == head_spec,
            "outcomes": outcomes,
            "verdict": overall,
            "heatmaps": self._heatmap_rows(),
            "latency": self._latency_rows(),
            "host": self._host_rows(),
        }

    # -- views ----------------------------------------------------------------

    @property
    def verdict(self) -> str:
        return self.payload["verdict"]

    @property
    def regressed(self) -> bool:
        return self.verdict == "regressed"

    def canonical_bytes(self) -> bytes:
        return canonical_summary_bytes(self.payload)


def compare_gauges(payload: dict) -> dict[str, float]:
    """Flatten a diff payload into ``compare.*`` gauges for the shared
    metrics registry, so ``/metrics``, ``/v1/history`` and the console
    sparklines pick differential state up for free."""
    rows = payload["outcomes"]
    verdicts = [row["verdict"] for row in rows.values()]
    gauges: dict[str, float] = {
        "compare.verdict":
            VERDICT_SCORE.get(payload["verdict"], 2),
        "compare.classes_regressed": verdicts.count("regressed"),
        "compare.classes_improved": verdicts.count("improved"),
        "compare.classes_unchanged": verdicts.count("unchanged"),
        "compare.max_abs_delta": max(
            (abs(row["delta"]) for row in rows.values()),
            default=0.0),
    }
    for outcome, row in rows.items():
        gauges[f"compare.delta.{outcome}"] = row["delta"]
    return gauges


# -- rendering ----------------------------------------------------------------


def _pct(value: float) -> str:
    return f"{value * 100:.1f}%"


def _signed_pct(value: float) -> str:
    return f"{value * 100:+.1f}%"


def _verdict_line(payload: dict) -> str:
    config = payload["config"]
    verdicts = [row["verdict"]
                for row in payload["outcomes"].values()]
    return (f"verdict: {payload['verdict']} at "
            f"{config['confidence'] * 100:g}% confidence, margin "
            f"+-{config['margin'] * 100:g}% "
            f"({verdicts.count('regressed')} regressed, "
            f"{verdicts.count('improved')} improved, "
            f"{verdicts.count('unchanged')} unchanged)")


def _sides_line(payload: dict) -> str:
    base, head = payload["base"], payload["head"]
    line = (f"base {base['name'] or '?'} ({base['experiments']} "
            f"experiments, effective n {base['effective_n']:g}) vs "
            f"head {head['name'] or '?'} ({head['experiments']} "
            f"experiments, effective n {head['effective_n']:g})")
    if not payload["spec_match"]:
        line += "; specs differ"
    return line


def diff_report_tables(payload: dict
                       ) -> tuple[list[str],
                                  list[tuple[str, list, list]]]:
    """The diff as structure: (prose lines, [(title, header, rows)])
    — shared by the Markdown/HTML/plain renderers and the report's
    "vs baseline" section."""
    prose = [_sides_line(payload) + ".", _verdict_line(payload) + "."]
    tables: list[tuple[str, list, list]] = []
    rows = []
    confidence = payload["config"]["confidence"]
    outcomes = payload["outcomes"]
    for outcome in outcome_columns(outcomes):
        row = outcomes[outcome]
        rows.append([
            outcome, _pct(row["base_rate"]), _pct(row["head_rate"]),
            _signed_pct(row["delta"]),
            f"[{_signed_pct(row['ci_low'])}, "
            f"{_signed_pct(row['ci_high'])}]",
            row["verdict"]])
    tables.append((f"Outcome deltas ({confidence * 100:g}% Newcombe "
                   f"intervals)",
                   ["outcome", "base", "head", "delta", "interval",
                    "verdict"], rows))
    latency = payload.get("latency") or {}
    if latency.get("rows"):
        tables.append(
            ("Divergence-latency shift (ticks)",
             ["bucket", "base", "head", "delta"],
             [[label, b, h, f"{d:+d}"]
              for label, b, h, d in latency["rows"]]))
    host = payload.get("host")
    if host and "base_kips" in host:
        tables.append(
            ("Host time",
             ["metric", "base", "head"],
             [["wall total (s)", f"{host['base_wall_seconds']:.3f}",
               f"{host['head_wall_seconds']:.3f}"],
              ["campaign KIPS", f"{host['base_kips']:.1f}",
               f"{host['head_kips']:.1f}"]]))
    for dimension in DIMENSIONS:
        heatmap = payload["heatmaps"].get(dimension)
        if not heatmap or not heatmap["cells"]:
            continue
        cells = heatmap["cells"]
        names = outcome_columns(
            {o for cell in cells for o in cell["outcomes"]})
        rows = []
        for cell in cells:
            row = [cell["label"]]
            for outcome in names:
                entry = cell["outcomes"].get(outcome)
                row.append("-" if entry is None else
                           f"{_signed_pct(entry['delta'])} "
                           f"[{_signed_pct(entry['ci_low'])}, "
                           f"{_signed_pct(entry['ci_high'])}]")
            rows.append(row)
        title = f"Rate deltas by {heatmap['title']}"
        extra = []
        if heatmap["only_base"]:
            extra.append("base only: "
                         + ", ".join(heatmap["only_base"]))
        if heatmap["only_head"]:
            extra.append("head only: "
                         + ", ".join(heatmap["only_head"]))
        if extra:
            title += f" ({'; '.join(extra)})"
        tables.append((title, ["cell"] + names, rows))
    return prose, tables


def _md_table(header: list[str], rows: list[list]) -> str:
    lines = ["| " + " | ".join(str(c) for c in header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def diff_markdown_sections(payload: dict, level: int = 2
                           ) -> list[str]:
    """The diff as markdown blocks (``gemfi report --baseline`` nests
    them under its own heading)."""
    h = "#" * level
    prose, tables = diff_report_tables(payload)
    parts = [f"{h} Vs baseline", ""]
    for line in prose:
        parts += [line, ""]
    for title, header, rows in tables:
        parts += [f"{h}# {title}", "", _md_table(header, rows), ""]
    return parts


def render_diff_markdown(payload: dict) -> str:
    base = payload["base"]["name"] or "base"
    head = payload["head"]["name"] or "head"
    parts = [f"# Campaign diff: {base} vs {head}", ""]
    prose, tables = diff_report_tables(payload)
    for line in prose:
        parts += [line, ""]
    for title, header, rows in tables:
        parts += [f"## {title}", "", _md_table(header, rows), ""]
    return "\n".join(parts).rstrip() + "\n"


def render_diff_text(payload: dict) -> str:
    """Aligned plain-text rendering (the default ``gemfi compare``
    output)."""
    prose, tables = diff_report_tables(payload)
    parts = list(prose)
    for title, header, rows in tables:
        parts += ["", f"# {title}"]
        cells = [[str(c) for c in row] for row in rows]
        widths = [max(len(header[i]),
                      *(len(row[i]) for row in cells))
                  if cells else len(header[i])
                  for i in range(len(header))]
        parts.append("  ".join(h.ljust(w)
                               for h, w in zip(header, widths)))
        for row in cells:
            parts.append("  ".join(c.ljust(w)
                                   for c, w in zip(row, widths)))
    return "\n".join(parts).rstrip() + "\n"


# -- SVG ----------------------------------------------------------------------

_NEGATIVE_COLOR = (42, 111, 181)   # rate went down: blue
_POSITIVE_COLOR = (192, 57, 43)    # rate went up: red


def _diverging(delta: float) -> str:
    """White at zero, toward blue for negative deltas and red for
    positive ones — saturating at |delta| = 1."""
    anchor = _POSITIVE_COLOR if delta >= 0 else _NEGATIVE_COLOR
    mix = min(1.0, abs(delta))
    rgb = tuple(round(255 + (channel - 255) * mix)
                for channel in anchor)
    return f"rgb({rgb[0]},{rgb[1]},{rgb[2]})"


def render_diff_svg(payload: dict, dimension: str,
                    width: int = 720) -> str:
    """One dimension's delta heatmap as a self-contained SVG grid:
    one row per cell, one column per outcome, diverging fill
    (blue = rate down, red = rate up), a ``<title>`` tooltip with the
    Newcombe interval on every box.  Deterministic: same payload,
    same bytes."""
    heatmap = payload["heatmaps"][dimension]
    cells = heatmap["cells"]
    outcomes = outcome_columns(
        {o for cell in cells for o in cell["outcomes"]})
    gutter, box_h, header_h = 150, 18, 16
    columns = max(1, len(outcomes))
    box_w = max(24, (width - gutter - 10) // columns)
    height = header_h + max(1, len(cells)) * box_h + 8
    out = [f'<svg xmlns="http://www.w3.org/2000/svg" '
           f'width="{width}" height="{height}" '
           f'font-family="monospace" font-size="10">',
           f'<rect width="{width}" height="{height}" '
           f'fill="#ffffff"/>',
           f'<text x="4" y="11" fill="#333" font-weight="bold">'
           f'&#916; {_xml(heatmap["title"])}</text>']
    for column, outcome in enumerate(outcomes):
        x = gutter + column * box_w
        out.append(f'<text x="{x + 2}" y="11" fill="#555">'
                   f'{_xml(outcome[:12])}</text>')
    if not cells:
        out.append(f'<text x="{gutter}" y="{header_h + 12}" '
                   f'fill="#999">no shared cells</text>')
    for row, cell in enumerate(cells):
        y = header_h + row * box_h
        out.append(f'<text x="4" y="{y + 13}" fill="#333">'
                   f'{_xml(str(cell["label"])[:20])}</text>')
        for column, outcome in enumerate(outcomes):
            x = gutter + column * box_w
            entry = cell["outcomes"].get(outcome)
            if entry is None:
                fill = "#f4f4f4"
                tip = f'{cell["label"]} {outcome}: no samples'
            else:
                fill = _diverging(entry["delta"])
                tip = (f'{cell["label"]} {outcome}: '
                       f'{_pct(entry["base_rate"])} -> '
                       f'{_pct(entry["head_rate"])} '
                       f'({_signed_pct(entry["delta"])}, '
                       f'[{_signed_pct(entry["ci_low"])},'
                       f'{_signed_pct(entry["ci_high"])}]'
                       + (", significant)" if entry["significant"]
                          else ")"))
            out.append(
                f'<rect x="{x}" y="{y + 1}" width="{box_w - 2}" '
                f'height="{box_h - 3}" fill="{fill}" '
                f'stroke="#dddddd"><title>{_xml(tip)}</title></rect>')
            if entry is not None:
                luma = 1.0 - 0.75 * min(1.0, abs(entry["delta"]))
                color = "#1c2733" if luma > 0.55 else "#ffffff"
                out.append(
                    f'<text x="{x + 3}" y="{y + 13}" '
                    f'fill="{color}">'
                    f'{_signed_pct(entry["delta"])}</text>')
    out.append("</svg>")
    return "".join(out)


def render_diff_bars(payload: dict, width: int = 720) -> str:
    """Side-by-side outcome bars: for each outcome class, the base
    and head rates as paired horizontal bars with the verdict badge —
    the console's at-a-glance view of a comparison."""
    from .coverage import OUTCOME_COLORS, _DEFAULT_COLOR
    outcomes = payload["outcomes"]
    names = outcome_columns(outcomes)
    gutter, bar_h, pair_h, header_h = 150, 9, 26, 16
    span = max(1, width - gutter - 120)
    height = header_h + max(1, len(names)) * pair_h + 8
    out = [f'<svg xmlns="http://www.w3.org/2000/svg" '
           f'width="{width}" height="{height}" '
           f'font-family="monospace" font-size="10">',
           f'<rect width="{width}" height="{height}" '
           f'fill="#ffffff"/>',
           f'<text x="4" y="11" fill="#333" font-weight="bold">'
           f'outcome rates: base (grey) vs head (colour)</text>']
    for index, outcome in enumerate(names):
        row = outcomes[outcome]
        y = header_h + index * pair_h
        red, green, blue = OUTCOME_COLORS.get(outcome,
                                              _DEFAULT_COLOR)
        out.append(f'<text x="4" y="{y + 13}" fill="#333">'
                   f'{_xml(outcome[:18])}</text>')
        base_w = round(row["base_rate"] * span)
        head_w = round(row["head_rate"] * span)
        tip = (f'{outcome}: {_pct(row["base_rate"])} -> '
               f'{_pct(row["head_rate"])} '
               f'({_signed_pct(row["delta"])}) {row["verdict"]}')
        out.append(
            f'<rect x="{gutter}" y="{y + 2}" width="{max(1, base_w)}"'
            f' height="{bar_h}" fill="#aab4bd">'
            f'<title>{_xml(tip)}</title></rect>')
        out.append(
            f'<rect x="{gutter}" y="{y + 3 + bar_h}" '
            f'width="{max(1, head_w)}" height="{bar_h}" '
            f'fill="rgb({red},{green},{blue})">'
            f'<title>{_xml(tip)}</title></rect>')
        out.append(
            f'<text x="{gutter + max(base_w, head_w) + 6}" '
            f'y="{y + 15}" fill="#555">'
            f'{_signed_pct(row["delta"])} {row["verdict"]}</text>')
    out.append("</svg>")
    return "".join(out)
