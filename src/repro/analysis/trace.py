"""Dynamic def-use trace recording for the golden profiling run.

A :class:`DefUseTracer` hangs off the :class:`~repro.core.injector.
FaultInjector` and records one :class:`TraceEvent` per *committed*
instruction, starting at the first ``fi_activate_inst`` of the run and
continuing to program end (registers and memory written inside the FI
window can be consumed long after it closes, so liveness analysis needs
the post-window tail too).

The recorder follows the injector's hot-flag idiom: CPU models test one
boolean (``injector.trace_hot``) per committed instruction, so a run
without a tracer installed pays nothing — the same zero-overhead
property the per-stage fault queues have (Fig. 7).

Syscalls are special-cased: the committed ``callsys`` word carries no
register fields, but the dispatcher architecturally reads ``v0`` and
``a0..a2`` and writes ``v0`` (and may read arbitrary memory, e.g.
``write``), so the event records that contract instead of the decoded
word's empty register lists.  The final ``exit`` syscall never commits
— ``ProcessExited`` unwinds the instruction mid-execute — which is why
:class:`~repro.analysis.liveness.LivenessAnalysis` appends an implicit
exit barrier; see there.
"""

from __future__ import annotations

from ..isa.instructions import (
    KIND_FI,
    KIND_FLOAD,
    KIND_LOAD,
    KIND_PAL,
    PAL_CALLSYS,
)

# Registers the syscall dispatcher touches unconditionally
# (system/syscalls.py reads v0 + a0..a2 up front and returns in v0).
SYSCALL_REG_READS = (("int", 0), ("int", 16), ("int", 17), ("int", 18))
SYSCALL_REG_WRITES = (("int", 0),)
# The final exit() *uses* only v0 (syscall selection) and a0 (the exit
# code); the dispatcher's a1/a2 loads are discarded, so the liveness
# exit barrier only needs these two.
EXIT_REG_READS = (("int", 0), ("int", 16))
# fi_activate_inst reads its thread id from a0.
FI_REG_READS = (("int", 16),)

# Safety valve: a trace larger than this taints the analysis instead of
# exhausting memory (≈ a few hundred MB of events).
DEFAULT_EVENT_LIMIT = 4_000_000


class TraceEvent:
    """One committed instruction of the traced run."""

    __slots__ = ("window_index", "pc", "word", "kind", "reads", "writes",
                 "write_values", "mem_addr", "mem_size", "is_load",
                 "is_syscall")

    def __init__(self, window_index: int | None, pc: int, word: int,
                 kind: int, reads: tuple, writes: tuple,
                 mem_addr: int | None, mem_size: int, is_load: bool,
                 is_syscall: bool, write_values: tuple = ()) -> None:
        self.window_index = window_index   # 1-based FI-window position,
        self.pc = pc                       # None outside the window
        self.word = word
        self.kind = kind
        self.reads = reads                 # ((cls, index), ...) sources
        self.writes = writes               # ((cls, index), ...) dests
        self.write_values = write_values   # post-commit register values,
        self.mem_addr = mem_addr           # aligned with `writes`
        self.mem_size = mem_size
        self.is_load = is_load
        self.is_syscall = is_syscall

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        w = self.window_index
        return (f"<TraceEvent pc={self.pc:#x} word={self.word:#010x}"
                f" window={w}>")


class DefUseTracer:
    """Accumulates the committed-instruction stream of a golden run."""

    def __init__(self, limit: int = DEFAULT_EVENT_LIMIT) -> None:
        self.events: list[TraceEvent] = []
        self.started = False
        self.limit = limit
        self.overflow = False
        # Register-file values at trace start ((cls, index) -> raw
        # bits), captured so the analysis can evaluate "what value does
        # register X hold at window instruction t" queries (the
        # equal-value source rule).
        self.initial_regs: dict[tuple[str, int], int] | None = None
        # Context switches swap the architectural registers invisibly to
        # a register-indexed def-use trace; any switch after tracing
        # starts makes pruning unsound, so it taints the analysis.
        self.context_switches = 0

    @property
    def tainted(self) -> bool:
        return self.overflow or self.context_switches > 0

    def capture_initial(self, core) -> None:
        """Snapshot the architectural register files (called by the
        injector right before the first traced instruction commits)."""
        ints = core.arch.intregs
        fps = core.arch.fpregs
        snapshot: dict[tuple[str, int], int] = {}
        for index in range(32):
            snapshot[("int", index)] = ints.peek(index)
            snapshot[("fp", index)] = fps.peek(index)
        self.initial_regs = snapshot

    def record(self, window_index: int | None, pc: int, decoded,
               result, core=None) -> None:
        if len(self.events) >= self.limit:
            self.overflow = True
            return
        kind = decoded.kind
        is_syscall = False
        if kind == KIND_PAL:
            is_syscall = decoded.func == PAL_CALLSYS
            reads = SYSCALL_REG_READS if is_syscall else ()
            writes = SYSCALL_REG_WRITES if is_syscall else ()
        elif kind == KIND_FI:
            reads = FI_REG_READS
            writes = ()
        else:
            reads = tuple(decoded.src_regs())
            writes = tuple(decoded.dest_regs())
        mem_addr = result.mem_addr if decoded.is_mem() else None
        write_values: tuple = ()
        if core is not None and writes:
            arch = core.arch
            write_values = tuple(
                (arch.intregs if cls == "int" else arch.fpregs).peek(reg)
                for cls, reg in writes)
        self.events.append(TraceEvent(
            window_index=window_index, pc=pc, word=decoded.word,
            kind=kind, reads=reads, writes=writes, mem_addr=mem_addr,
            mem_size=decoded.size, is_load=kind in (KIND_LOAD, KIND_FLOAD),
            is_syscall=is_syscall, write_values=write_values))
