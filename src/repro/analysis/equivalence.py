"""Equivalence classes over LIVE fault sites.

Two live SEU sites are *outcome-equivalent* when the corrupted value
first meets the same dynamic instruction with the same bit flipped:

* register flips ``(cls, reg, bit)`` striking at different times with no
  intervening access to the register leave identical register-file state
  at the shared first-read instruction, so every architectural event
  from there on is identical;
* execute/load/store-value flips are applied at their eligible
  transaction, so two fault times that resolve to the same transaction
  (and bit) are literally the same experiment.

The liveness engine encodes this as ``SiteVerdict.class_key``; sites
without a key (PC redirects, fetch/decode corruptions, taints) stay
singletons.  A campaign then runs one *representative* per class and
re-expands the result with the class weight (``campaign/results.py``),
reproducing the unpruned estimator exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.fault import Fault
from .liveness import SiteVerdict


@dataclass
class SiteClass:
    """One equivalence class of outcome-identical live fault sites."""

    key: tuple
    representative: Fault
    members: list[Fault] = field(default_factory=list)

    @property
    def weight(self) -> int:
        """Sample multiplicity: how many drawn sites this class stands
        for (NOT the full population class size — using the multiplicity
        keeps the re-expanded estimator identical to the unpruned one)."""
        return len(self.members)


def build_classes(classified) -> list[SiteClass]:
    """Group ``(fault, verdict)`` pairs of LIVE sites into classes.

    Order-stable: classes appear in first-member order and the first
    member becomes the representative, so a fixed RNG stream yields a
    fixed experiment list.
    """
    groups: dict[tuple, SiteClass] = {}
    order: list[SiteClass] = []
    singletons = 0
    for fault, verdict in classified:
        if isinstance(verdict, SiteVerdict) and verdict.masked:
            raise ValueError("build_classes expects LIVE sites only")
        key = verdict.class_key
        if key is None:
            key = ("singleton", singletons)
            singletons += 1
        site_class = groups.get(key)
        if site_class is None:
            site_class = SiteClass(key=key, representative=fault)
            groups[key] = site_class
            order.append(site_class)
        site_class.members.append(fault)
    return order
