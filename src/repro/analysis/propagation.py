"""Fault-propagation graphs over the golden def-use trace.

Given where a fault strikes, walk the golden run's committed-instruction
stream forward and build the chain the corruption travels: the **fault
site** taints a register or memory bytes, every instruction that
consumes a tainted value becomes a corrupted **def** (its own writes now
tainted), tainted stores become **store** nodes, and syscalls that can
observe tainted state become **output** nodes.  A terminal **outcome**
node (the experiment's classified outcome, or its crash trap) closes the
graph, so the path *fault site → corrupted defs → outputs / trap* is
always complete.

This is an explanation over the *golden* instruction stream — the same
approximation :class:`~repro.analysis.liveness.LivenessAnalysis` rests
on.  Once the faulty run's control flow diverges the golden trace no
longer describes it, which is exactly where the flight recorder's
first-divergence record (``repro.telemetry.flight``) takes over; the
graph marks that horizon rather than speculating past it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.fault import Fault, LocationKind
from ..isa.instructions import decode as decode_word
from ..isa.registers import fp_reg_name, int_reg_name
from ..isa.traps import IllegalInstruction
from .liveness import EXECUTE_KINDS, MEM_KINDS
from .trace import DefUseTracer, TraceEvent

# Graphs are explanations, not dumps: past this many nodes the chain is
# summarised with ``truncated`` instead of enumerated.
DEFAULT_MAX_NODES = 48


def _reg_label(cls: str, reg: int) -> str:
    name = int_reg_name(reg) if cls == "int" else fp_reg_name(reg)
    return f"{cls} {name}"


def _event_label(event: TraceEvent) -> str:
    try:
        name = decode_word(event.word).name
    except IllegalInstruction:  # pragma: no cover - committed words
        name = f"word {event.word:#010x}"
    return f"{name} @ pc {event.pc:#x}"


@dataclass
class PropagationGraph:
    """fault site → corrupted defs → outputs / trap, as node+edge lists.

    Node kinds: ``fault`` (the root), ``def`` (instruction consuming a
    tainted value), ``store`` (tainted memory write), ``output``
    (syscall observing tainted state), ``outcome`` (the terminal
    classification).  Every node is a plain dict so the graph serialises
    straight into result JSON and run manifests.
    """

    nodes: list[dict] = field(default_factory=list)
    edges: list[tuple[int, int]] = field(default_factory=list)
    truncated: bool = False

    def add_node(self, kind: str, label: str, *, pc: int | None = None,
                 index: int | None = None,
                 window: int | None = None) -> int:
        node_id = len(self.nodes)
        self.nodes.append({"id": node_id, "kind": kind, "label": label,
                           "pc": pc, "index": index, "window": window})
        return node_id

    def add_edge(self, src: int, dst: int) -> None:
        if (src, dst) not in self.edges:
            self.edges.append((src, dst))

    def node_count(self) -> int:
        return len(self.nodes)

    def as_dict(self) -> dict:
        return {
            "nodes": [dict(node) for node in self.nodes],
            "edges": [list(edge) for edge in self.edges],
            "truncated": self.truncated,
        }

    def describe(self) -> str:
        """One line per node with its incoming edges — the postmortem
        rendering used by ``gemfi report`` and the directed tests."""
        incoming: dict[int, list[int]] = {}
        for src, dst in self.edges:
            incoming.setdefault(dst, []).append(src)
        lines = []
        for node in self.nodes:
            srcs = incoming.get(node["id"], [])
            arrow = (" <- " + ",".join(f"#{s}" for s in sorted(srcs))
                     if srcs else "")
            lines.append(f"#{node['id']} [{node['kind']}] "
                         f"{node['label']}{arrow}")
        if self.truncated:
            lines.append("... (truncated)")
        return "\n".join(lines)


class _Walker:
    """Forward taint walk from the strike point to program end."""

    def __init__(self, trace: DefUseTracer, fault: Fault,
                 max_nodes: int) -> None:
        self.events = trace.events
        self.fault = fault
        self.max_nodes = max_nodes
        self.graph = PropagationGraph()
        # Current owner node of each tainted location.
        self.reg_taint: dict[tuple[str, int], int] = {}
        self.mem_taint: dict[int, int] = {}
        self.window = [gidx for gidx, event in enumerate(self.events)
                       if event.window_index is not None]

    # -- strike resolution ---------------------------------------------------

    def _strike_gidx(self) -> int | None:
        """Trace index of FI-window commit slot ``fault.time``; slot
        n+1 is the deactivating fi_activate_inst (cf. liveness)."""
        if not self.window:
            return None
        t = max(1, self.fault.time)
        n = len(self.window)
        if t <= n:
            return self.window[t - 1]
        gidx = self.window[-1] + 1
        return gidx if gidx < len(self.events) else None

    def _first_stage_event(self, kinds: frozenset) -> int | None:
        """Trace index of the first *kinds* transaction at FI-window
        position >= fault.time (the stage-queue strike rule)."""
        t = max(1, self.fault.time)
        for gidx in self.window:
            event = self.events[gidx]
            if event.window_index >= t and event.kind in kinds:
                return gidx
        return None

    # -- taint seeding -------------------------------------------------------

    def seed(self) -> int:
        """Create the root fault node, seed the taint sets, and return
        the trace index the forward scan starts at."""
        fault = self.fault
        loc = fault.location
        bits = fault.behavior.bits
        bit_txt = (f" bit {','.join(str(b) for b in bits)}"
                   if bits else "")
        graph = self.graph
        if loc in (LocationKind.INT_REG, LocationKind.FP_REG):
            cls = "int" if loc is LocationKind.INT_REG else "fp"
            strike = self._strike_gidx()
            root = graph.add_node(
                "fault",
                f"SEU {_reg_label(cls, fault.reg_index)}{bit_txt} "
                f"@ inst {fault.time}",
                window=fault.time)
            if fault.reg_index != 31:      # read() pins the zero register
                self.reg_taint[(cls, fault.reg_index)] = root
            # The corrupted register is readable from the strike commit
            # onward; the strike event's own reads happen pre-flip.
            return (strike + 1) if strike is not None else len(self.events)
        if loc is LocationKind.PC:
            graph.add_node("fault", f"PC corruption{bit_txt} "
                                    f"@ inst {fault.time}",
                           window=fault.time)
            # Control corruption: the golden stream stops describing the
            # run immediately; only the outcome edge remains.
            return len(self.events)
        if loc in (LocationKind.FETCH, LocationKind.DECODE):
            strike = self._strike_gidx()
            what = ("fetched word" if loc is LocationKind.FETCH
                    else f"decode {fault.operand_role} field")
            root = graph.add_node("fault",
                                  f"{what}{bit_txt} @ inst {fault.time}",
                                  window=fault.time)
            if strike is None:
                return len(self.events)
            # The struck instruction itself is the first corrupted def:
            # its writes (conservatively, whatever the golden word
            # writes) carry the corruption.
            event = self.events[strike]
            node = graph.add_node("def", _event_label(event),
                                  pc=event.pc, index=strike,
                                  window=event.window_index)
            graph.add_edge(root, node)
            self._taint_writes(event, node)
            return strike + 1
        # EXECUTE / MEM stage queues strike the first eligible
        # transaction at window position >= time.
        kinds = EXECUTE_KINDS if loc is LocationKind.EXECUTE else MEM_KINDS
        stage = "execute" if loc is LocationKind.EXECUTE else "mem"
        gidx = self._first_stage_event(kinds)
        root = graph.add_node("fault",
                              f"{stage} stage{bit_txt} "
                              f"@ inst {fault.time}",
                              window=fault.time)
        if gidx is None:
            return len(self.events)
        event = self.events[gidx]
        node = graph.add_node("def", _event_label(event), pc=event.pc,
                              index=gidx, window=event.window_index)
        graph.add_edge(root, node)
        self._taint_writes(event, node)
        return gidx + 1

    def _taint_writes(self, event: TraceEvent, node: int) -> None:
        for cls, reg in event.writes:
            if reg != 31:
                self.reg_taint[(cls, reg)] = node
        if event.mem_addr is not None and not event.is_load:
            for byte in range(event.mem_addr,
                              event.mem_addr + event.mem_size):
                self.mem_taint[byte] = node

    # -- the forward scan ----------------------------------------------------

    def walk(self, start: int) -> None:
        graph = self.graph
        for gidx in range(start, len(self.events)):
            if graph.node_count() >= self.max_nodes:
                graph.truncated = True
                break
            event = self.events[gidx]
            sources = self._tainted_sources(event)
            if not sources:
                # Clean event: an untainted write wipes stale taint.
                for key in event.writes:
                    self.reg_taint.pop(key, None)
                if event.mem_addr is not None and not event.is_load:
                    for byte in range(event.mem_addr,
                                      event.mem_addr + event.mem_size):
                        self.mem_taint.pop(byte, None)
                continue
            if event.is_syscall:
                kind = "output"
                label = f"syscall observes tainted state @ pc {event.pc:#x}"
            elif event.mem_addr is not None and not event.is_load:
                kind = "store"
                label = (f"{_event_label(event)} -> "
                         f"mem {event.mem_addr:#x}")
            else:
                kind = "def"
                label = _event_label(event)
            node = graph.add_node(kind, label, pc=event.pc, index=gidx,
                                  window=event.window_index)
            for src in sorted(sources):
                graph.add_edge(src, node)
            self._taint_writes(event, node)

    def _tainted_sources(self, event: TraceEvent) -> set[int]:
        sources: set[int] = set()
        for key in event.reads:
            node = self.reg_taint.get(key)
            if node is not None:
                sources.add(node)
        if event.is_load and event.mem_addr is not None:
            for byte in range(event.mem_addr,
                              event.mem_addr + event.mem_size):
                node = self.mem_taint.get(byte)
                if node is not None:
                    sources.add(node)
        if event.is_syscall and self.mem_taint:
            # A syscall is a memory-read barrier (cf. the liveness
            # store-byte scan): tainted bytes may be what it writes out.
            sources.update(self.mem_taint.values())
        return sources

    # -- terminal node -------------------------------------------------------

    def finish(self, outcome: str | None,
               crash_reason: str | None) -> PropagationGraph:
        graph = self.graph
        label = outcome or "unclassified"
        if crash_reason:
            label = f"{label} ({crash_reason})"
        terminal = graph.add_node("outcome", label)
        has_out = {src for src, _ in graph.edges}
        leaves = [node["id"] for node in graph.nodes
                  if node["id"] != terminal
                  and node["id"] not in has_out]
        for leaf in leaves or [0]:
            graph.add_edge(leaf, terminal)
        return graph


def build_propagation_graph(trace: DefUseTracer, fault: Fault,
                            outcome: str | None = None,
                            crash_reason: str | None = None,
                            max_nodes: int = DEFAULT_MAX_NODES
                            ) -> PropagationGraph:
    """Build the fault-propagation graph of one experiment.

    *trace* is the golden run's def-use trace (``CampaignRunner.
    ensure_trace()``), *fault* the experiment's (first) fault, *outcome*
    / *crash_reason* the classified result that terminates the graph.
    """
    walker = _Walker(trace, fault, max_nodes)
    start = walker.seed()
    walker.walk(start)
    return walker.finish(outcome, crash_reason)
