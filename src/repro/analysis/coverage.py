"""Fault-space coverage analytics over campaign result streams.

ZOFI frames fault-injection evaluation as *coverage analysis* over the
injection space; this module is that lens for the GemFI reproduction.
A :class:`FaultSpaceMap` enumerates the campaign's fault space from the
generator configuration — sites x cycle-windows x bit positions, the
exact population :meth:`~repro.campaign.generator.SEUGenerator.
fault_space_size` feeds to the Leveugle sample-size formula — and
accounts every experiment result into it:

* **space accounting** — how many distinct fault sites the campaign has
  actually visited, per location and overall, never exceeding the
  enumerated space (a weighted class representative visits exactly its
  own site; the other members of its liveness equivalence class enter
  the *weight*, not the site count — conservative by construction);
* **outcome heatmaps** — per-dimension outcome distributions (fault
  location, bit position, injection-cycle decile, destination register,
  PC region), each cell carrying a Wilson score interval computed with
  the Kish effective sample size of its weighted population;
* **convergence tracking** — running outcome-rate estimates with CI
  half-widths and a "margin reached at +-X%" indicator, the
  observability groundwork for sequential-stopping campaigns.

Everything here is **read-only** over existing result streams and
**byte-deterministic**: :meth:`FaultSpaceMap.as_dict` contains no
timestamps, host times or absolute paths, iterates in sorted order and
rounds every float, so ``gemfi coverage --json`` for the same share is
byte-identical across reruns.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field

from ..core.fault import Fault, LocationKind
from ..core.parser import FaultParseError, parse_fault_file

# Canonical outcome column order (repro.campaign.classify.OUTCOME_ORDER
# as strings; unknown outcomes sort after these).
OUTCOME_ORDER = ("crashed", "non_propagated", "strictly_correct",
                 "correct", "sdc")

LOCATION_LABELS = {
    LocationKind.INT_REG: "int regfile",
    LocationKind.FP_REG: "fp regfile",
    LocationKind.PC: "pc",
    LocationKind.FETCH: "fetch",
    LocationKind.DECODE: "decode",
    LocationKind.EXECUTE: "execute",
    LocationKind.MEM: "mem",
}

#: white-to-colour ramp anchors for the SVG heatmaps, per outcome.
OUTCOME_COLORS = {
    "crashed": (192, 57, 43),
    "non_propagated": (127, 140, 141),
    "strictly_correct": (39, 174, 96),
    "correct": (46, 139, 87),
    "sdc": (142, 68, 173),
}
_DEFAULT_COLOR = (42, 111, 181)

DIMENSIONS = ("location", "bit", "time_decile", "register", "pc_region")

DIMENSION_TITLES = {
    "location": "fault location",
    "bit": "bit position",
    "time_decile": "injection-cycle decile",
    "register": "destination register",
    "pc_region": "PC region",
}


def _space_terms(locations=None):
    """(location, slots-per-time-unit multiplier, width) terms of the
    fault-space product, imported from the generator so the two can
    never disagree.  Lazy import: ``repro.campaign.generator`` imports
    ``repro.analysis.equivalence`` at module scope, so a module-level
    import here would be a cycle."""
    from ..campaign.generator import DEFAULT_LOCATIONS, LOCATION_WIDTHS
    locations = tuple(locations) if locations else DEFAULT_LOCATIONS
    terms = []
    for location in locations:
        width = LOCATION_WIDTHS[location]
        multiplier = 32 if location in (LocationKind.INT_REG,
                                        LocationKind.FP_REG) else 1
        terms.append((location, multiplier, width))
    return terms


def _wilson(success_weight: float, total_weight: float,
            effective_n: float, confidence: float
            ) -> tuple[float, float]:
    from ..campaign.sampling import (
        weighted_proportion_confidence_interval,
    )
    return weighted_proportion_confidence_interval(
        success_weight, total_weight, effective_n,
        confidence=confidence)


def _round(value: float, digits: int = 6) -> float:
    return round(float(value), digits)


def outcome_columns(outcomes) -> list[str]:
    """Canonical-then-alphabetical outcome order over *outcomes*."""
    present = set(outcomes)
    ordered = [o for o in OUTCOME_ORDER if o in present]
    return ordered + sorted(present - set(OUTCOME_ORDER))


# -- per-cell accumulation ----------------------------------------------------


@dataclass
class CoverageCell:
    """Weighted outcome tally of one heatmap cell."""

    n: int = 0
    sum_w: float = 0.0
    sum_w2: float = 0.0
    outcome_weights: dict[str, float] = field(default_factory=dict)

    def add(self, outcome: str, weight: float) -> None:
        self.n += 1
        self.sum_w += weight
        self.sum_w2 += weight * weight
        self.outcome_weights[outcome] = \
            self.outcome_weights.get(outcome, 0.0) + weight

    @property
    def effective_n(self) -> float:
        """Kish n_eff = (sum w)^2 / sum(w^2) of the cell's weights."""
        return self.sum_w * self.sum_w / self.sum_w2 \
            if self.sum_w2 > 0 else 0.0

    def as_dict(self, confidence: float) -> dict:
        outcomes = {}
        for outcome in outcome_columns(self.outcome_weights):
            weight = self.outcome_weights[outcome]
            low, high = _wilson(weight, self.sum_w, self.effective_n,
                                confidence)
            rate = weight / self.sum_w if self.sum_w else 0.0
            outcomes[outcome] = {
                "weight": _round(weight), "rate": _round(rate),
                "ci_low": _round(low), "ci_high": _round(high),
            }
        return {"n": self.n, "weight": _round(self.sum_w),
                "effective_n": _round(self.effective_n),
                "outcomes": outcomes}


# -- convergence --------------------------------------------------------------


class ConvergenceTracker:
    """Running outcome-rate estimates with Wilson half-widths.

    Feed results in campaign order; after each one the tracker knows
    the weighted rate of every outcome seen so far, the Kish effective
    sample size, the widest current CI half-width, and — once every
    half-width has shrunk to *margin* — the experiment index at which
    the campaign's target precision was reached (the "2501 experiments
    for 99% +-1%" criterion of the paper, observed live instead of
    sized up front)."""

    def __init__(self, confidence: float = 0.99,
                 margin: float = 0.01) -> None:
        self.confidence = confidence
        self.margin = margin
        self.experiments = 0
        self.sum_w = 0.0
        self.sum_w2 = 0.0
        self.outcome_weights: dict[str, float] = {}
        self.margin_reached_at: int | None = None
        # (experiment index, max half-width) after every add.
        self.history: list[tuple[int, float]] = []

    @property
    def effective_n(self) -> float:
        return self.sum_w * self.sum_w / self.sum_w2 \
            if self.sum_w2 > 0 else 0.0

    def add(self, outcome: str, weight: float = 1.0) -> None:
        self.experiments += 1
        weight = max(0.0, float(weight))
        self.sum_w += weight
        self.sum_w2 += weight * weight
        self.outcome_weights[outcome] = \
            self.outcome_weights.get(outcome, 0.0) + weight
        half = self.max_half_width()
        self.history.append((self.experiments, half))
        if self.margin_reached_at is None and half <= self.margin:
            self.margin_reached_at = self.experiments

    def interval(self, outcome: str) -> tuple[float, float, float]:
        """(rate, ci_low, ci_high) of *outcome* right now."""
        weight = self.outcome_weights.get(outcome, 0.0)
        low, high = _wilson(weight, self.sum_w, self.effective_n,
                            self.confidence)
        rate = weight / self.sum_w if self.sum_w else 0.0
        return rate, low, high

    def half_width(self, outcome: str) -> float:
        rate, low, high = self.interval(outcome)
        del rate
        return (high - low) / 2.0

    def max_half_width(self) -> float:
        """The widest per-outcome half-width — the campaign has
        converged only when its least certain rate has."""
        if not self.outcome_weights:
            return 1.0
        return max(self.half_width(outcome)
                   for outcome in self.outcome_weights)

    def as_dict(self, history_points: int = 32) -> dict:
        rates = {}
        for outcome in outcome_columns(self.outcome_weights):
            rate, low, high = self.interval(outcome)
            rates[outcome] = {
                "rate": _round(rate), "ci_low": _round(low),
                "ci_high": _round(high),
                "half_width": _round((high - low) / 2.0),
            }
        return {
            "experiments": self.experiments,
            "effective_n": _round(self.effective_n),
            "confidence": self.confidence,
            "margin": self.margin,
            "max_half_width": _round(self.max_half_width()),
            "margin_reached": self.margin_reached_at is not None,
            "margin_reached_at": self.margin_reached_at,
            "rates": rates,
            "history": [[n, _round(half)] for n, half
                        in _downsample(self.history, history_points)],
        }


def _downsample(points: list, limit: int) -> list:
    """At most *limit* points, always keeping the last one (the
    current state) — deterministic even stride, no interpolation."""
    if limit <= 0 or len(points) <= limit:
        return list(points)
    stride = (len(points) - 1) / (limit - 1)
    picked = [points[round(i * stride)] for i in range(limit - 1)]
    return picked + [points[-1]]


# -- the map ------------------------------------------------------------------


class FaultSpaceMap:
    """Enumerates a campaign's fault space and accounts results into it.

    *window* is the FI window's committed-instruction count (a
    :class:`~repro.campaign.generator.WindowProfile`, or the bare int,
    or None when unknown — a hand-built share with no golden profile);
    the enumerated total then exactly matches
    ``SEUGenerator.fault_space_size()`` for the same profile and
    *locations*.  :meth:`account` takes
    :class:`~repro.campaign.runner.ExperimentResult` objects or the
    result dicts workers write to the share, in campaign order.
    """

    def __init__(self, window=None, locations=None,
                 confidence: float = 0.99, margin: float = 0.01,
                 time_bins: int = 10, pc_regions: int = 8) -> None:
        if window is not None and not isinstance(window, int):
            window = int(getattr(window, "committed", window))
        self.window = window
        self._locations = tuple(locations) if locations else None
        self.confidence = confidence
        self.time_bins = max(1, time_bins)
        self.pc_regions = max(1, pc_regions)
        self.tracker = ConvergenceTracker(confidence=confidence,
                                          margin=margin)
        self.accounted = 0
        self.executed = 0
        self.predicted = 0
        self.sampled_weight = 0.0
        self._sites: set[tuple] = set()
        self._sites_by_location: dict[str, set] = {}
        self._cells: dict[str, dict] = {dim: {} for dim in
                                        ("location", "bit",
                                         "time_decile", "register")}
        # (pc, outcome, weight) samples; PC regions need the global
        # extent, so their cells are bucketed at render time.
        self._pc_samples: list[tuple[int, str, float]] = []

    # -- the enumerated space --------------------------------------------------

    def locations(self) -> tuple:
        if self._locations is not None:
            return self._locations
        from ..campaign.generator import DEFAULT_LOCATIONS
        return DEFAULT_LOCATIONS

    def space_per_location(self) -> dict[str, int] | None:
        """Enumerated site count per location, or None when the FI
        window length is unknown."""
        if self.window is None:
            return None
        slots = max(1, self.window)
        return {LOCATION_LABELS[location]: slots * multiplier * width
                for location, multiplier, width
                in _space_terms(self.locations())}

    def total_space_size(self) -> int | None:
        """|Location| x |time| x |bit| — must agree exactly with
        ``SEUGenerator.fault_space_size()``."""
        per_location = self.space_per_location()
        if per_location is None:
            return None
        return sum(per_location.values())

    # -- accounting ------------------------------------------------------------

    def account(self, result) -> bool:
        """Fold one experiment result into the map.  Returns False (and
        counts the experiment, so totals still reconcile) when the
        record carries no parseable fault."""
        entry = self._normalise(result)
        self.accounted += 1
        weight = entry["weight"]
        outcome = entry["outcome"]
        if entry["predicted"]:
            self.predicted += 1
        else:
            self.executed += 1
        self.sampled_weight += weight
        self.tracker.add(outcome, weight)
        fault = entry["fault"]
        if fault is None:
            return False
        location = fault.location
        label = LOCATION_LABELS.get(location, location.name.lower())
        bit = fault.behavior.bits[0] if fault.behavior.bits else None
        register = fault.reg_index if location in (
            LocationKind.INT_REG, LocationKind.FP_REG) else None
        # One result visits exactly its own site; class members it
        # stands for stay in the weight, keeping covered <= space.
        site = (location.name, fault.time, bit, register or 0)
        self._sites.add(site)
        self._sites_by_location.setdefault(label, set()).add(site)
        self._cell("location", label).add(outcome, weight)
        if bit is not None:
            self._cell("bit", bit).add(outcome, weight)
        fraction = entry["time_fraction"]
        if fraction is not None:
            decile = min(self.time_bins - 1,
                         max(0, int(fraction * self.time_bins)))
            self._cell("time_decile", decile).add(outcome, weight)
        if register is not None:
            self._cell("register", register).add(outcome, weight)
        pc = entry["pc"]
        if pc is not None:
            self._pc_samples.append((pc, outcome, weight))
        return True

    def account_all(self, results) -> int:
        count = 0
        for result in results:
            self.account(result)
            count += 1
        return count

    def _cell(self, dimension: str, key) -> CoverageCell:
        cells = self._cells[dimension]
        if key not in cells:
            cells[key] = CoverageCell()
        return cells[key]

    @staticmethod
    def _normalise(result) -> dict:
        if isinstance(result, dict):
            fault = None
            for key in ("fault_file", "fault"):
                text = result.get(key)
                if not text:
                    continue
                try:
                    faults = parse_fault_file(text)
                except FaultParseError:
                    continue
                if faults:
                    fault = faults[0]
                    break
            fraction = result.get("time_fraction")
            pc = result.get("injection_pc")
            return {
                "fault": fault,
                "outcome": result.get("outcome", "unknown"),
                "weight": max(0.0, float(result.get("weight") or 1.0)),
                "predicted": bool(result.get("predicted")),
                "time_fraction": float(fraction)
                if isinstance(fraction, (int, float)) else None,
                "pc": int(pc) if isinstance(pc, int) else None,
            }
        fault = result.fault
        outcome = getattr(result.outcome, "value", result.outcome)
        pc = getattr(result, "injection_pc", None)
        return {
            "fault": fault if isinstance(fault, Fault) else None,
            "outcome": outcome,
            "weight": max(0.0, float(getattr(result, "weight", 1.0))),
            "predicted": bool(getattr(result, "predicted", False)),
            "time_fraction": getattr(result, "time_fraction", None),
            "pc": int(pc) if isinstance(pc, int) else None,
        }

    # -- views -----------------------------------------------------------------

    def covered_sites(self) -> int:
        total = self.total_space_size()
        covered = len(self._sites)
        return covered if total is None else min(covered, total)

    def _cell_label(self, dimension: str, key) -> str:
        if dimension == "location":
            return str(key)
        if dimension == "bit":
            return f"bit {key}"
        if dimension == "register":
            return f"r{key}"
        if dimension == "time_decile":
            low = key / self.time_bins
            high = (key + 1) / self.time_bins
            return f"t in [{low:.1f},{high:.1f})"
        return str(key)

    def _pc_cells(self) -> list[tuple[str, CoverageCell]]:
        if not self._pc_samples:
            return []
        pcs = [pc for pc, _, _ in self._pc_samples]
        low, high = min(pcs), max(pcs)
        span = max(1, high - low + 1)
        size = max(1, -(-span // self.pc_regions))  # ceil division
        cells: dict[int, CoverageCell] = {}
        for pc, outcome, weight in self._pc_samples:
            index = min(self.pc_regions - 1, (pc - low) // size)
            cells.setdefault(index, CoverageCell()).add(outcome, weight)
        out = []
        for index in sorted(cells):
            lo = low + index * size
            hi = min(high, lo + size - 1)
            out.append((f"{lo:#x}-{hi:#x}", cells[index]))
        return out

    def heatmap(self, dimension: str) -> list[tuple[str, CoverageCell]]:
        """Sorted (label, cell) rows of one dimension's heatmap."""
        if dimension == "pc_region":
            return self._pc_cells()
        if dimension == "location":
            order = [LOCATION_LABELS[location]
                     for location in sorted(LOCATION_LABELS,
                                            key=lambda k: k.value)]
            cells = self._cells["location"]
            keys = [label for label in order if label in cells]
            keys += sorted(set(cells) - set(keys))
            return [(key, cells[key]) for key in keys]
        cells = self._cells[dimension]
        return [(self._cell_label(dimension, key), cells[key])
                for key in sorted(cells)]

    def as_dict(self) -> dict:
        total = self.total_space_size()
        covered = self.covered_sites()
        per_location = self.space_per_location()
        space_rows = {}
        for label in sorted(self._sites_by_location):
            sites = len(self._sites_by_location[label])
            row = {"covered": sites}
            if per_location and label in per_location:
                size = per_location[label]
                row["covered"] = min(sites, size)
                row["size"] = size
                row["fraction"] = _round(row["covered"] / size, 8)
            space_rows[label] = row
        heatmaps = {}
        for dimension in DIMENSIONS:
            heatmaps[dimension] = {
                "title": DIMENSION_TITLES[dimension],
                "cells": [dict(label=label,
                               **cell.as_dict(self.confidence))
                          for label, cell in self.heatmap(dimension)],
            }
        return {
            "config": {
                "confidence": self.confidence,
                "margin": self.tracker.margin,
                "time_bins": self.time_bins,
                "pc_regions": self.pc_regions,
                "window": self.window,
            },
            "space": {
                "total": total,
                "covered_sites": covered,
                "covered_fraction":
                    _round(covered / total, 8) if total else None,
                "sampled_weight": _round(self.sampled_weight),
                "per_location": space_rows,
            },
            "accounted": {
                "experiments": self.accounted,
                "executed": self.executed,
                "predicted": self.predicted,
                "weight": _round(self.sampled_weight),
                "effective_n": _round(self.tracker.effective_n),
            },
            "convergence": self.tracker.as_dict(),
            "heatmaps": heatmaps,
        }


# -- share loading ------------------------------------------------------------


def _window_from_share(share_dir: str) -> int | None:
    """The FI window's committed-instruction count: from the golden
    profile the coordinator publishes (``golden.pkl``), else inferred
    from the results themselves (``time_fraction = time / window``
    inverts exactly for any result injected strictly inside the
    window), else None."""
    path = os.path.join(share_dir, "golden.pkl")
    if os.path.exists(path):
        import pickle
        try:
            with open(path, "rb") as handle:
                golden = pickle.load(handle)
            committed = int(golden.profile.committed)
            if committed > 0:
                return committed
        except Exception:  # noqa: BLE001 - any unreadable pickle
            pass
    candidates = []
    for entry in iter_share_results(share_dir):
        fraction = entry.get("time_fraction")
        if not isinstance(fraction, (int, float)) or not \
                0 < fraction < 1:
            continue
        fault = None
        for key in ("fault_file", "fault"):
            text = entry.get(key)
            if not text:
                continue
            try:
                faults = parse_fault_file(text)
            except FaultParseError:
                continue
            if faults:
                fault = faults[0]
                break
        if fault is not None:
            candidates.append(round(fault.time / fraction))
    return max(candidates) if candidates else None


def iter_share_results(share_dir: str):
    """Result records of a share in experiment-name order (the
    campaign's generation order — deterministic, unlike mtimes)."""
    results_dir = os.path.join(share_dir, "results")
    if not os.path.isdir(results_dir):
        return
    for name in sorted(os.listdir(results_dir)):
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(results_dir, name), "r",
                      encoding="utf-8") as handle:
                yield json.load(handle)
        except (OSError, ValueError):
            continue  # mid-write, exactly like read_status


def coverage_from_share(share_dir: str, confidence: float = 0.99,
                        margin: float = 0.01, time_bins: int = 10,
                        pc_regions: int = 8) -> FaultSpaceMap:
    """Build a :class:`FaultSpaceMap` from a share directory's results
    (read-only: nothing on the share is written or touched)."""
    space = FaultSpaceMap(window=_window_from_share(share_dir),
                          confidence=confidence, margin=margin,
                          time_bins=time_bins, pc_regions=pc_regions)
    space.account_all(iter_share_results(share_dir))
    return space


def coverage_summary(payload: dict) -> dict:
    """The status-frame view of a coverage payload: everything except
    the (bulky) heatmaps and convergence history."""
    convergence = dict(payload["convergence"])
    convergence.pop("history", None)
    return {"space": payload["space"],
            "accounted": payload["accounted"],
            "convergence": convergence}


def coverage_gauges(payload: dict) -> dict[str, float]:
    """Flatten a coverage payload into ``coverage.*`` gauge values for
    a :class:`~repro.telemetry.metrics.MetricsRegistry` (None-valued
    quantities are omitted: gauges are numeric)."""
    space = payload["space"]
    convergence = payload["convergence"]
    gauges: dict[str, float] = {
        "coverage.covered_sites": space["covered_sites"],
        "coverage.sampled_weight": space["sampled_weight"],
        "coverage.accounted": payload["accounted"]["experiments"],
        "coverage.effective_n": payload["accounted"]["effective_n"],
        "coverage.max_half_width": convergence["max_half_width"],
        "coverage.margin_reached":
            1 if convergence["margin_reached"] else 0,
    }
    if space["total"] is not None:
        gauges["coverage.space_total"] = space["total"]
    if space["covered_fraction"] is not None:
        gauges["coverage.covered_fraction"] = \
            space["covered_fraction"]
    if convergence["margin_reached_at"] is not None:
        gauges["coverage.margin_reached_at"] = \
            convergence["margin_reached_at"]
    for outcome, row in convergence["rates"].items():
        gauges[f"coverage.outcome_rate.{outcome}"] = row["rate"]
        gauges[f"coverage.outcome_half_width.{outcome}"] = \
            row["half_width"]
    return gauges


# -- rendering ----------------------------------------------------------------


def _fmt_pct(value: float) -> str:
    return f"{value * 100:.1f}%"


def _convergence_line(payload: dict) -> str:
    convergence = payload["convergence"]
    margin = convergence["margin"]
    confidence = convergence["confidence"]
    if convergence["margin_reached"]:
        return (f"margin +-{margin * 100:g}% at "
                f"{confidence * 100:g}% confidence: reached after "
                f"{convergence['margin_reached_at']} experiments")
    return (f"margin +-{margin * 100:g}% at {confidence * 100:g}% "
            f"confidence: not reached (max half-width "
            f"+-{_fmt_pct(convergence['max_half_width'])})")


def _space_line(payload: dict) -> str:
    space = payload["space"]
    accounted = payload["accounted"]
    covered = space["covered_sites"]
    if space["total"] is not None:
        head = (f"{covered}/{space['total']} fault sites visited "
                f"({space['covered_fraction'] * 100:.4g}%)")
    else:
        head = f"{covered} distinct fault sites visited " \
               f"(space size unknown)"
    return (f"{head}; {accounted['experiments']} experiments "
            f"({accounted['executed']} executed, "
            f"{accounted['predicted']} predicted) carrying weight "
            f"{accounted['weight']:g}, effective n "
            f"{accounted['effective_n']:g}")


def render_heatmap_table(payload: dict, dimension: str) -> str:
    """One dimension's heatmap as an aligned ASCII table: rate and
    Wilson interval per outcome per cell."""
    heatmap = payload["heatmaps"][dimension]
    cells = heatmap["cells"]
    outcomes = outcome_columns(
        {o for cell in cells for o in cell["outcomes"]})
    header = ["cell", "n", "weight"] + outcomes
    rows = []
    for cell in cells:
        row = [cell["label"], str(cell["n"]),
               f"{cell['weight']:g}"]
        for outcome in outcomes:
            entry = cell["outcomes"].get(outcome)
            row.append("-" if entry is None else
                       f"{_fmt_pct(entry['rate'])} "
                       f"[{_fmt_pct(entry['ci_low'])},"
                       f"{_fmt_pct(entry['ci_high'])}]")
        rows.append(row)
    widths = [max(len(header[i]), *(len(row[i]) for row in rows))
              if rows else len(header[i]) for i in range(len(header))]
    lines = [f"# {heatmap['title']}",
             "  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for row in rows:
        lines.append("  ".join(c.ljust(w)
                               for c, w in zip(row, widths)))
    if not rows:
        lines.append("(no samples)")
    return "\n".join(lines)


def render_coverage_tables(payload: dict,
                           dimensions=DIMENSIONS) -> str:
    parts = [_space_line(payload), _convergence_line(payload), ""]
    for dimension in dimensions:
        parts.append(render_heatmap_table(payload, dimension))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"


def _md_table(header: list[str], rows: list[list]) -> str:
    lines = ["| " + " | ".join(str(c) for c in header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def coverage_report_tables(payload: dict
                           ) -> tuple[list[str],
                                      list[tuple[str, list, list]]]:
    """The report-section content as structure: (prose lines,
    [(table title, header, rows)...]) — ``gemfi report`` renders the
    same data as Markdown and HTML from this one source."""
    prose = [_space_line(payload) + ".", _convergence_line(payload)
             + "."]
    tables: list[tuple[str, list, list]] = []
    space_rows = payload["space"]["per_location"]
    if space_rows:
        rows = []
        for label in sorted(space_rows):
            row = space_rows[label]
            rows.append([
                label, row.get("size", "?"), row["covered"],
                f"{row['fraction'] * 100:.4g}%"
                if "fraction" in row else "?"])
        tables.append(("Space visited by location",
                       ["location", "space", "visited", "fraction"],
                       rows))
    rates = payload["convergence"]["rates"]
    if rates:
        confidence = payload["convergence"]["confidence"]
        rows = [[outcome, _fmt_pct(row["rate"]),
                 f"[{_fmt_pct(row['ci_low'])}, "
                 f"{_fmt_pct(row['ci_high'])}]",
                 f"+-{_fmt_pct(row['half_width'])}"]
                for outcome, row in
                ((o, rates[o]) for o in outcome_columns(rates))]
        tables.append((f"Outcome rates ({confidence * 100:g}% "
                       f"Wilson intervals)",
                       ["outcome", "rate", "interval", "half-width"],
                       rows))
    for dimension in DIMENSIONS:
        heatmap = payload["heatmaps"][dimension]
        cells = heatmap["cells"]
        if not cells:
            continue
        outcomes = outcome_columns(
            {o for cell in cells for o in cell["outcomes"]})
        rows = []
        for cell in cells:
            row = [cell["label"], cell["n"], f"{cell['weight']:g}"]
            for outcome in outcomes:
                entry = cell["outcomes"].get(outcome)
                row.append("-" if entry is None else
                           f"{_fmt_pct(entry['rate'])} "
                           f"[{_fmt_pct(entry['ci_low'])}, "
                           f"{_fmt_pct(entry['ci_high'])}]")
            rows.append(row)
        tables.append((f"Outcomes by {heatmap['title']}",
                       ["cell", "n", "weight"] + outcomes, rows))
    return prose, tables


def coverage_markdown_sections(payload: dict,
                               level: int = 2) -> list[str]:
    """The "Fault-space coverage" report section as a list of markdown
    blocks (``gemfi report`` nests them under its own heading)."""
    h = "#" * level
    prose, tables = coverage_report_tables(payload)
    parts = [f"{h} Fault-space coverage", ""]
    for line in prose:
        parts += [line, ""]
    for title, header, rows in tables:
        parts += [f"{h}# {title}", "", _md_table(header, rows), ""]
    return parts


def render_coverage_markdown(payload: dict,
                             name: str = "") -> str:
    head = [f"# Fault-space coverage: {name}" if name
            else "# Fault-space coverage", ""]
    body = coverage_markdown_sections(payload, level=2)
    # The standalone document re-titles the first section block.
    return "\n".join(head + body[2:]).rstrip() + "\n"


# -- SVG heatmaps -------------------------------------------------------------


def _xml(text) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _ramp(outcome: str, rate: float) -> str:
    red, green, blue = OUTCOME_COLORS.get(outcome, _DEFAULT_COLOR)
    rate = min(1.0, max(0.0, rate))
    mix = tuple(round(255 + (channel - 255) * rate)
                for channel in (red, green, blue))
    return f"rgb({mix[0]},{mix[1]},{mix[2]})"


def render_coverage_svg(payload: dict, dimension: str,
                        width: int = 720) -> str:
    """One dimension's heatmap as a self-contained SVG grid: one row
    per cell, one column per outcome, fill intensity = outcome rate,
    a ``<title>`` tooltip with the Wilson interval on every box.
    Deterministic: same payload, same bytes."""
    heatmap = payload["heatmaps"][dimension]
    cells = heatmap["cells"]
    outcomes = outcome_columns(
        {o for cell in cells for o in cell["outcomes"]})
    gutter, box_h, header_h = 150, 18, 16
    columns = max(1, len(outcomes))
    box_w = max(24, (width - gutter - 10) // columns)
    height = header_h + max(1, len(cells)) * box_h + 8
    out = [f'<svg xmlns="http://www.w3.org/2000/svg" '
           f'width="{width}" height="{height}" '
           f'font-family="monospace" font-size="10">',
           f'<rect width="{width}" height="{height}" '
           f'fill="#ffffff"/>',
           f'<text x="4" y="11" fill="#333" font-weight="bold">'
           f'{_xml(heatmap["title"])}</text>']
    for column, outcome in enumerate(outcomes):
        x = gutter + column * box_w
        out.append(f'<text x="{x + 2}" y="11" fill="#555">'
                   f'{_xml(outcome[:12])}</text>')
    if not cells:
        out.append(f'<text x="{gutter}" y="{header_h + 12}" '
                   f'fill="#999">no samples</text>')
    for row, cell in enumerate(cells):
        y = header_h + row * box_h
        out.append(f'<text x="4" y="{y + 13}" fill="#333">'
                   f'{_xml(str(cell["label"])[:20])}</text>')
        for column, outcome in enumerate(outcomes):
            x = gutter + column * box_w
            entry = cell["outcomes"].get(outcome)
            if entry is None:
                fill, tip = "#f4f4f4", (f'{cell["label"]} {outcome}: '
                                        f'no samples')
            else:
                fill = _ramp(outcome, entry["rate"])
                tip = (f'{cell["label"]} {outcome}: '
                       f'{_fmt_pct(entry["rate"])} '
                       f'[{_fmt_pct(entry["ci_low"])},'
                       f'{_fmt_pct(entry["ci_high"])}] '
                       f'n={cell["n"]} w={cell["weight"]:g}')
            out.append(
                f'<rect x="{x}" y="{y + 1}" width="{box_w - 2}" '
                f'height="{box_h - 3}" fill="{fill}" '
                f'stroke="#dddddd"><title>{_xml(tip)}</title></rect>')
            if entry is not None:
                luma = 1.0 - 0.75 * min(1.0, entry["rate"])
                color = "#1c2733" if luma > 0.55 else "#ffffff"
                out.append(
                    f'<text x="{x + 3}" y="{y + 13}" '
                    f'fill="{color}">'
                    f'{_fmt_pct(entry["rate"])}</text>')
    out.append("</svg>")
    return "".join(out)
