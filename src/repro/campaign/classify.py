"""Outcome classification (Section IV.B.1).

Every experiment lands in exactly one of the paper's five classes:

* **crashed** — the run failed to terminate successfully (trap, bad
  syscall, or the watchdog reaped a fault-induced hang);
* **non_propagated** — the fault never manifested as an error (it never
  triggered, hit a dead/overwritten register, or landed in unused
  instruction-encoding bits);
* **strictly_correct** — the corrupted value propagated into the
  computation, yet the output is bit-wise identical to the error-free
  run (architectural/algorithmic masking);
* **correct** — output differs but satisfies the application's relaxed
  acceptance criterion (PSNR threshold, decimal digits, ...);
* **sdc** — silent data corruption: terminated normally with an output
  outside the acceptable range.
"""

from __future__ import annotations

from enum import Enum

from ..system.process import ProcessState
from ..workloads.quality import Outputs, extract_outputs
from ..workloads.spec import WorkloadSpec


class Outcome(Enum):
    CRASHED = "crashed"
    NON_PROPAGATED = "non_propagated"
    STRICTLY_CORRECT = "strictly_correct"
    CORRECT = "correct"
    SDC = "sdc"

    @property
    def acceptable(self) -> bool:
        """Fig. 6's *Acceptable* class: the union of correct and strictly
        correct results."""
        return self in (Outcome.STRICTLY_CORRECT, Outcome.CORRECT)


OUTCOME_ORDER = (Outcome.CRASHED, Outcome.NON_PROPAGATED,
                 Outcome.STRICTLY_CORRECT, Outcome.CORRECT, Outcome.SDC)


def classify(spec: WorkloadSpec, golden: Outputs, sim, process,
             injector, run_result) -> Outcome:
    """Classify one finished experiment against the golden outputs."""
    if run_result.status == "limit":
        return Outcome.CRASHED          # hung: reaped by the watchdog
    if process.state == ProcessState.CRASHED:
        return Outcome.CRASHED
    if process.state != ProcessState.EXITED or process.exit_code != 0:
        return Outcome.CRASHED
    outputs = extract_outputs(spec, sim, process)
    if outputs == golden:
        if any(record.propagated for record in injector.records):
            return Outcome.STRICTLY_CORRECT
        return Outcome.NON_PROPAGATED
    if spec.accept(golden, outputs):
        return Outcome.CORRECT
    return Outcome.SDC
