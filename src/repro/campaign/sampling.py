"""Statistical fault-sampling size (Leveugle et al., DATE 2009).

The paper sizes every campaign with this method: "The number of
executions of each application for every experiment varied from 2501 to
2504 ... setting 99% as a target confidence level and 1% as the error
margin."

The estimator treats fault injection as sampling without replacement
from the finite population of N possible faults (every location x time
combination) and asks how many samples n give a +-e confidence interval
at confidence t on the estimated outcome proportion p:

    n = N / (1 + e^2 * (N - 1) / (t^2 * p * (1 - p)))

p = 0.5 maximises the required n (the conservative choice when the true
proportion is unknown).
"""

from __future__ import annotations

import math

# Two-sided z-scores for common confidence levels.
Z_SCORES = {
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.99: 2.5758293035489004,
    0.999: 3.2905267314919255,
}


def z_score(confidence: float) -> float:
    """Two-sided normal quantile for *confidence* (interpolates between
    tabulated levels; exact at 0.90/0.95/0.99/0.999)."""
    if confidence in Z_SCORES:
        return Z_SCORES[confidence]
    if not 0.5 < confidence < 1.0:
        raise ValueError("confidence must be in (0.5, 1.0)")
    levels = sorted(Z_SCORES)
    if confidence < levels[0]:
        return Z_SCORES[levels[0]] * confidence / levels[0]
    for low, high in zip(levels, levels[1:]):
        if low < confidence < high:
            frac = (confidence - low) / (high - low)
            return Z_SCORES[low] + frac * (Z_SCORES[high] - Z_SCORES[low])
    return Z_SCORES[levels[-1]]


def sample_size(population: int, confidence: float = 0.99,
                error_margin: float = 0.01, p: float = 0.5) -> int:
    """Number of fault-injection experiments needed (Leveugle DATE'09).

    *population* is the total fault space N; pass a large value (or
    ``math.inf``) for the usual "N effectively infinite" regime.
    """
    if population <= 0:
        raise ValueError("population must be positive")
    if not 0 < error_margin < 1:
        raise ValueError("error margin must be in (0, 1)")
    if not 0 < p < 1:
        raise ValueError("p must be in (0, 1)")
    t = z_score(confidence)
    if math.isinf(population):
        return math.ceil(t * t * p * (1 - p) / (error_margin ** 2))
    n = population / (
        1 + error_margin ** 2 * (population - 1) / (t * t * p * (1 - p)))
    return math.ceil(min(n, population))


def proportion_confidence_interval(successes: int, trials: int,
                                   confidence: float = 0.95
                                   ) -> tuple[float, float]:
    """Wilson score interval for an outcome-class proportion."""
    if trials <= 0:
        return 0.0, 1.0
    z = z_score(confidence)
    phat = successes / trials
    denom = 1 + z * z / trials
    centre = (phat + z * z / (2 * trials)) / denom
    half = (z * math.sqrt(phat * (1 - phat) / trials
                          + z * z / (4 * trials * trials))) / denom
    return max(0.0, centre - half), min(1.0, centre + half)


def kish_effective_sample_size(weights) -> float:
    """Kish's approximation n_eff = (sum w)^2 / sum(w^2) for a weighted
    sample.  A pruned campaign (``repro.analysis``) runs one weighted
    representative per equivalence class; its confidence intervals must
    use the effective sample size of the reduced population rather than
    the raw experiment count."""
    weights = [float(w) for w in weights if w > 0]
    if not weights:
        return 0.0
    total = sum(weights)
    return total * total / sum(w * w for w in weights)


def weighted_proportion_confidence_interval(
        success_weight: float, total_weight: float,
        effective_n: float, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a weighted outcome proportion, using
    the (Kish) effective sample size in place of the trial count."""
    if total_weight <= 0 or effective_n <= 0:
        return 0.0, 1.0
    z = z_score(confidence)
    phat = min(1.0, max(0.0, success_weight / total_weight))
    n = effective_n
    denom = 1 + z * z / n
    centre = (phat + z * z / (2 * n)) / denom
    half = (z * math.sqrt(phat * (1 - phat) / n
                          + z * z / (4 * n * n))) / denom
    return max(0.0, centre - half), min(1.0, centre + half)


def mean_confidence_interval(values, confidence: float = 0.95
                             ) -> tuple[float, float, float]:
    """(mean, low, high) normal-approximation CI for a sample mean —
    used by the Fig. 7 overhead measurements."""
    values = list(values)
    n = len(values)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(values) / n
    if n == 1:
        return mean, mean, mean
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = z_score(confidence) * math.sqrt(variance / n)
    return mean, mean - half, mean + half
