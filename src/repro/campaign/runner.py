"""Campaign execution: golden run, checkpoint, per-experiment restore.

Implements the methodology of Section IV.B.1:

1. run the application once without faults — this provides the golden
   outputs, the FI-window profile used for fault-time sampling, and (at
   the ``fi_read_init_all`` call, i.e. after boot + initialisation) the
   checkpoint all experiments restore from (Fig. 3);
2. per experiment: restore, install the experiment's fault configuration,
   simulate (optionally starting in the detailed O3 model and dropping to
   atomic once the fault has committed), and classify the outcome.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..compiler import compile_source
from ..core.fault import Fault
from ..core.injector import FaultInjector
from ..core.parser import render_fault_file
from ..sim.checkpoint import dumps_checkpoint, restore_checkpoint
from ..sim.config import SimConfig
from ..sim.simulator import Simulator
from ..workloads.quality import Outputs, extract_outputs
from ..workloads.spec import WorkloadSpec
from .classify import Outcome, classify
from .generator import WindowProfile


@dataclass
class ExperimentResult:
    """Everything recorded about one fault-injection experiment."""

    fault: Fault
    outcome: Outcome
    injected: bool
    propagated: bool | None
    crash_reason: str | None
    instructions: int
    ticks: int
    wall_seconds: float
    console: str
    time_fraction: float          # fault time / FI-window length
    injection_pc: int | None = None
    injection_asm: str = ""
    injection_detail: str = ""
    # Pre-corruption value at the injection point (for FETCH faults
    # this is the original instruction word, used by the Table I
    # per-field analysis).
    injection_before: int | None = None
    # Pruned campaigns (repro.analysis): estimator weight of this result
    # and whether it was predicted rather than simulated.
    weight: float = 1.0
    predicted: bool = False
    # Provenance (repro.telemetry): what produced this result, so the
    # campaign result JSON is self-describing and re-runnable — the
    # workload name, the generator's RNG seed (None for hand-written
    # fault files) and the complete fault input file of the experiment.
    workload: str = ""
    seed: int | None = None
    fault_file: str = ""
    # Flight recorder (repro.telemetry.flight): the first architectural
    # divergence from the golden run, and the def-use propagation graph
    # fault site -> corrupted defs -> outputs/trap.  None when the
    # runner's flight recorder is not enabled.
    divergence: dict | None = None
    propagation: dict | None = None
    # Host-time attribution of wall_seconds (repro.telemetry.profiler):
    # boot (simulator construction / checkpoint restore), window
    # (restore point to first injection), injection (first to last
    # injection) and drain (last injection to completion).  The four
    # values sum to wall_seconds.
    phases: dict | None = None

    def as_dict(self) -> dict:
        return {
            "fault": self.fault.describe(),
            "workload": self.workload,
            "seed": self.seed,
            "fault_file": self.fault_file,
            "outcome": self.outcome.value,
            "injected": self.injected,
            "propagated": self.propagated,
            "crash_reason": self.crash_reason,
            "instructions": self.instructions,
            "ticks": self.ticks,
            "wall_seconds": self.wall_seconds,
            "time_fraction": self.time_fraction,
            "injection_pc": self.injection_pc,
            "injection_asm": self.injection_asm,
            "injection_detail": self.injection_detail,
            "weight": self.weight,
            "predicted": self.predicted,
            "divergence": self.divergence,
            "propagation": self.propagation,
            "phases": self.phases,
        }


def _experiment_phases(start: float, run_start: float, run_end: float,
                       injector) -> dict:
    """Attribute one experiment's wall time to campaign phases.

    ``boot`` is simulator construction (checkpoint restore); ``window``
    runs from the restore point to the first injection; ``injection``
    spans first to last injection; ``drain`` is everything after the
    last fault fired (simulate-to-outcome).  The injector stamps the
    injection host times inside ``_record`` — a per-experiment-rare
    event — so the split costs nothing per instruction.  The four
    phases sum to ``run_end - start``, i.e. exactly ``wall_seconds``.
    """
    boot = run_start - start
    first = getattr(injector, "first_injection_host", None)
    last = getattr(injector, "last_injection_host", None)
    if first is None or last is None:
        window = run_end - run_start
        injection = drain = 0.0
    else:
        window = first - run_start
        injection = last - first
        drain = run_end - last
    return {"boot": boot, "window": window,
            "injection": injection, "drain": drain}


@dataclass
class GoldenRun:
    """Artifacts of the fault-free reference run."""

    outputs: Outputs
    profile: WindowProfile
    checkpoint: bytes | None
    instructions: int
    ticks: int
    wall_seconds: float
    boot_instructions: int      # instructions before the checkpoint
    console: str = ""
    stats_dump: str = ""


class CampaignRunner:
    """Runs fault-injection experiments for one workload."""

    def __init__(self, spec: WorkloadSpec,
                 config: SimConfig | None = None,
                 use_checkpoint: bool = True,
                 detailed_model: str | None = None,
                 watchdog_factor: float = 4.0,
                 bus=None) -> None:
        self.spec = spec
        self.config = config or SimConfig()
        self.use_checkpoint = use_checkpoint
        # Paper methodology: start experiments in the detailed model and
        # switch to atomic after the fault commits.  None = keep the
        # configured model for the whole run.
        self.detailed_model = detailed_model
        self.watchdog_factor = watchdog_factor
        # Optional repro.telemetry trace bus: experiment lifecycle events
        # plus every simulator/injector event of each experiment run.
        self.bus = bus
        # Optional repro.telemetry.spans tracer: per-experiment spans
        # with phase children, threaded into checkpoint save/restore.
        self.tracer = None
        self.asm = compile_source(spec.source)
        self._trace = None
        self._liveness = None
        self._flight = None
        self._flight_interval = None
        self._experiment_index = 0
        self.golden = self._golden_run()
        spec.golden_instructions = self.golden.profile.committed

    # -- golden phase ----------------------------------------------------------

    def _golden_run(self) -> GoldenRun:
        injector = FaultInjector()
        sim = Simulator(self.config, injector=injector)
        sim.load(self.asm, self.spec.name)
        checkpoint: bytes | None = None
        boot_instructions = 0
        start = time.perf_counter()
        if self.use_checkpoint:
            holder: dict[str, bytes] = {}
            sim.on_checkpoint = lambda s: holder.__setitem__(
                "blob", dumps_checkpoint(s))
            result = sim.run(until_checkpoint=True,
                             max_instructions=50_000_000)
            if "blob" not in holder:
                raise RuntimeError(
                    f"workload '{self.spec.name}' never called "
                    "fi_read_init_all(); cannot checkpoint")
            checkpoint = holder["blob"]
            boot_instructions = sim.instructions
            sim.on_checkpoint = None
        result = sim.run(max_instructions=50_000_000)
        wall = time.perf_counter() - start
        if result.status != "completed":
            raise RuntimeError(
                f"golden run of '{self.spec.name}' did not complete: "
                f"{result.status}")
        process = sim.process(0)
        if process.crash_reason:
            raise RuntimeError(
                f"golden run of '{self.spec.name}' crashed: "
                f"{process.crash_reason}")
        if not injector.windows:
            raise RuntimeError(
                f"workload '{self.spec.name}' never completed an "
                "fi_activate window")
        profile = WindowProfile.from_injector_window(injector.windows[0])
        outputs = extract_outputs(self.spec, sim, process)
        return GoldenRun(
            outputs=outputs, profile=profile, checkpoint=checkpoint,
            instructions=result.instructions, ticks=result.ticks,
            wall_seconds=wall, boot_instructions=boot_instructions,
            console=process.console_text(), stats_dump=sim.stats_dump())

    # -- experiment phase ----------------------------------------------------------

    def run_experiment(self, faults: list[Fault] | Fault,
                       seed: int | None = None) -> ExperimentResult:
        if isinstance(faults, Fault):
            faults = [faults]
        index = self._experiment_index
        self._experiment_index += 1
        if self.bus is not None:
            self.bus.emit("experiment_start", tick=0,
                          experiment=index, workload=self.spec.name,
                          faults=[f.describe() for f in faults])
        tracer = self.tracer
        span = None
        owns_span = False
        if tracer is not None:
            # A SharedDirCampaign worker opens the experiment span
            # before calling us; standalone runners open their own.
            span = tracer.current
            if span is None:
                span = tracer.start(f"exp_{index:04d}",
                                    kind="experiment",
                                    experiment=f"exp_{index:04d}")
                owns_span = True
        start = time.perf_counter()
        sim = self._fresh_simulator(faults)
        start_tick = sim.tick
        scanner = None
        if self._flight_interval is not None:
            from ..telemetry.flight import DivergenceScanner
            scanner = DivergenceScanner(self.flight_log())
            sim.injector.install_tracer(scanner)
        start_instructions = sim.instructions
        budget = int(self.golden.instructions * self.watchdog_factor) \
            + 100_000
        run_start = time.perf_counter()
        result = sim.run(max_instructions=start_instructions + budget)
        run_end = time.perf_counter()
        wall = run_end - start
        phases = _experiment_phases(start, run_start, run_end,
                                    sim.injector)
        process = sim.process(0)
        injector = sim.injector
        outcome = classify(self.spec, self.golden.outputs, sim, process,
                           injector, result)
        fault = faults[0]
        window = max(1, self.golden.profile.count_for(fault.location))
        first = injector.records[0] if injector.records else None
        divergence = propagation = None
        if scanner is not None:
            divergence, propagation = self._flight_artifacts(
                scanner, fault, first, outcome, process, index, sim)
        if self.bus is not None:
            self.bus.emit("experiment_end", tick=sim.tick,
                          experiment=index, workload=self.spec.name,
                          outcome=outcome.value,
                          injected=bool(injector.records),
                          wall_seconds=wall)
        if span is not None:
            self._emit_spans(tracer, span, phases, start_tick, sim,
                             injector, outcome, wall,
                             result.instructions - start_instructions,
                             divergence)
            if owns_span:
                tracer.finish(span)
        return ExperimentResult(
            fault=fault,
            outcome=outcome,
            injected=bool(injector.records),
            propagated=(first.propagated if first is not None else None),
            crash_reason=process.crash_reason,
            instructions=result.instructions - start_instructions,
            ticks=result.ticks,
            wall_seconds=wall,
            console=process.console_text(),
            time_fraction=min(1.0, fault.time / window),
            injection_pc=(first.pc if first is not None else None),
            injection_asm=(first.asm if first is not None else ""),
            injection_detail=(first.detail if first is not None else ""),
            injection_before=(first.before if first is not None
                              else None),
            workload=self.spec.name,
            seed=seed,
            fault_file=render_fault_file(faults),
            divergence=divergence,
            propagation=propagation,
            phases=phases,
        )

    def run_campaign(self, fault_sets, progress=None,
                     seed: int | None = None) -> list[ExperimentResult]:
        results = []
        for index, faults in enumerate(fault_sets):
            results.append(self.run_experiment(faults, seed=seed))
            if progress is not None:
                progress(index + 1, len(fault_sets))
        return results

    # -- span tracing (repro.telemetry.spans) ----------------------------------

    def enable_tracing(self, tracer) -> None:
        """Attach a span tracer: every subsequent experiment emits an
        experiment span whose phase children (boot/window/injection/
        drain) partition its wall time exactly, with checkpoint
        save/restore spans nested inside."""
        self.tracer = tracer

    def _emit_spans(self, tracer, span, phases, start_tick, sim,
                    injector, outcome, wall, instructions,
                    divergence) -> None:
        """Retro-record the phase children and annotate the experiment
        span with its outcome and tick bounds (host times come from the
        already-computed phase split, so this costs four dict writes per
        experiment)."""
        records = injector.records
        end_tick = sim.tick
        first_tick = records[0].tick if records else None
        last_tick = records[-1].tick if records else None
        if first_tick is None:
            bounds = {"boot": (start_tick, start_tick),
                      "window": (start_tick, end_tick),
                      "injection": (end_tick, end_tick),
                      "drain": (end_tick, end_tick)}
        else:
            bounds = {"boot": (start_tick, start_tick),
                      "window": (start_tick, first_tick),
                      "injection": (first_tick, last_tick),
                      "drain": (last_tick, end_tick)}
        edge = span.t0
        for name in ("boot", "window", "injection", "drain"):
            seconds = float(phases.get(name, 0.0))
            tick0, tick1 = bounds[name]
            tracer.record(name, edge, edge + seconds, tick0=tick0,
                          tick1=tick1, parent=span, kind="phase",
                          seconds=seconds)
            edge += seconds
        span.tick0 = start_tick
        span.tick1 = end_tick
        attrs = {"outcome": outcome.value, "injected": bool(records),
                 "wall_seconds": wall, "instructions": instructions,
                 "ticks": end_tick - start_tick,
                 "phases": dict(phases),
                 "injection_tick": first_tick,
                 "last_injection_tick": last_tick}
        if divergence is not None:
            attrs["divergence_tick"] = divergence.get("tick")
        tracer.annotate(span, **attrs)

    # -- flight recorder (repro.telemetry.flight) ------------------------------

    def enable_flight(self, interval: int | None = None):
        """Turn the fault-propagation flight recorder on for all
        subsequent experiments: each run gets a first-divergence record
        and a propagation graph attached to its result.  Returns the
        (cached) golden flight log."""
        from ..telemetry.flight import DEFAULT_INTERVAL
        self._flight_interval = interval or DEFAULT_INTERVAL
        return self.flight_log()

    def flight_log(self):
        """Acquire (once) the golden run's flight log — per-interval
        architectural digests plus the committed-store log — by
        replaying from the checkpoint with a recorder installed, the
        same cost model as :meth:`ensure_trace`."""
        if self._flight is not None:
            return self._flight
        from ..telemetry.flight import DEFAULT_INTERVAL, FlightRecorder
        recorder = FlightRecorder(self._flight_interval
                                  or DEFAULT_INTERVAL)
        if self.use_checkpoint and self.golden.checkpoint is not None:
            sim = restore_checkpoint(self.golden.checkpoint)
        else:
            sim = Simulator(self.config, injector=FaultInjector())
            sim.load(self.asm, self.spec.name)
        sim.injector.install_tracer(recorder)
        result = sim.run(max_instructions=50_000_000)
        if result.status != "completed":
            raise RuntimeError(
                f"flight replay of '{self.spec.name}' did not "
                f"complete: {result.status}")
        self._flight = recorder.log
        return self._flight

    def _flight_artifacts(self, scanner, fault, first, outcome,
                          process, index, sim):
        """Post-run flight products: the (latency-stamped) divergence
        record and the def-use propagation graph of one experiment."""
        divergence = scanner.divergence
        if divergence is None and first is not None \
                and process.crash_reason:
            # The run trapped before reaching the next store or digest
            # boundary: the trap itself is the first observable
            # architectural divergence.
            from ..telemetry.flight import Divergence
            divergence = Divergence(
                kind="control", tick=sim.tick, count=scanner.count,
                window=None, interval=None, pc=sim.core.arch.pc,
                location=f"trap: {process.crash_reason}")
        div_dict = None
        if divergence is not None:
            if first is not None:
                divergence.latency = max(0, divergence.tick - first.tick)
            div_dict = divergence.as_dict()
            if self.bus is not None:
                self.bus.emit("flight_divergence", tick=divergence.tick,
                              experiment=index,
                              workload=self.spec.name,
                              divergence=div_dict)
        prop_dict = None
        if first is not None:
            from ..analysis.propagation import build_propagation_graph
            graph = build_propagation_graph(
                self.ensure_trace(), fault, outcome=outcome.value,
                crash_reason=process.crash_reason)
            prop_dict = graph.as_dict()
        return div_dict, prop_dict

    # -- liveness analysis and campaign pruning (repro.analysis) ---------------

    def ensure_trace(self):
        """Acquire (once) the golden def-use trace by replaying the run
        from the checkpoint with a tracer installed — boot is skipped,
        so a trace costs roughly one FI-window replay."""
        if self._trace is not None:
            return self._trace
        from ..analysis import DefUseTracer
        tracer = DefUseTracer()
        if self.use_checkpoint and self.golden.checkpoint is not None:
            sim = restore_checkpoint(self.golden.checkpoint)
        else:
            sim = Simulator(self.config, injector=FaultInjector())
            sim.load(self.asm, self.spec.name)
        sim.injector.install_tracer(tracer)
        result = sim.run(max_instructions=50_000_000)
        if result.status != "completed":
            raise RuntimeError(
                f"trace replay of '{self.spec.name}' did not complete: "
                f"{result.status}")
        self._trace = tracer
        return tracer

    def liveness(self):
        """The (cached) liveness analysis over the golden trace."""
        if self._liveness is None:
            from ..analysis import LivenessAnalysis
            self._liveness = LivenessAnalysis(self.ensure_trace())
        return self._liveness

    def pruned_generator(self, seed: int = 0, **kwargs):
        """An SEU generator wrapped with liveness pruning.  Same seed =>
        same sampled fault stream as a plain ``SEUGenerator``."""
        from .generator import PrunedGenerator, SEUGenerator
        base = SEUGenerator(self.golden.profile, seed=seed, **kwargs)
        return PrunedGenerator(base, self.liveness())

    def run_pruned(self, plan, progress=None,
                   per_member: bool = False,
                   seed: int | None = None):
        """Execute a :class:`~repro.campaign.generator.PrunedPlan`:
        simulate one representative per equivalence class, then
        re-expand to the full estimator (weighted, or per-member exact
        clones with ``per_member=True``)."""
        from .results import expand_pruned
        run_results = []
        for index, planned in enumerate(plan.runs):
            run_results.append(self.run_experiment(planned.fault,
                                                   seed=seed))
            if progress is not None:
                progress(index + 1, len(plan.runs))
        window = max(1, self.golden.profile.committed)
        return expand_pruned(plan, run_results, window,
                             per_member=per_member)

    # -- helpers ----------------------------------------------------------------------

    def _fresh_simulator(self, faults: list[Fault]) -> Simulator:
        if self.use_checkpoint and self.golden.checkpoint is not None:
            config_override = None
            if self.detailed_model is not None:
                config_override = self._detailed_config()
            sim = restore_checkpoint(self.golden.checkpoint,
                                     faults=faults,
                                     config_override=config_override,
                                     bus=self.bus,
                                     tracer=self.tracer)
            return sim
        config = (self._detailed_config()
                  if self.detailed_model is not None else self.config)
        injector = FaultInjector(faults)
        sim = Simulator(config, injector=injector, bus=self.bus)
        sim.load(self.asm, self.spec.name)
        if self.tracer is not None:
            sim.tracer = self.tracer
        return sim

    def _detailed_config(self) -> SimConfig:
        from dataclasses import replace
        return replace(self.config, cpu_model=self.detailed_model,
                       switch_to_atomic_after_fi=True)
