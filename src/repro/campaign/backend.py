"""Pluggable campaign execution backends.

The paper's shared-network-filesystem protocol (Section III.E) is one
way to execute a published campaign; the service layer
(:mod:`repro.service`) needs to dispatch queued jobs to *whichever*
execution substrate a deployment provides — the shared directory
today, and later container pools or batch schedulers.  This module
defines the contract between campaign publication and execution and a
tiny registry so backends are selectable by name (the job spec's
``backend`` field).

:class:`~repro.campaign.now.SharedDirCampaign` is the reference
implementation, registered as ``"shared-dir"``.  The extraction is a
pure refactor: shared-dir campaigns behave byte-identically whether or
not a service sits in front of them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class CampaignBackend(ABC):
    """One way of executing a published fault-injection campaign.

    Constructor contract: ``Backend(share_dir, workload_name, scale,
    **kwargs)`` — every backend is rooted at a directory it owns for
    the duration of one campaign (the service allocates a private root
    per job), knows which workload it runs, and is otherwise free to
    organise its state however it likes.
    """

    #: registry key; set by :func:`register_backend`.
    name: str = "?"

    @abstractmethod
    def publish(self, runner, fault_sets: list, seed: int | None = None,
                flight: int | None = None, trace: bool = False,
                request: dict | None = None) -> None:
        """Make the campaign available to workers: the checkpoint, the
        workload description and one fault input file per experiment.
        *request* (optional) is the originating HTTP-request context
        (``{"id", "span"}``) when a service published the campaign."""

    @abstractmethod
    def worker_loop(self, worker_id: str, runner, tracer=None) -> int:
        """Drain the published queue as one worker; returns the number
        of experiments this worker completed."""

    @abstractmethod
    def collect(self) -> list[dict]:
        """All result records published so far, in experiment order."""

    @abstractmethod
    def run_local(self, workers: int = 2) -> list[dict]:
        """Publish-side convenience: drain the whole campaign with
        *workers* local worker processes and return the results."""


_BACKENDS: dict[str, type] = {}


def register_backend(name: str):
    """Class decorator: register *cls* under *name* (also sets
    ``cls.name``) so job specs can select it."""

    def decorate(cls: type) -> type:
        cls.name = name
        _BACKENDS[name] = cls
        return cls

    return decorate


def get_backend(name: str) -> type:
    """The backend class registered under *name*."""
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS)) or "(none)"
        raise KeyError(f"unknown campaign backend '{name}' "
                       f"(registered: {known})") from None


def backend_names() -> list[str]:
    return sorted(_BACKENDS)
