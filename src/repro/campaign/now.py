"""Campaigns on a Network of Workstations (Section III.E).

Two pieces:

* :class:`SharedDirCampaign` — a faithful implementation of the paper's
  shared-network-filesystem protocol: experiment configuration files and
  the checkpoint live on a share; workers atomically claim experiments,
  run them locally from the checkpointed state and write results back.
  Workers are real OS processes (``multiprocessing``), so on a multi-core
  host the campaign genuinely runs in parallel; on this repository's
  single-core CI it degenerates gracefully to ~1x.

* :func:`simulate_makespan` — a deterministic meta-simulator that replays
  measured per-experiment serial runtimes over W workstations x S
  simulation slots using the paper's work-stealing discipline (step 4:
  "each workstation ... selects one of the remaining experiments"), and
  reports the campaign makespan.  This reproduces the scheduling
  arithmetic behind Fig. 8's ~108x NoW speedup without needing 27
  machines.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import threading
import time
from dataclasses import dataclass

from ..core.parser import parse_fault_file, render_fault_file
from ..telemetry.campaign import (HEARTBEAT_DIR, MANIFEST_DIR,
                                  PeriodicBeat, git_describe,
                                  read_heartbeats, run_manifest,
                                  write_heartbeat)
from ..telemetry.spans import (CAMPAIGN_PATH, JsonlSpanSink,
                               TraceContext, Tracer, span_log_path)
from .backend import CampaignBackend, register_backend
from .runner import CampaignRunner


def _write_text_atomic(path: str, text: str) -> None:
    """Publish *text* at *path* via temp file + ``os.replace``: readers
    polling the share (collect, read_status, other workers) either see
    the complete file or no file, never a truncated one — a worker
    crashing mid-write leaves only a ``.tmp.*`` file behind, which
    every reader ignores."""
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
    os.replace(tmp, path)


def _write_json_atomic(path: str, payload, **dump_kwargs) -> None:
    _write_text_atomic(path, json.dumps(payload, **dump_kwargs))


def _write_bytes_atomic(path: str, data: bytes) -> None:
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)


@dataclass
class NoWConfig:
    """The paper's platform: 27 workstations, 4 experiments each."""

    workstations: int = 27
    slots_per_workstation: int = 4

    @property
    def total_slots(self) -> int:
        return self.workstations * self.slots_per_workstation


def simulate_makespan(durations: list[float], config: NoWConfig,
                      checkpoint_copy_seconds: float = 0.0) -> float:
    """Deterministic list-scheduling makespan of *durations* over the
    NoW.  Each workstation first copies the checkpoint locally (step 3),
    then its slots repeatedly claim the next remaining experiment."""
    if not durations:
        return 0.0
    slot_free_at = [checkpoint_copy_seconds] * config.total_slots
    for duration in durations:
        index = min(range(len(slot_free_at)), key=slot_free_at.__getitem__)
        slot_free_at[index] += duration
    return max(slot_free_at)


def now_speedup(durations: list[float], config: NoWConfig,
                checkpoint_copy_seconds: float = 0.0) -> float:
    """Serial-time / NoW-makespan for a measured campaign."""
    serial = sum(durations)
    makespan = simulate_makespan(durations, config,
                                 checkpoint_copy_seconds)
    return serial / makespan if makespan else 1.0


# -- the shared-directory protocol ------------------------------------------------


@register_backend("shared-dir")
class SharedDirCampaign(CampaignBackend):
    """Steps 1-6 of Section III.E over a real directory tree.

    Layout of the share::

        share/
          checkpoint.bin          the post-init simulator checkpoint
          workload.json           name/scale so workers rebuild the spec
          todo/exp_NNNN.txt       per-experiment fault input files
          claimed/exp_NNNN.txt    moved here atomically when claimed
          results/exp_NNNN.json   outcome records written by workers
          heartbeats/<ws>.json    worker liveness beacons (telemetry)
          manifests/exp_NNNN.json per-run manifests: who ran what, when
          spans/<ws>.jsonl        span records (only when tracing is on)
          alerts.jsonl            watchdog journal (only when alerts fire)
    """

    def __init__(self, share_dir: str, workload_name: str,
                 scale: str = "small",
                 stale_claim_seconds: float = 600.0,
                 heartbeat_timeout: float = 120.0,
                 heartbeat_interval: float = 15.0,
                 clock=time.time) -> None:
        self.share_dir = share_dir
        self.workload_name = workload_name
        self.scale = scale
        self.stale_claim_seconds = stale_claim_seconds
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_interval = heartbeat_interval
        self._clock = clock
        for sub in ("todo", "claimed", "results", "claims",
                    HEARTBEAT_DIR, MANIFEST_DIR):
            os.makedirs(os.path.join(share_dir, sub), exist_ok=True)

    # step 1+2: the coordinator publishes experiments and the checkpoint.

    def publish(self, runner: CampaignRunner,
                fault_sets: list, seed: int | None = None,
                flight: int | None = None,
                trace: bool = False,
                request: dict | None = None) -> None:
        workload = {"name": self.workload_name, "scale": self.scale,
                    "seed": seed, "flight": flight}
        if trace:
            # Only written when tracing is on, so an untraced share's
            # workload.json stays byte-identical to the old protocol.
            workload["trace"] = True
        if request is not None:
            # Originating-request context from the campaign service
            # ({"id": ..., "span": ...}): run_local roots the campaign
            # span under that request span.  Absent outside the
            # service, keeping plain shares byte-identical.
            workload["request"] = request
        _write_json_atomic(
            os.path.join(self.share_dir, "workload.json"), workload)
        if runner.golden.checkpoint is not None:
            _write_bytes_atomic(
                os.path.join(self.share_dir, "checkpoint.bin"),
                runner.golden.checkpoint)
        _write_bytes_atomic(os.path.join(self.share_dir, "golden.pkl"),
                            pickle.dumps(runner.golden))
        for index, faults in enumerate(fault_sets):
            if not isinstance(faults, list):
                faults = [faults]
            path = os.path.join(self.share_dir, "todo",
                                f"exp_{index:04d}.txt")
            _write_text_atomic(path, render_fault_file(faults))

    # step 4: atomic claim.  A claim file created with O_CREAT|O_EXCL is
    # the lock for one experiment — exactly one workstation can create
    # it, so exactly one wins even on network filesystems where rename
    # semantics are shakier.  The claim records {worker, pid, time}; a
    # claim older than *stale_claim_seconds* with no result is treated
    # as a crashed workstation and its experiment is returned to the
    # queue (recovery itself is single-winner via a unique rename of
    # the claim file).

    def claim(self, worker_id: str) -> str | None:
        target = self._claim_once(worker_id)
        if target is not None:
            return target
        if self._recover_stale_claims(worker_id):
            return self._claim_once(worker_id)
        return None

    def _claim_once(self, worker_id: str) -> str | None:
        todo = os.path.join(self.share_dir, "todo")
        for name in sorted(os.listdir(todo)):
            if not name.endswith(".txt"):
                continue  # a .tmp.* file of an in-flight publish
            claim_path = os.path.join(self.share_dir, "claims",
                                      name + ".claim")
            if not self._try_acquire(claim_path, worker_id):
                continue  # another workstation holds this experiment
            source = os.path.join(todo, name)
            target = os.path.join(self.share_dir, "claimed",
                                  f"{worker_id}_{name}")
            try:
                os.rename(source, target)
            except OSError:
                # The todo file vanished between listdir and rename
                # (e.g. stale recovery raced us); release the claim.
                try:
                    os.unlink(claim_path)
                except OSError:
                    pass
                continue
            return target
        return None

    def _try_acquire(self, claim_path: str, worker_id: str) -> bool:
        try:
            handle = os.open(claim_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(handle, json.dumps(
                {"worker": worker_id, "pid": os.getpid(),
                 "time": self._clock()}).encode("utf-8"))
        finally:
            os.close(handle)
        return True

    def _recover_stale_claims(self, worker_id: str) -> bool:
        """Return experiments whose claimant died back to the todo
        queue.

        Liveness comes from the claimant's *heartbeat*, not the claim
        file's age: a live worker legitimately running one slow
        experiment past ``stale_claim_seconds`` keeps refreshing its
        heartbeat and must never be robbed (a double-run corrupts the
        outcome statistics), while a worker whose heartbeat has aged
        past ``heartbeat_timeout`` is presumed dead and its claims are
        reclaimed immediately — no need to wait out the much longer
        claim timeout.  Claims from workers that never heartbeated
        (pre-telemetry shares, hand-placed claims) fall back to the old
        claim-age rule.
        """
        claims_dir = os.path.join(self.share_dir, "claims")
        beats = read_heartbeats(self.share_dir)
        recovered = False
        for name in sorted(os.listdir(claims_dir)):
            if not name.endswith(".claim"):
                continue  # a .steal marker of an in-flight recovery
            experiment = name[:-len(".claim")]
            result_path = os.path.join(
                self.share_dir, "results",
                experiment.replace(".txt", ".json"))
            if os.path.exists(result_path):
                continue  # finished normally
            claim_path = os.path.join(claims_dir, name)
            try:
                with open(claim_path, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                continue  # being written or already stolen
            beat = beats.get(entry.get("worker", ""))
            now = self._clock()
            if beat is not None:
                if now - beat.get("time", 0.0) <= self.heartbeat_timeout:
                    continue  # claimant is demonstrably alive
                # heartbeat aged out: dead worker, steal right away
            elif now - entry.get("time", 0) <= self.stale_claim_seconds:
                continue
            # Single-winner steal: only one workstation's rename of the
            # claim file succeeds.
            stolen = claim_path + f".steal.{worker_id}.{os.getpid()}"
            try:
                os.rename(claim_path, stolen)
            except OSError:
                continue  # somebody else is recovering this one
            owner = entry.get("worker", "")
            claimed_path = os.path.join(self.share_dir, "claimed",
                                        f"{owner}_{experiment}")
            todo_path = os.path.join(self.share_dir, "todo", experiment)
            try:
                os.rename(claimed_path, todo_path)
            except OSError:
                pass  # claimant died before moving the file out of todo
            if os.path.exists(todo_path):
                recovered = True
            try:
                os.unlink(stolen)
            except OSError:
                pass
        return recovered

    # steps 4-5: run locally, move results back to the share.

    def run_one(self, worker_id: str, runner: CampaignRunner,
                completed: int = 0, seed: int | None = None,
                git_rev: str | None = None, tracer=None,
                status: dict | None = None) -> str | None:
        """Claim and run exactly one experiment; returns its name or
        None when the queue is drained.  *status* (if given) is the
        worker's mutable ``{"experiment", "completed"}`` view shared
        with its heartbeater thread."""
        claimed = self.claim(worker_id)
        if claimed is None:
            return None
        experiment = os.path.basename(claimed).split("_", 1)[1]
        exp_name = experiment.replace(".txt", "")
        if status is not None:
            status["experiment"] = exp_name
        write_heartbeat(self.share_dir, worker_id, completed,
                        current_experiment=exp_name, clock=self._clock)
        with open(claimed, "r", encoding="utf-8") as handle:
            fault_text = handle.read()
        faults = parse_fault_file(fault_text)
        if seed is None:
            seed = self._published_seed()
        started = self._clock()
        span = None
        if tracer is not None:
            span = tracer.start(exp_name, kind="experiment",
                                experiment=exp_name)
        result = runner.run_experiment(faults, seed=seed)
        if span is not None:
            tracer.finish(span)
        out = os.path.join(self.share_dir, "results",
                           experiment.replace(".txt", ".json"))
        _write_json_atomic(out, result.as_dict())
        extra = {}
        if result.divergence is not None:
            extra["divergence"] = result.divergence
        if result.propagation is not None:
            extra["propagation"] = result.propagation
        manifest = run_manifest(
            experiment=exp_name,
            workload=self.workload_name, scale=self.scale,
            fault_text=fault_text, seed=seed, worker=worker_id,
            started=started, wall_seconds=result.wall_seconds,
            outcome=result.outcome.value, git_rev=git_rev,
            extra=extra or None)
        manifest_path = os.path.join(
            self.share_dir, MANIFEST_DIR,
            experiment.replace(".txt", ".json"))
        _write_json_atomic(manifest_path, manifest, indent=2,
                           sort_keys=True)
        if status is not None:
            status["experiment"] = None
            status["completed"] = completed + 1
        return exp_name

    def worker_loop(self, worker_id: str, runner: CampaignRunner,
                    tracer=None) -> int:
        completed = 0
        seed = self._published_seed()
        git_rev = git_describe()
        status = {"experiment": None, "completed": 0}
        write_heartbeat(self.share_dir, worker_id, completed,
                        clock=self._clock)

        # A long experiment must not let this worker's heartbeat age
        # out (the liveness-based recovery above would then hand its
        # claim to somebody else), so a daemon thread keeps beating
        # while the main thread simulates.  interval <= 0 disables it
        # (deterministic single-threaded tests).  PeriodicBeat joins
        # the thread on exit, so embedding this loop in a long-lived
        # process (the service dispatcher runs one per job) never
        # leaks beat threads across jobs.
        def _beat() -> None:
            try:
                write_heartbeat(self.share_dir, worker_id,
                                status["completed"],
                                current_experiment=status["experiment"],
                                clock=self._clock)
            except OSError:
                pass  # share hiccup; next beat retries

        with PeriodicBeat(self.heartbeat_interval, _beat,
                          name=f"heartbeat-{worker_id}"):
            while True:
                ran = self.run_one(worker_id, runner,
                                   completed=completed, seed=seed,
                                   git_rev=git_rev, tracer=tracer,
                                   status=status)
                if ran is None:
                    break
                completed += 1
                write_heartbeat(self.share_dir, worker_id, completed,
                                clock=self._clock)
        write_heartbeat(self.share_dir, worker_id, completed,
                        clock=self._clock)
        return completed

    def _published_seed(self) -> int | None:
        """The generator seed recorded by ``publish`` (None for
        hand-authored fault queues or pre-telemetry shares)."""
        return self._published_field("seed")

    def published_flight(self) -> int | None:
        """Flight-recorder digest interval recorded by ``publish``, or
        None when the coordinator left the recorder off."""
        return self._published_field("flight")

    def published_trace(self) -> bool:
        """True when the coordinator published with span tracing on."""
        return bool(self._published_field("trace"))

    def published_request(self) -> dict | None:
        """Originating-request context recorded by ``publish`` (the
        campaign service's ``{"id", "span"}``), or None for campaigns
        published outside the service."""
        request = self._published_field("request")
        return request if isinstance(request, dict) else None

    def _published_field(self, key: str):
        path = os.path.join(self.share_dir, "workload.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle).get(key)
        except (OSError, ValueError):
            return None

    def collect(self) -> list[dict]:
        results_dir = os.path.join(self.share_dir, "results")
        out = []
        for name in sorted(os.listdir(results_dir)):
            if not name.endswith(".json"):
                continue  # a .tmp.* file of a mid-write worker
            try:
                with open(os.path.join(results_dir, name), "r",
                          encoding="utf-8") as handle:
                    out.append(json.load(handle))
            except ValueError:
                # Results are published atomically, so a malformed
                # file is hand-damage (or a pre-atomic-writer crash);
                # skip it rather than losing the whole collection.
                continue
        return out

    # orchestration: spawn worker processes (one per local "workstation").

    def run_local(self, workers: int = 2) -> list[dict]:
        tracer = None
        if self.published_trace():
            # The coordinator owns the campaign root span; workers
            # parent their experiment spans under it by id arithmetic
            # (same seed -> same ids), so no handshake is needed.
            # When the service published the campaign from an HTTP
            # request, the request's span id becomes the root's
            # parent — ids and paths are untouched, so the workers'
            # arithmetic still holds.
            request = self.published_request() or {}
            tracer = Tracer(
                TraceContext(self._published_seed()),
                sink=JsonlSpanSink(
                    span_log_path(self.share_dir, "coordinator")),
                worker="coordinator",
                root_parent=request.get("span"))
            root_attrs = {}
            if request.get("id"):
                root_attrs["request_id"] = request["id"]
            root = tracer.start("campaign", kind="campaign",
                                workload=self.workload_name,
                                scale=self.scale, workers=workers,
                                **root_attrs)
        processes = []
        for index in range(workers):
            process = multiprocessing.Process(
                target=_worker_main,
                args=(self.share_dir, f"ws{index}", self.workload_name,
                      self.scale))
            process.start()
            processes.append(process)
        for process in processes:
            process.join()
        results = self.collect()
        if tracer is not None:
            tracer.finish(root, results=len(results))
            tracer.close()
        return results


def _worker_main(share_dir: str, worker_id: str, workload_name: str,
                 scale: str) -> None:
    """Entry point of one worker process: rebuild the workload spec and
    runner (reusing the published checkpoint), then drain the queue."""
    from ..workloads import build
    spec = build(workload_name, scale)
    runner = CampaignRunner(spec)
    campaign = SharedDirCampaign(share_dir, workload_name, scale)
    flight = campaign.published_flight()
    if flight:
        runner.enable_flight(flight)
    tracer = None
    if campaign.published_trace():
        tracer = Tracer(
            TraceContext(campaign._published_seed()),
            sink=JsonlSpanSink(span_log_path(share_dir, worker_id)),
            worker=worker_id, base_path=CAMPAIGN_PATH)
        runner.enable_tracing(tracer)
    try:
        campaign.worker_loop(worker_id, runner, tracer=tracer)
    finally:
        if tracer is not None:
            tracer.close()


def outcome_counts(result_dicts: list[dict]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for entry in result_dicts:
        counts[entry["outcome"]] = counts.get(entry["outcome"], 0) + 1
    return counts
