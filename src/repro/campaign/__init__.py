"""Campaign orchestration: sampling, generation, execution, analysis."""

from .backend import (
    CampaignBackend,
    backend_names,
    get_backend,
    register_backend,
)
from .classify import OUTCOME_ORDER, Outcome, classify
from .generator import (
    DEFAULT_LOCATIONS,
    LOCATION_WIDTHS,
    PlannedRun,
    PredictedSite,
    PrunedGenerator,
    PrunedPlan,
    SEUGenerator,
    VddScaledGenerator,
    WindowProfile,
)
from .now import (
    NoWConfig,
    SharedDirCampaign,
    now_speedup,
    outcome_counts,
    simulate_makespan,
)
from .results import (
    Distribution,
    by_fetch_field,
    by_location,
    by_time_bins,
    expand_pruned,
    render_location_table,
    render_table,
    render_time_table,
    summary,
)
from .runner import CampaignRunner, ExperimentResult, GoldenRun
from .sampling import (
    kish_effective_sample_size,
    mean_confidence_interval,
    proportion_confidence_interval,
    sample_size,
    weighted_proportion_confidence_interval,
    z_score,
)

__all__ = [
    "CampaignBackend", "CampaignRunner", "DEFAULT_LOCATIONS",
    "Distribution", "backend_names", "get_backend", "register_backend",
    "ExperimentResult", "GoldenRun", "LOCATION_WIDTHS", "NoWConfig",
    "OUTCOME_ORDER", "Outcome", "PlannedRun", "PredictedSite",
    "PrunedGenerator", "PrunedPlan", "SEUGenerator",
    "SharedDirCampaign", "VddScaledGenerator", "WindowProfile",
    "by_fetch_field", "by_location", "by_time_bins", "classify",
    "expand_pruned", "kish_effective_sample_size",
    "mean_confidence_interval", "now_speedup", "outcome_counts",
    "proportion_confidence_interval", "render_location_table",
    "render_table", "render_time_table", "sample_size",
    "simulate_makespan", "summary",
    "weighted_proportion_confidence_interval", "z_score",
]
