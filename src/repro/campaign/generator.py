"""Random fault generators for campaigns.

The validation methodology (Section IV.B.1) uses a single-event-upset
model: each experiment injects one flip-bit fault with *Location*, *Time*
and *Behavior* drawn from uniform distributions.  The generator needs a
profile of the fault-injection window (how many instructions the region
between the two ``fi_activate_inst`` calls executes, per pipeline stage),
which campaigns obtain from a golden profiling run.

``VddScaledGenerator`` implements the paper's future-work extension:
per-component fault rates that grow as the supply voltage is lowered.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..analysis.equivalence import SiteClass, build_classes
from ..core.fault import (
    Behavior,
    BehaviorKind,
    Fault,
    LocationKind,
    TimeMode,
)

# Bit width of the value corrupted at each location.
LOCATION_WIDTHS = {
    LocationKind.INT_REG: 64,
    LocationKind.FP_REG: 64,
    LocationKind.PC: 64,
    LocationKind.FETCH: 32,
    LocationKind.DECODE: 5,
    LocationKind.EXECUTE: 64,
    LocationKind.MEM: 64,
}

DEFAULT_LOCATIONS = (
    LocationKind.INT_REG, LocationKind.FP_REG, LocationKind.PC,
    LocationKind.FETCH, LocationKind.DECODE, LocationKind.EXECUTE,
    LocationKind.MEM,
)


@dataclass
class WindowProfile:
    """Instruction counts of the FI window, per pipeline stage (from a
    golden run's ``FaultInjector.windows`` record)."""

    committed: int
    ticks: int
    stage_counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_injector_window(cls, window: dict) -> "WindowProfile":
        return cls(committed=window["committed"], ticks=window["ticks"],
                   stage_counts=dict(window["stage_counts"]))

    def count_for(self, location: LocationKind) -> int:
        """Fault times are expressed in committed instructions of the
        thread for every location (a MEM/EXECUTE fault scheduled at
        instruction N strikes the first eligible transaction at or after
        N), so the sampling window is the committed count."""
        del location
        return max(1, self.committed)


class SEUGenerator:
    """Uniform single-event-upset (one bit flip, occ=1) generator."""

    def __init__(self, profile: WindowProfile, seed: int = 0,
                 locations=DEFAULT_LOCATIONS, thread_id: int = 0,
                 cpu: str = "system.cpu0") -> None:
        self.profile = profile
        self.rng = random.Random(seed)
        self.locations = tuple(locations)
        self.thread_id = thread_id
        self.cpu = cpu

    def generate(self, location: LocationKind | None = None,
                 time: int | None = None) -> Fault:
        """One uniform SEU; *location*/*time* can be pinned for
        location-stratified (Fig. 5) or time-stratified (Fig. 6)
        campaigns."""
        rng = self.rng
        if location is None:
            location = rng.choice(self.locations)
        if time is None:
            time = rng.randint(1, self.profile.count_for(location))
        width = LOCATION_WIDTHS[location]
        bit = rng.randrange(width)
        behavior = Behavior(kind=BehaviorKind.FLIP, bits=(bit,), occ=1)
        reg_index = 0
        operand_role = "src"
        operand_index = 0
        if location in (LocationKind.INT_REG, LocationKind.FP_REG):
            reg_index = rng.randrange(32)
        elif location is LocationKind.DECODE:
            operand_role = rng.choice(("src", "dst"))
            operand_index = rng.randrange(3)
        return Fault(location=location, time_mode=TimeMode.INSTRUCTIONS,
                     time=time, behavior=behavior,
                     thread_id=self.thread_id, cpu=self.cpu,
                     reg_index=reg_index, operand_role=operand_role,
                     operand_index=operand_index)

    def batch(self, count: int,
              location: LocationKind | None = None) -> list[Fault]:
        return [self.generate(location=location) for _ in range(count)]

    def fault_space_size(self) -> int:
        """|Location| x |time| x |bit| — the population N fed to the
        Leveugle sample-size formula."""
        total = 0
        for location in self.locations:
            slots = self.profile.count_for(location)
            width = LOCATION_WIDTHS[location]
            multiplier = 32 if location in (LocationKind.INT_REG,
                                            LocationKind.FP_REG) else 1
            total += slots * width * multiplier
        return total


@dataclass
class PlannedRun:
    """One experiment of a pruned campaign: the representative fault of
    an equivalence class, standing for *members* sampled sites."""

    fault: Fault
    members: list[Fault]

    @property
    def weight(self) -> int:
        return len(self.members)


@dataclass
class PredictedSite:
    """A sampled site whose outcome is known without simulation."""

    fault: Fault
    reason: str          # a repro.analysis MASKED_* reason
    propagated: bool     # predicted InjectionRecord.propagated
    injected: bool       # predicted "the fault actually fired"


@dataclass
class PrunedPlan:
    """A pruned campaign: run the representatives, predict the rest."""

    runs: list[PlannedRun]
    predicted: list[PredictedSite]
    total: int                      # sampled sites before pruning

    @property
    def experiments(self) -> int:
        """Simulations the pruned campaign actually executes."""
        return len(self.runs)

    @property
    def masked_count(self) -> int:
        return len(self.predicted)

    @property
    def collapsed(self) -> int:
        """Live sites absorbed into an already-planned class."""
        return self.total - self.masked_count - self.experiments

    @property
    def saved(self) -> int:
        return self.total - self.experiments

    @property
    def fraction_saved(self) -> float:
        return self.saved / self.total if self.total else 0.0

    def reason_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for site in self.predicted:
            counts[site.reason] = counts.get(site.reason, 0) + 1
        return counts

    def weights(self) -> list[float]:
        """Per-executed-experiment weights (for the Kish effective
        sample size in ``sampling.py``)."""
        return [float(run.weight) for run in self.runs]


class PrunedGenerator:
    """Wraps an :class:`SEUGenerator` with liveness-based pruning.

    Draws the *same* fault stream as the wrapped generator (same seed,
    same RNG consumption), then classifies each site with a
    :class:`repro.analysis.LivenessAnalysis`: provably-masked sites
    become free :class:`PredictedSite` outcomes, live sites collapse
    into equivalence classes and only the representatives are simulated.
    ``campaign.results.expand_pruned`` re-expands a plan's results into
    the exact estimator of the unpruned campaign.
    """

    def __init__(self, generator: SEUGenerator, liveness) -> None:
        self.generator = generator
        self.liveness = liveness

    def plan(self, count: int,
             location: LocationKind | None = None) -> PrunedPlan:
        faults = self.generator.batch(count, location=location)
        predicted: list[PredictedSite] = []
        live_pairs = []
        for fault in faults:
            verdict = self.liveness.classify(fault)
            if verdict.masked:
                predicted.append(PredictedSite(
                    fault=fault, reason=verdict.reason,
                    propagated=verdict.propagated,
                    injected=verdict.injected))
            else:
                live_pairs.append((fault, verdict))
        classes: list[SiteClass] = build_classes(live_pairs)
        runs = [PlannedRun(fault=cls.representative,
                           members=list(cls.members)) for cls in classes]
        return PrunedPlan(runs=runs, predicted=predicted, total=count)


class VddScaledGenerator(SEUGenerator):
    """Extension (paper Section VII future work): scale per-component
    SEU rates with supply voltage.

    A simple exponential model: the expected number of upsets in the FI
    window is ``base_rate * exp(alpha * (v_nominal - vdd))`` per
    component class; ``faults_for_run`` draws a Poisson count and
    generates that many faults (0 faults = a run with no injection).
    """

    def __init__(self, profile: WindowProfile, seed: int = 0,
                 vdd: float = 1.0, v_nominal: float = 1.0,
                 base_rate: float = 0.05, alpha: float = 12.0,
                 **kwargs) -> None:
        super().__init__(profile, seed=seed, **kwargs)
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        self.vdd = vdd
        self.v_nominal = v_nominal
        self.base_rate = base_rate
        self.alpha = alpha

    @property
    def expected_upsets(self) -> float:
        return self.base_rate * math.exp(
            self.alpha * max(0.0, self.v_nominal - self.vdd))

    def faults_for_run(self) -> list[Fault]:
        count = self._poisson(self.expected_upsets)
        return [self.generate() for _ in range(count)]

    def _poisson(self, lam: float) -> int:
        # Knuth's method; lambda stays small in practice.
        limit = math.exp(-lam)
        count = 0
        product = self.rng.random()
        while product > limit:
            count += 1
            product *= self.rng.random()
        return count
