"""Aggregation of campaign results into the paper's tables and figures.

Fig. 5 is a per-location outcome breakdown, Fig. 6 a per-time-bin
breakdown, Table I a per-instruction-field breakdown of fetch-stage
faults.  This module turns lists of :class:`ExperimentResult` into those
distributions and renders them as aligned ASCII tables (the bench
harness prints them next to the paper's numbers).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from ..core.fault import LocationKind
from ..isa.instructions import field_of_fetch_bit
from .classify import OUTCOME_ORDER, Outcome
from .runner import ExperimentResult

LOCATION_LABELS = {
    LocationKind.INT_REG: "int regfile",
    LocationKind.FP_REG: "fp regfile",
    LocationKind.PC: "pc",
    LocationKind.FETCH: "fetch",
    LocationKind.DECODE: "decode",
    LocationKind.EXECUTE: "execute",
    LocationKind.MEM: "mem",
}


@dataclass
class Distribution:
    """Outcome counts for one group (a location, a time bin...).

    Counts may be weighted: a pruned campaign adds each class
    representative with its sample multiplicity, reproducing the
    unpruned estimator exactly (``expand_pruned``)."""

    counts: Counter = field(default_factory=Counter)

    def add(self, outcome: Outcome, weight: float = 1.0) -> None:
        self.counts[outcome] += weight

    @property
    def total(self) -> float:
        return sum(self.counts.values())

    def fraction(self, outcome: Outcome) -> float:
        total = self.total
        return self.counts[outcome] / total if total else 0.0

    @property
    def acceptable_fraction(self) -> float:
        return sum(self.fraction(o) for o in OUTCOME_ORDER if o.acceptable)

    def as_dict(self) -> dict[str, float]:
        return {o.value: round(self.fraction(o), 4)
                for o in OUTCOME_ORDER}


def by_location(results: list[ExperimentResult]
                ) -> dict[LocationKind, Distribution]:
    """Fig. 5: outcome distribution per fault location (+ a summary)."""
    groups: dict[LocationKind, Distribution] = defaultdict(Distribution)
    for result in results:
        groups[result.fault.location].add(result.outcome,
                                          _weight(result))
    return dict(groups)


def summary(results: list[ExperimentResult]) -> Distribution:
    dist = Distribution()
    for result in results:
        dist.add(result.outcome, _weight(result))
    return dist


def by_time_bins(results: list[ExperimentResult], bins: int = 10
                 ) -> list[Distribution]:
    """Fig. 6: outcome distribution vs normalised injection time."""
    groups = [Distribution() for _ in range(bins)]
    for result in results:
        index = min(bins - 1, int(result.time_fraction * bins))
        groups[index].add(result.outcome, _weight(result))
    return groups


def by_fetch_field(results: list[ExperimentResult]
                   ) -> dict[str, Distribution]:
    """Table I analysis: classify each fetch-stage flip by the
    instruction field its bit landed in, from the injection record of
    the *original* (pre-corruption) word."""
    groups: dict[str, Distribution] = defaultdict(Distribution)
    for result in results:
        if result.fault.location is not LocationKind.FETCH:
            continue
        bits = result.fault.behavior.bits
        if not bits or not result.injected or \
                result.injection_before is None:
            groups["not_injected"].add(result.outcome)
            continue
        field_name = field_of_fetch_bit(result.injection_before,
                                        bits[0]).value
        groups[field_name].add(result.outcome, _weight(result))
    return dict(groups)


def _weight(result: ExperimentResult) -> float:
    return getattr(result, "weight", 1.0)


def expand_pruned(plan, run_results: list[ExperimentResult],
                  window: int,
                  per_member: bool = False) -> list[ExperimentResult]:
    """Re-expand a pruned campaign to the unpruned estimator.

    *run_results* are the executed representatives, aligned with
    ``plan.runs``.  Each is replicated over its class — either as one
    weighted result (the default; the aggregators above honour the
    weight) or, with ``per_member=True``, as one weight-1 clone per
    member carrying the member's own fault and time fraction (exact
    per-experiment equivalence, e.g. for Fig. 6 time bins).  Predicted
    masked sites are synthesised for free: their outputs equal the
    golden run's, so the outcome is strictly-correct when the corrupted
    value was read (``propagated``) and non-propagated otherwise.
    """
    from dataclasses import replace

    window = max(1, window)
    expanded: list[ExperimentResult] = []
    for planned, result in zip(plan.runs, run_results):
        if result is None:
            continue
        if per_member:
            for member in planned.members:
                expanded.append(replace(
                    result, fault=member, weight=1.0,
                    time_fraction=min(1.0, member.time / window)))
        else:
            expanded.append(replace(result,
                                    weight=float(planned.weight)))
    for site in plan.predicted:
        outcome = (Outcome.STRICTLY_CORRECT if site.propagated
                   else Outcome.NON_PROPAGATED)
        expanded.append(ExperimentResult(
            fault=site.fault, outcome=outcome, injected=site.injected,
            propagated=site.propagated if site.injected else None,
            crash_reason=None, instructions=0, ticks=0,
            wall_seconds=0.0, console="",
            time_fraction=min(1.0, site.fault.time / window),
            injection_detail=f"predicted: {site.reason}",
            weight=1.0, predicted=True))
    return expanded


def render_table(rows: dict[str, Distribution],
                 title: str = "") -> str:
    """Aligned ASCII table: one row per group, one column per outcome."""
    headers = ["group", "n"] + [o.value for o in OUTCOME_ORDER] + \
        ["acceptable"]
    lines = []
    if title:
        lines.append(title)
    widths = [max(len(headers[0]),
                  *(len(str(k)) for k in rows)) if rows else len(
                      headers[0])]
    widths += [max(6, len(h)) for h in headers[1:]]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for key, dist in rows.items():
        total = dist.total
        total_text = str(int(total)) if total == int(total) \
            else f"{total:.1f}"
        cells = [str(key).ljust(widths[0]), total_text.ljust(widths[1])]
        for outcome, width in zip(OUTCOME_ORDER, widths[2:]):
            cells.append(f"{dist.fraction(outcome):6.1%}".ljust(width))
        cells.append(f"{dist.acceptable_fraction:6.1%}")
        lines.append("  ".join(cells))
    return "\n".join(lines)


def render_location_table(results: list[ExperimentResult],
                          title: str = "") -> str:
    rows = {LOCATION_LABELS[loc]: dist
            for loc, dist in sorted(by_location(results).items(),
                                    key=lambda kv: kv[0].value)}
    rows["ALL"] = summary(results)
    return render_table(rows, title=title)


def render_time_table(results: list[ExperimentResult], bins: int = 10,
                      title: str = "") -> str:
    groups = by_time_bins(results, bins)
    rows = {}
    for index, dist in enumerate(groups):
        low = index / bins
        high = (index + 1) / bins
        rows[f"t in [{low:.2f},{high:.2f})"] = dist
    return render_table(rows, title=title)
