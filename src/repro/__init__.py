"""GemFI reproduction: fault injection on a full-system simulator.

Reproduces *GemFI: A Fault Injection Tool for Studying the Behavior of
Applications on Unreliable Substrates* (DSN 2014) as a self-contained
Python library: Alpha-like ISA, four CPU models, memory hierarchy,
OS-lite kernel, MiniC compiler, the GemFI fault-injection engine,
checkpointing and campaign orchestration.

Primary entry points::

    from repro.sim import Simulator, SimConfig
    from repro.core import FaultInjector
    from repro.compiler import compile_source
    from repro.campaign import CampaignRunner, SEUGenerator
    from repro.workloads import build
"""

__version__ = "1.0.0"

__all__ = ["campaign", "compiler", "core", "cpu", "isa", "memory",
           "sim", "system", "workloads"]
