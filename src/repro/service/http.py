"""Minimal asyncio HTTP/1.1 layer (stdlib only).

Implements exactly what the campaign service needs and nothing more:
request-line + header parsing with ``Content-Length`` bodies in;
fixed-length JSON/text responses and **chunked transfer encoding**
(for JSONL event streams) out; a path-template router.

Connections are **keep-alive** by HTTP/1.1 default: a client may pipe
many requests through one connection (``ServiceClient`` polling a job
reuses its socket instead of reconnecting per poll), bounded by
``MAX_REQUESTS_PER_CONNECTION``, and the server advertises
``Connection: close`` on the last response — when the cap is reached,
when the client asked to close (or spoke HTTP/1.0 without
``keep-alive``), after a parse error (framing is no longer trustworthy)
and during shutdown.

An optional observer (see
:class:`~repro.service.observability.ServiceObserver`) sees every
request: a request id is minted (or taken from an inbound
``X-Request-Id``), echoed on the response, and stamped into the access
log with the matched route template, the status and the latency.
Unhandled handler exceptions are journalled with their traceback and
answered with a **generic** 500 carrying only the request id — internal
details never leak to the client.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024
MAX_REQUESTS_PER_CONNECTION = 100

REASONS = {
    200: "OK", 201: "Created", 204: "No Content",
    400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    429: "Too Many Requests", 500: "Internal Server Error",
}


class HTTPError(Exception):
    """Raise inside a handler to produce a JSON error response.

    *headers* ride along onto the response — a 405 carries the
    mandatory ``Allow`` header this way."""

    def __init__(self, status: int, message: str,
                 headers: dict[str, str] | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


@dataclass
class Request:
    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    params: dict[str, str] = field(default_factory=dict)
    version: str = "HTTP/1.1"
    #: the request id (inbound X-Request-Id or freshly minted);
    #: assigned by the connection handler before routing.
    id: str = ""

    def wants_keep_alive(self) -> bool:
        """HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an
        explicit Connection header wins either way."""
        connection = self.headers.get("connection", "").lower()
        if "close" in connection:
            return False
        if self.version == "HTTP/1.0":
            return "keep-alive" in connection
        return True

    def json(self):
        if not self.body:
            raise HTTPError(400, "request body must be JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise HTTPError(400, "request body is not valid JSON") \
                from None


@dataclass
class Response:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json; charset=utf-8"
    headers: dict[str, str] = field(default_factory=dict)
    #: async iterator of bytes chunks; set => chunked transfer.
    stream = None

    @classmethod
    def json(cls, obj, status: int = 200) -> "Response":
        text = json.dumps(obj, indent=2, sort_keys=True) + "\n"
        return cls(status=status, body=text.encode("utf-8"))

    @classmethod
    def text(cls, text: str, status: int = 200,
             content_type: str = "text/plain; charset=utf-8"
             ) -> "Response":
        return cls(status=status, body=text.encode("utf-8"),
                   content_type=content_type)

    @classmethod
    def binary(cls, data: bytes, status: int = 200,
               content_type: str = "application/octet-stream"
               ) -> "Response":
        return cls(status=status, body=data,
                   content_type=content_type)

    @classmethod
    def streaming(cls, aiter, status: int = 200,
                  content_type: str = "application/jsonl; charset=utf-8"
                  ) -> "Response":
        response = cls(status=status, content_type=content_type)
        response.stream = aiter
        return response

    @classmethod
    def html(cls, text: str, status: int = 200) -> "Response":
        return cls.text(text, status=status,
                        content_type="text/html; charset=utf-8")

    @classmethod
    def error(cls, status: int, message: str,
              headers: dict[str, str] | None = None) -> "Response":
        response = cls.json({"error": message}, status=status)
        if headers:
            response.headers.update(headers)
        return response


class Router:
    """Path-template routing: ``/v1/jobs/{id}/status`` binds ``{id}``
    into ``request.params``."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, re.Pattern, object, str]] = []

    def add(self, method: str, template: str, handler) -> None:
        pattern = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", template)
            + "$")
        self._routes.append((method.upper(), pattern, handler,
                             template))

    def match(self, method: str, path: str):
        """(handler, params) — raises HTTPError 404/405."""
        handler, params, _template = self.resolve(method, path)
        return handler, params

    def resolve(self, method: str, path: str):
        """(handler, params, template) — the template is the route's
        original path pattern (``/v1/jobs/{id}``), which metric labels
        and access logs use instead of the raw path so cardinality
        stays bounded.  Raises HTTPError 404/405."""
        allowed = set()
        for route_method, pattern, handler, template in self._routes:
            found = pattern.match(path)
            if found is None:
                continue
            if route_method != method.upper():
                allowed.add(route_method)
                continue
            return handler, {name: unquote(value) for name, value
                             in found.groupdict().items()}, template
        if allowed:
            permitted = ", ".join(sorted(allowed))
            raise HTTPError(405, f"{method} not allowed here "
                                 f"(try: {permitted})",
                            headers={"Allow": permitted})
        raise HTTPError(404, f"no such resource: {path}")


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; None on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HTTPError(400, "malformed request line")
    method, target = parts[0], parts[1]
    headers: dict[str, str] = {}
    total = len(line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HTTPError(400, "headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise HTTPError(400, "bad Content-Length") from None
        if size > MAX_BODY_BYTES:
            raise HTTPError(400, "request body too large")
        body = await reader.readexactly(size)
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(method=method, path=unquote(split.path),
                   query=query, headers=headers, body=body,
                   version=parts[2])


def _head(response: Response, chunked: bool,
          keep_alive: bool = False) -> bytes:
    reason = REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}",
             f"Content-Type: {response.content_type}",
             "Connection: keep-alive" if keep_alive
             else "Connection: close"]
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    else:
        lines.append(f"Content-Length: {len(response.body)}")
    # Everything this API serves is live state (job listings, metric
    # scrapes, event streams): caching any of it would show operators
    # stale campaigns.  A handler that knows better may override.
    if not any(name.lower() == "cache-control"
               for name in response.headers):
        lines.append("Cache-Control: no-store")
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(writer: asyncio.StreamWriter,
                         response: Response,
                         keep_alive: bool = False) -> None:
    if response.stream is None:
        writer.write(_head(response, chunked=False,
                           keep_alive=keep_alive) + response.body)
        await writer.drain()
        return
    # Chunked framing is self-terminating (the 0-length chunk), so a
    # stream response keeps the connection reusable too.
    writer.write(_head(response, chunked=True, keep_alive=keep_alive))
    await writer.drain()
    stream = response.stream
    try:
        async for chunk in stream:
            if not chunk:
                continue
            if writer.is_closing():
                # The client went away between chunks; surface it as
                # the connection error it is so the handler loop stops
                # polling for a reader that no longer exists.
                raise ConnectionResetError(
                    "client disconnected mid-stream")
            writer.write(f"{len(chunk):x}\r\n".encode("latin-1")
                         + chunk + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
    finally:
        # Throw GeneratorExit into the producer *now* (not at GC), so
        # its finally blocks run — poll loops stop, file handles and
        # leases the generator scoped are released deterministically.
        aclose = getattr(stream, "aclose", None)
        if aclose is not None:
            try:
                await aclose()
            except Exception:
                pass


def _mint_request_id(request: Request | None) -> str:
    if request is not None:
        inbound = request.headers.get("x-request-id", "").strip()
        if inbound and len(inbound) <= 128 \
                and inbound.isprintable():
            return inbound
    from .observability import new_request_id
    return new_request_id()


async def handle_connection(reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter,
                            router: Router, observer=None,
                            closing=None,
                            max_requests: int =
                            MAX_REQUESTS_PER_CONNECTION) -> None:
    """Serve requests off one connection until it closes.

    *observer* (optional) is notified of every request and error;
    *closing* (an object with ``is_set()``, e.g. a threading.Event)
    forces ``Connection: close`` on in-flight responses during
    shutdown."""
    if observer is not None:
        observer.connection_opened()
    handled = 0
    try:
        while True:
            keep_alive = False
            request = None
            route = None
            in_flight = False
            started = time.monotonic()
            try:
                try:
                    request = await read_request(reader)
                    if request is None:
                        return
                    handled += 1
                    keep_alive = (request.wants_keep_alive()
                                  and handled < max_requests
                                  and not (closing is not None
                                           and closing.is_set()))
                    request.id = _mint_request_id(request)
                    if observer is not None:
                        # In-flight covers the whole exchange — a
                        # streaming response is "in flight" until its
                        # last chunk (or the disconnect) — so the
                        # finally below, not the handler return,
                        # decrements it.
                        observer.request_started()
                        in_flight = True
                    handler, params, route = router.resolve(
                        request.method, request.path)
                    request.params = params
                    response = await handler(request)
                except HTTPError as exc:
                    if request is None:
                        # The request line / headers did not parse;
                        # the stream position is unknown, so the
                        # connection cannot be reused.
                        request = Request(method="?", path="?")
                        request.id = _mint_request_id(None)
                        keep_alive = False
                    response = Response.error(exc.status, exc.message,
                                              headers=exc.headers)
                except (ConnectionError,
                        asyncio.IncompleteReadError):
                    return
                except Exception as exc:  # handler bug: report only
                    # Log the full traceback server-side; the client
                    # gets a generic body carrying the request id.
                    if observer is not None:
                        observer.observe_error(
                            request.id, exc, method=request.method,
                            path=request.path)
                    response = Response.json(
                        {"error": "internal server error",
                         "request_id": request.id}, status=500)
                response.headers.setdefault("X-Request-Id", request.id)
                try:
                    await write_response(writer, response,
                                         keep_alive=keep_alive)
                except (ConnectionError, asyncio.CancelledError):
                    return  # client went away mid-stream
            finally:
                if in_flight:
                    observer.request_finished()
            if observer is not None:
                # Unrouted requests (404/405/parse errors) share one
                # label so scanners cannot inflate the route set.
                observer.observe_request(
                    request.id, request.method,
                    route if route is not None else "unrouted",
                    response.status, time.monotonic() - started,
                    path=request.path,
                    tenant=request.headers.get("x-tenant"))
            if not keep_alive:
                return
    finally:
        if observer is not None:
            observer.connection_closed()
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_http_server(router: Router, host: str, port: int,
                            observer=None,
                            closing=None) -> asyncio.Server:
    """Bind and return the asyncio server (``server.sockets`` exposes
    the actual port when *port* is 0)."""
    return await asyncio.start_server(
        lambda reader, writer: handle_connection(
            reader, writer, router, observer=observer,
            closing=closing),
        host=host, port=port)


def bound_port(server: asyncio.Server) -> int:
    return server.sockets[0].getsockname()[1]
