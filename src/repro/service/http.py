"""Minimal asyncio HTTP/1.1 layer (stdlib only).

Implements exactly what the campaign service needs and nothing more:
request-line + header parsing with ``Content-Length`` bodies in;
fixed-length JSON/text responses and **chunked transfer encoding**
(for JSONL event streams) out; a path-template router.  One request
per connection (``Connection: close``) keeps the state machine
trivial and works with curl, urllib and ``http.client`` alike — this
is a control plane serving small JSON documents, not a data plane.
"""

from __future__ import annotations

import asyncio
import json
import re
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

REASONS = {
    200: "OK", 201: "Created", 204: "No Content",
    400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    429: "Too Many Requests", 500: "Internal Server Error",
}


class HTTPError(Exception):
    """Raise inside a handler to produce a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    params: dict[str, str] = field(default_factory=dict)

    def json(self):
        if not self.body:
            raise HTTPError(400, "request body must be JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise HTTPError(400, "request body is not valid JSON") \
                from None


@dataclass
class Response:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)
    #: async iterator of bytes chunks; set => chunked transfer.
    stream = None

    @classmethod
    def json(cls, obj, status: int = 200) -> "Response":
        text = json.dumps(obj, indent=2, sort_keys=True) + "\n"
        return cls(status=status, body=text.encode("utf-8"))

    @classmethod
    def text(cls, text: str, status: int = 200,
             content_type: str = "text/plain; charset=utf-8"
             ) -> "Response":
        return cls(status=status, body=text.encode("utf-8"),
                   content_type=content_type)

    @classmethod
    def binary(cls, data: bytes, status: int = 200,
               content_type: str = "application/octet-stream"
               ) -> "Response":
        return cls(status=status, body=data,
                   content_type=content_type)

    @classmethod
    def streaming(cls, aiter, status: int = 200,
                  content_type: str = "application/jsonl"
                  ) -> "Response":
        response = cls(status=status, content_type=content_type)
        response.stream = aiter
        return response

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        return cls.json({"error": message}, status=status)


class Router:
    """Path-template routing: ``/v1/jobs/{id}/status`` binds ``{id}``
    into ``request.params``."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, re.Pattern, object]] = []

    def add(self, method: str, template: str, handler) -> None:
        pattern = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", template)
            + "$")
        self._routes.append((method.upper(), pattern, handler))

    def match(self, method: str, path: str):
        """(handler, params) — raises HTTPError 404/405."""
        allowed = set()
        for route_method, pattern, handler in self._routes:
            found = pattern.match(path)
            if found is None:
                continue
            if route_method != method.upper():
                allowed.add(route_method)
                continue
            return handler, {name: unquote(value) for name, value
                             in found.groupdict().items()}
        if allowed:
            raise HTTPError(405, f"{method} not allowed here "
                                 f"(try: {', '.join(sorted(allowed))})")
        raise HTTPError(404, f"no such resource: {path}")


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; None on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HTTPError(400, "malformed request line")
    method, target = parts[0], parts[1]
    headers: dict[str, str] = {}
    total = len(line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HTTPError(400, "headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise HTTPError(400, "bad Content-Length") from None
        if size > MAX_BODY_BYTES:
            raise HTTPError(400, "request body too large")
        body = await reader.readexactly(size)
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(method=method, path=unquote(split.path),
                   query=query, headers=headers, body=body)


def _head(response: Response, chunked: bool) -> bytes:
    reason = REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}",
             f"Content-Type: {response.content_type}",
             "Connection: close"]
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    else:
        lines.append(f"Content-Length: {len(response.body)}")
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(writer: asyncio.StreamWriter,
                         response: Response) -> None:
    if response.stream is None:
        writer.write(_head(response, chunked=False) + response.body)
        await writer.drain()
        return
    writer.write(_head(response, chunked=True))
    await writer.drain()
    async for chunk in response.stream:
        if not chunk:
            continue
        writer.write(f"{len(chunk):x}\r\n".encode("latin-1")
                     + chunk + b"\r\n")
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()


async def handle_connection(reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter,
                            router: Router) -> None:
    try:
        try:
            request = await read_request(reader)
            if request is None:
                return
            handler, params = router.match(request.method,
                                           request.path)
            request.params = params
            response = await handler(request)
        except HTTPError as exc:
            response = Response.error(exc.status, exc.message)
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        except Exception as exc:  # handler bug: report, don't die
            response = Response.error(
                500, f"{type(exc).__name__}: {exc}")
        try:
            await write_response(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away mid-stream
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_http_server(router: Router, host: str,
                            port: int) -> asyncio.Server:
    """Bind and return the asyncio server (``server.sockets`` exposes
    the actual port when *port* is 0)."""
    return await asyncio.start_server(
        lambda reader, writer: handle_connection(reader, writer,
                                                 router),
        host=host, port=port)


def bound_port(server: asyncio.Server) -> int:
    return server.sockets[0].getsockname()[1]
