"""Job model: specs, states, and result canonicalisation.

A **job** is one campaign submitted to the service: a workload + fault
configuration (:class:`JobSpec`) plus queue bookkeeping (tenant,
priority, lease, digests of the stored artifacts).  Specs are
validated at the API boundary and hashed canonically, so re-submitting
the same campaign is detectable (and its stored result reusable)
before a single instruction is simulated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .store import canonical_json_bytes, digest_bytes

JOB_STATES = ("queued", "leased", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

SCALES = ("tiny", "small", "medium", "paper")

#: Per-experiment result fields that depend on the host rather than
#: the (seed-deterministic) simulation: wall-clock time and its phase
#: attribution.  Everything else — outcome, instructions, ticks,
#: injection site, divergence, propagation — is identical across
#: machines for the same seed, which is what makes result sets
#: content-addressable.
NONDETERMINISTIC_RESULT_FIELDS = ("wall_seconds", "phases")


def canonical_results(results: list[dict]) -> list[dict]:
    """Strip host-dependent fields from campaign result records so the
    same seed produces byte-identical canonical JSON on any machine —
    the form the content store hashes and serves."""
    canonical = []
    for entry in results:
        canonical.append({key: value for key, value in entry.items()
                          if key not in NONDETERMINISTIC_RESULT_FIELDS})
    return canonical


class JobSpecError(ValueError):
    """A submitted job description failed validation."""


@dataclass
class JobSpec:
    """What to run: the campaign parameters of one job."""

    workload: str
    scale: str = "tiny"
    experiments: int = 20
    seed: int = 0
    location: str | None = None
    workers: int = 1
    backend: str = "shared-dir"
    #: publish the campaign with span tracing on; the dispatcher then
    #: roots the job's span tree under its originating HTTP request.
    trace: bool = False

    _FIELDS = ("workload", "scale", "experiments", "seed", "location",
               "workers", "backend", "trace")

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        if not isinstance(payload, dict):
            raise JobSpecError("job spec must be a JSON object")
        unknown = sorted(set(payload) - set(cls._FIELDS))
        if unknown:
            raise JobSpecError(
                f"unknown job spec field(s): {', '.join(unknown)}")
        if "workload" not in payload:
            raise JobSpecError("job spec needs a 'workload'")
        spec = cls(workload=payload["workload"])
        for name in cls._FIELDS[1:]:
            if name in payload and payload[name] is not None:
                setattr(spec, name, payload[name])
        spec.validate()
        return spec

    def validate(self) -> None:
        from ..workloads import WORKLOAD_NAMES
        if self.workload not in WORKLOAD_NAMES:
            raise JobSpecError(
                f"unknown workload '{self.workload}' "
                f"(known: {', '.join(WORKLOAD_NAMES)})")
        if self.scale not in SCALES:
            raise JobSpecError(f"unknown scale '{self.scale}' "
                               f"(known: {', '.join(SCALES)})")
        if not isinstance(self.experiments, int) \
                or not 1 <= self.experiments <= 100_000:
            raise JobSpecError("experiments must be an integer in "
                               "[1, 100000]")
        if not isinstance(self.seed, int):
            raise JobSpecError("seed must be an integer")
        if self.location is not None \
                and not isinstance(self.location, str):
            raise JobSpecError("location must be a string or null")
        if self.location is not None:
            from ..core import LocationKind
            try:
                LocationKind(self.location)
            except ValueError:
                raise JobSpecError(
                    f"unknown fault location '{self.location}'") \
                    from None
        if not isinstance(self.workers, int) \
                or not 0 <= self.workers <= 64:
            raise JobSpecError("workers must be an integer in [0, 64] "
                               "(0/1 = run in the dispatcher process)")
        from ..campaign import backend_names
        if self.backend not in backend_names():
            raise JobSpecError(
                f"unknown campaign backend '{self.backend}' "
                f"(registered: {', '.join(backend_names())})")
        if not isinstance(self.trace, bool):
            raise JobSpecError("trace must be a boolean")

    def as_dict(self) -> dict:
        return {"workload": self.workload, "scale": self.scale,
                "experiments": self.experiments, "seed": self.seed,
                "location": self.location, "workers": self.workers,
                "backend": self.backend, "trace": self.trace}

    def canonical(self) -> bytes:
        return canonical_json_bytes(self.as_dict())

    def digest(self) -> str:
        return digest_bytes(self.canonical())


@dataclass
class Job:
    """One queue row: a spec plus its lifecycle bookkeeping."""

    id: str
    tenant: str
    priority: int
    state: str
    spec: JobSpec
    spec_digest: str
    submitted: float
    started: float | None = None
    finished: float | None = None
    lease_owner: str | None = None
    lease_expires: float | None = None
    attempts: int = 0
    result_digest: str | None = None
    report_digest: str | None = None
    checkpoint_digest: str | None = None
    error: str | None = None
    share_dir: str | None = None
    reused_from: str | None = None
    request_id: str | None = None
    extra: dict = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def as_dict(self) -> dict:
        return {
            "id": self.id, "tenant": self.tenant,
            "priority": self.priority, "state": self.state,
            "spec": self.spec.as_dict(),
            "spec_digest": self.spec_digest,
            "submitted": self.submitted, "started": self.started,
            "finished": self.finished,
            "lease_owner": self.lease_owner,
            "lease_expires": self.lease_expires,
            "attempts": self.attempts,
            "result_digest": self.result_digest,
            "report_digest": self.report_digest,
            "checkpoint_digest": self.checkpoint_digest,
            "error": self.error, "share_dir": self.share_dir,
            "reused_from": self.reused_from,
            "request_id": self.request_id,
        }

    @classmethod
    def from_row(cls, row) -> "Job":
        return cls(
            id=row["id"], tenant=row["tenant"],
            priority=row["priority"], state=row["state"],
            spec=JobSpec.from_dict(json.loads(row["spec"])),
            spec_digest=row["spec_digest"],
            submitted=row["submitted"], started=row["started"],
            finished=row["finished"], lease_owner=row["lease_owner"],
            lease_expires=row["lease_expires"],
            attempts=row["attempts"],
            result_digest=row["result_digest"],
            report_digest=row["report_digest"],
            checkpoint_digest=row["checkpoint_digest"],
            error=row["error"], share_dir=row["share_dir"],
            reused_from=row["reused_from"],
            request_id=row["request_id"]
            if "request_id" in row.keys() else None)
