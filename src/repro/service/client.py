"""Stdlib client for the campaign service.

``http.client`` against the service API — used by ``gemfi submit`` /
``gemfi jobs`` / ``gemfi fetch`` and by tests, and importable by any
script that wants to drive a campaign service programmatically.

The client keeps **one persistent connection** and reuses it across
requests (the server speaks HTTP/1.1 keep-alive), reconnecting
transparently when the server closed it — after its per-connection
request cap, during shutdown, or because the network dropped.  The
event stream uses its own connection so a long poll never blocks
normal calls.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlencode, urlsplit

#: connection-level failures worth one transparent retry on a fresh
#: connection: the pooled socket may simply have been closed by the
#: server between our requests.
_RETRYABLE = (http.client.RemoteDisconnected,
              http.client.CannotSendRequest,
              http.client.BadStatusLine,
              ConnectionError)


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str,
                 payload: dict | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.payload = payload or {}


class ServiceClient:
    def __init__(self, url: str, tenant: str = "default",
                 timeout: float = 30.0) -> None:
        split = urlsplit(url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(f"not an http:// service URL: {url}")
        self.host = split.hostname
        self.port = split.port or 80
        self.tenant = tenant
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing -------------------------------------------------------------

    def _connect(self, timeout: float | None = None
                 ) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout)

    def close(self) -> None:
        """Drop the pooled connection (safe to call any time; the
        next request reconnects)."""
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send_once(self, method: str, path: str, payload,
                   headers: dict) -> tuple[int, bytes, bool]:
        if self._conn is None:
            self._conn = self._connect()
        self._conn.request(method, path, body=payload,
                           headers=headers)
        response = self._conn.getresponse()
        data = response.read()
        return response.status, data, response.will_close

    def _request(self, method: str, path: str,
                 body: dict | None = None,
                 query: dict | None = None) -> tuple[int, bytes]:
        if query:
            path = f"{path}?{urlencode(query)}"
        headers = {"X-Tenant": self.tenant}
        payload = None
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            status, data, closed = self._send_once(method, path,
                                                   payload, headers)
        except _RETRYABLE:
            # The pooled socket died between requests (server cap,
            # restart, network blip); retry exactly once on a fresh
            # connection.
            self.close()
            try:
                status, data, closed = self._send_once(
                    method, path, payload, headers)
            except BaseException:
                self.close()
                raise
        except BaseException:
            self.close()
            raise
        if closed:
            self.close()
        return status, data

    def _json(self, method: str, path: str, body: dict | None = None,
              query: dict | None = None) -> dict:
        status, data = self._request(method, path, body=body,
                                     query=query)
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            payload = {}
        if status >= 400:
            raise ServiceError(status,
                               payload.get("error", data[:200].decode(
                                   "utf-8", "replace")),
                               payload)
        return payload

    # -- API surface ----------------------------------------------------------

    def healthz(self) -> dict:
        return self._json("GET", "/v1/healthz")

    def submit(self, spec: dict, priority: int = 0,
               reuse: bool = True) -> dict:
        body = dict(spec)
        body["priority"] = priority
        body["reuse"] = reuse
        return self._json("POST", "/v1/jobs", body=body)["job"]

    def jobs(self, tenant: str | None = None) -> dict:
        query = {"tenant": tenant} if tenant else None
        return self._json("GET", "/v1/jobs", query=query)

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")["job"]

    def cancel(self, job_id: str) -> dict:
        return self._json("DELETE", f"/v1/jobs/{job_id}")["job"]

    def status(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}/status")

    def report(self, job_id: str, fmt: str = "md") -> str:
        status, data = self._request(
            "GET", f"/v1/jobs/{job_id}/report", query={"format": fmt})
        if status >= 400:
            raise ServiceError(status,
                               data[:200].decode("utf-8", "replace"))
        return data.decode("utf-8")

    def results(self, job_id: str) -> list[dict]:
        status, data = self._request("GET",
                                     f"/v1/jobs/{job_id}/results")
        if status >= 400:
            raise ServiceError(status,
                               data[:200].decode("utf-8", "replace"))
        return json.loads(data.decode("utf-8"))

    def fetch(self, digest: str) -> bytes:
        status, data = self._request("GET", f"/v1/blobs/{digest}")
        if status >= 400:
            raise ServiceError(status,
                               data[:200].decode("utf-8", "replace"))
        return data

    def store_stats(self) -> dict:
        return self._json("GET", "/v1/store/stats")

    def usage(self, tenant: str | None = None) -> dict:
        query = {"tenant": tenant} if tenant else None
        return self._json("GET", "/v1/usage", query=query)["usage"]

    def history(self, prefix: str | None = None,
                since: float | None = None,
                limit: int | None = None) -> dict:
        """The recorded metrics time series from ``GET /v1/history``:
        ``{"history": {series: [[time, value], ...]}, "meta": ...}``."""
        query: dict = {}
        if prefix:
            query["prefix"] = prefix
        if since is not None:
            query["since"] = since
        if limit is not None:
            query["limit"] = limit
        return self._json("GET", "/v1/history", query=query or None)

    def summary(self, ref: str) -> dict:
        """A job's archived (or rebuilt) campaign summary payload."""
        return self._json("GET",
                          f"/v1/jobs/{ref}/summary")["summary"]

    def archive(self, tenant: str | None = None) -> dict:
        """``{"archive": [...], "baselines": {...}}`` — the archived
        campaign index."""
        query = {"tenant": tenant} if tenant else None
        return self._json("GET", "/v1/archive", query=query)

    def baselines(self) -> dict:
        return self._json("GET", "/v1/baselines")["baselines"]

    def tag_baseline(self, name: str, job_id: str) -> dict:
        return self._json("POST", "/v1/baselines",
                          body={"name": name,
                                "job": job_id})["baseline"]

    def compare(self, base: str, head: str,
                confidence: float | None = None,
                margin: float | None = None) -> dict:
        """Server-side campaign diff: *base*/*head* are job ids or
        baseline names; returns the ``repro.analysis.diff`` payload."""
        query: dict = {"base": base, "head": head}
        if confidence is not None:
            query["confidence"] = confidence
        if margin is not None:
            query["margin"] = margin
        return self._json("GET", "/v1/compare",
                          query=query)["compare"]

    def metrics_text(self) -> str:
        """The raw OpenMetrics exposition from ``GET /metrics``."""
        status, data = self._request("GET", "/metrics")
        if status >= 400:
            raise ServiceError(status,
                               data[:200].decode("utf-8", "replace"))
        return data.decode("utf-8")

    def dashboard(self, job_id: str) -> dict:
        """One server-rendered watchdog frame for the job's share:
        ``{"job", "text", "alerts"}``."""
        return self._json("GET", f"/v1/jobs/{job_id}/dashboard")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.5) -> dict:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after "
                    f"{timeout:.0f}s")
            time.sleep(poll)

    def events(self, job_id: str, poll: float = 0.5,
               limit: int = 0, timeout: float | None = None):
        """Yield decoded JSONL records from the chunked event stream
        until the server ends it (terminal job or *limit* frames)."""
        query = urlencode({"poll": poll, "max": limit})
        conn = self._connect(timeout=timeout or max(
            self.timeout, poll * 4 + 30.0))
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events?{query}",
                         headers={"X-Tenant": self.tenant})
            response = conn.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = json.loads(data)["error"]
                except (ValueError, KeyError):
                    message = data[:200].decode("utf-8", "replace")
                raise ServiceError(response.status, message)
            # http.client strips the chunked framing for us; the
            # payload is plain JSONL at this point.
            buffer = b""
            while True:
                block = response.read(4096)
                if not block:
                    break
                buffer += block
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
            if buffer.strip():
                yield json.loads(buffer.decode("utf-8"))
        finally:
            conn.close()
