"""Content-addressed artifact store: SHA-256 over canonical bytes.

Every artifact the service keeps — campaign result sets, reports,
golden-run checkpoints — is stored once under the SHA-256 digest of
its bytes, git-object style::

    store/
      objects/ab/cdef0123...    (62 hex chars after the 2-char fan-out)

JSON artifacts are hashed over their **canonical encoding** (sorted
keys, minimal separators, UTF-8), so two runs that produce the same
logical result — a re-submitted campaign, the same seed on another
machine — map to the same digest and are stored exactly once.  Writes
go through a temp file + ``os.replace``, so a crashed writer never
leaves a partial object; an object, once present, is immutable.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading

_HEX = set("0123456789abcdef")


def canonical_json_bytes(obj) -> bytes:
    """The canonical (digest-stable) encoding of a JSON value."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")


def digest_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class ContentStore:
    """A directory of immutable objects keyed by content digest."""

    def __init__(self, root: str, observer=None) -> None:
        self.root = root
        self.objects_dir = os.path.join(root, "objects")
        #: optional ServiceObserver; hooks cost a pointer test.
        self.observer = observer
        os.makedirs(self.objects_dir, exist_ok=True)

    # -- addressing -----------------------------------------------------------

    def path(self, digest: str) -> str:
        if len(digest) != 64 or not set(digest) <= _HEX:
            raise ValueError(f"not a SHA-256 digest: {digest!r}")
        return os.path.join(self.objects_dir, digest[:2], digest[2:])

    def has(self, digest: str) -> bool:
        return os.path.exists(self.path(digest))

    # -- writing --------------------------------------------------------------

    def put_bytes(self, data: bytes) -> str:
        """Store *data*, returning its digest.  Idempotent: an object
        that already exists is not rewritten (dedup)."""
        digest = digest_bytes(data)
        path = self.path(digest)
        if os.path.exists(path):
            if self.observer is not None:
                self.observer.inc("store.dedup_hits")
            return digest
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
        if self.observer is not None:
            self.observer.inc("store.writes")
            self.observer.inc("store.bytes_written",
                              amount=len(data))
        return digest

    def put_json(self, obj) -> str:
        """Store the canonical encoding of *obj*."""
        return self.put_bytes(canonical_json_bytes(obj))

    def put_text(self, text: str) -> str:
        return self.put_bytes(text.encode("utf-8"))

    # -- reading --------------------------------------------------------------

    def get(self, digest: str) -> bytes:
        try:
            with open(self.path(digest), "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            raise KeyError(digest) from None
        if self.observer is not None:
            self.observer.inc("store.reads")
        return data

    def get_json(self, digest: str):
        return json.loads(self.get(digest).decode("utf-8"))

    def verify(self, digest: str) -> bool:
        """Recompute the digest of a stored object (bit-rot check)."""
        return digest_bytes(self.get(digest)) == digest

    def verify_all(self) -> dict:
        """Full integrity sweep (``gemfi store verify``): recompute
        every object's digest and flag what shouldn't be there.

        Returns ``{"checked", "corrupt", "orphaned", "ok"}`` —
        *corrupt* lists digests whose bytes no longer hash to their
        name (bit rot, truncation), *orphaned* lists paths under
        ``objects/`` that are not valid objects (crashed-writer temp
        files, stray names).  Reads bypass the observer counters so a
        sweep doesn't masquerade as traffic."""
        checked = 0
        corrupt: list[str] = []
        orphaned: list[str] = []
        for fan in sorted(os.listdir(self.objects_dir)):
            fan_dir = os.path.join(self.objects_dir, fan)
            if not os.path.isdir(fan_dir):
                orphaned.append(fan)
                continue
            if len(fan) != 2 or not set(fan) <= _HEX:
                orphaned.extend(f"{fan}/{name}" for name
                                in sorted(os.listdir(fan_dir)))
                continue
            for name in sorted(os.listdir(fan_dir)):
                if name.endswith(".tmp") or ".tmp." in name:
                    orphaned.append(f"{fan}/{name}")
                    continue
                digest = fan + name
                if len(digest) != 64 or not set(digest) <= _HEX:
                    orphaned.append(f"{fan}/{name}")
                    continue
                checked += 1
                try:
                    with open(os.path.join(fan_dir, name),
                              "rb") as handle:
                        data = handle.read()
                except OSError:
                    corrupt.append(digest)
                    continue
                if digest_bytes(data) != digest:
                    corrupt.append(digest)
        return {"checked": checked, "corrupt": corrupt,
                "orphaned": orphaned,
                "ok": not corrupt and not orphaned}

    # -- bookkeeping ----------------------------------------------------------

    def stats(self) -> dict:
        objects = 0
        total = 0
        for fan in sorted(os.listdir(self.objects_dir)):
            fan_dir = os.path.join(self.objects_dir, fan)
            if not os.path.isdir(fan_dir):
                continue
            for name in os.listdir(fan_dir):
                if name.endswith(".tmp") or ".tmp." in name:
                    continue
                try:
                    total += os.path.getsize(
                        os.path.join(fan_dir, name))
                except OSError:
                    continue
                objects += 1
        return {"objects": objects, "bytes": total}
