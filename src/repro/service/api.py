"""The campaign service API and its composition root.

ProFIPy-style FIaaS surface over the job queue, the dispatcher and the
content store::

    GET    /v1/healthz               liveness + queue/store summary
    POST   /v1/jobs                  submit a workload+fault-config job
    GET    /v1/jobs[?tenant=]        list jobs + per-tenant state counts
    GET    /v1/jobs/{id}             one job
    DELETE /v1/jobs/{id}             cancel (queued jobs only)
    GET    /v1/jobs/{id}/status      job + live campaign share status
    GET    /v1/jobs/{id}/events      chunked JSONL: status + watchdog
                                     alerts until the job is terminal
    GET    /v1/jobs/{id}/report      outcome report (md/html)
    GET    /v1/jobs/{id}/results     canonical result set (JSON)
    GET    /v1/jobs/{id}/dashboard   one rendered watchdog frame (for
                                     ``gemfi dashboard --url``)
    GET    /v1/blobs/{digest}        any stored artifact by digest
    GET    /v1/store/stats           content-store object/byte counts
    GET    /v1/usage[?tenant=]       persisted per-tenant metering
    GET    /v1/history               bounded metrics time series
    GET    /metrics                  OpenMetrics exposition
    GET    /ui/...                   the embedded web console (opt-in)

Status and event streams are the existing telemetry health plane —
``read_status`` and the watchdog rules — evaluated over the job's
private share directory; the service adds no second source of truth.
The same discipline holds for ``/metrics``: every counter is hung off
one shared :class:`~repro.service.observability.ServiceObserver` by
the layer that owns the event (HTTP handler, queue, store,
dispatcher), and the handler only refreshes the point-in-time gauges
(queue depth, store size, usage totals) at scrape time.

:class:`Service` wires queue + store + dispatcher + HTTP server into
one deployable unit (``gemfi serve``).
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time

from ..telemetry.campaign import read_status
from ..telemetry.export import (
    OPENMETRICS_CONTENT_TYPE,
    render_openmetrics,
)
from ..telemetry.history import (
    DEFAULT_INTERVAL,
    DEFAULT_RETENTION,
    HistoryRecorder,
    HistoryStore,
)
from ..telemetry.watchdog import (
    WatchdogConfig,
    evaluate_alerts,
    render_dashboard,
)
from .dispatcher import Dispatcher
from .http import (
    HTTPError,
    Request,
    Response,
    Router,
    bound_port,
    start_http_server,
)
from .jobs import JobSpec, JobSpecError
from .observability import HELP_TEXTS, LOG_DIR, ServiceObserver
from .queue import USAGE_FIELDS, JobQueue, QuotaExceeded, UnknownJobError
from .store import ContentStore


def _jsonl(obj) -> bytes:
    return (json.dumps(obj, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


class ServiceApp:
    """Endpoint handlers over a queue + store pair."""

    def __init__(self, queue: JobQueue, store: ContentStore,
                 watchdog_config: WatchdogConfig | None = None,
                 observer: ServiceObserver | None = None,
                 history: HistoryStore | None = None,
                 history_interval: float = DEFAULT_INTERVAL,
                 ui: bool = False,
                 clock=time.time) -> None:
        self.queue = queue
        self.store = store
        self.watchdog_config = watchdog_config or WatchdogConfig()
        self.observer = observer
        self.history = history
        self.history_interval = history_interval
        self._clock = clock
        # share-signature cache for the coverage.* gauges: job id ->
        # ((result count, newest mtime), gauges).
        self._coverage_cache: dict[str, tuple[tuple, dict]] = {}
        self.router = Router()
        add = self.router.add
        add("GET", "/v1/healthz", self.healthz)
        add("POST", "/v1/jobs", self.submit)
        add("GET", "/v1/jobs", self.list_jobs)
        add("GET", "/v1/jobs/{id}", self.job_detail)
        add("DELETE", "/v1/jobs/{id}", self.cancel)
        add("GET", "/v1/jobs/{id}/status", self.job_status)
        add("GET", "/v1/jobs/{id}/events", self.job_events)
        add("GET", "/v1/jobs/{id}/report", self.job_report)
        add("GET", "/v1/jobs/{id}/results", self.job_results)
        add("GET", "/v1/jobs/{id}/dashboard", self.job_dashboard)
        add("GET", "/v1/jobs/{id}/coverage", self.job_coverage)
        add("GET", "/v1/blobs/{digest}", self.blob)
        add("GET", "/v1/store/stats", self.store_stats)
        add("GET", "/v1/usage", self.usage)
        add("GET", "/v1/history", self.history_series)
        add("GET", "/metrics", self.metrics)
        self.console = None
        if ui:
            from .console import Console
            self.console = Console(self)
            self.console.register(self.router)

    # -- helpers --------------------------------------------------------------

    def _job(self, request: Request):
        try:
            return self.queue.get(request.params["id"])
        except UnknownJobError:
            raise HTTPError(404,
                            f"no such job: {request.params['id']}") \
                from None

    @staticmethod
    def _share(job) -> str | None:
        if job.share_dir and os.path.isdir(job.share_dir):
            return job.share_dir
        return None

    # -- handlers -------------------------------------------------------------

    async def healthz(self, request: Request) -> Response:
        return Response.json({
            "ok": True,
            "queue_depth": self.queue.depth(),
            "tenants": self.queue.tenant_counts(),
            "store": self.store.stats(),
        })

    async def submit(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(400, "job submission must be a JSON "
                                 "object")
        tenant = request.headers.get("x-tenant") \
            or payload.pop("tenant", None) or "default"
        priority = payload.pop("priority", 0)
        reuse = bool(payload.pop("reuse", True))
        if not isinstance(priority, int):
            raise HTTPError(400, "priority must be an integer")
        try:
            spec = JobSpec.from_dict(payload)
        except JobSpecError as exc:
            raise HTTPError(400, str(exc)) from None
        try:
            job = self.queue.submit(spec, tenant=tenant,
                                    priority=priority, reuse=reuse,
                                    request_id=request.id or None)
        except QuotaExceeded as exc:
            raise HTTPError(429, str(exc)) from None
        # A dedup hit is born done (200); fresh submissions are 201.
        status = 200 if job.state == "done" else 201
        return Response.json({"job": job.as_dict()}, status=status)

    async def list_jobs(self, request: Request) -> Response:
        tenant = request.query.get("tenant")
        jobs = self.queue.list_jobs(tenant=tenant)
        return Response.json({
            "jobs": [job.as_dict() for job in jobs],
            "tenants": self.queue.tenant_counts(),
            "queue_depth": self.queue.depth(),
        })

    async def job_detail(self, request: Request) -> Response:
        return Response.json({"job": self._job(request).as_dict()})

    async def cancel(self, request: Request) -> Response:
        job = self._job(request)
        if not self.queue.cancel(job.id):
            raise HTTPError(
                409, f"job {job.id} is {job.state}; only queued jobs "
                     f"can be cancelled")
        return Response.json(
            {"job": self.queue.get(job.id).as_dict()})

    async def job_status(self, request: Request) -> Response:
        job = self._job(request)
        payload = {"job": job.as_dict()}
        share = self._share(job)
        if share is not None:
            payload["campaign"] = read_status(
                share, clock=self._clock).as_dict()
        return Response.json(payload)

    async def job_events(self, request: Request) -> Response:
        job = self._job(request)
        try:
            poll = max(0.05, float(request.query.get("poll", "0.5")))
            limit = int(request.query.get("max", "0"))
        except ValueError:
            raise HTTPError(400, "poll/max must be numbers") from None
        queue = self.queue
        config = self.watchdog_config
        clock = self._clock

        async def stream():
            seen_alerts: set[tuple] = set()
            frames = 0
            while True:
                current = queue.get(job.id)
                frame = {"type": "status", "job": current.id,
                         "state": current.state, "time": clock()}
                share = self._share(current)
                if share is not None:
                    frame["campaign"] = read_status(
                        share, clock=clock).as_dict()
                yield _jsonl(frame)
                if share is not None:
                    _, alerts = evaluate_alerts(share, config,
                                                clock=clock)
                    for alert in alerts:
                        if alert.key in seen_alerts:
                            continue
                        seen_alerts.add(alert.key)
                        entry = alert.as_dict()
                        entry["type"] = "alert"
                        entry["job"] = current.id
                        yield _jsonl(entry)
                frames += 1
                if current.terminal:
                    yield _jsonl({"type": "end", "job": current.id,
                                  "state": current.state,
                                  "result_digest":
                                      current.result_digest})
                    return
                if limit and frames >= limit:
                    return
                await asyncio.sleep(poll)

        return Response.streaming(stream())

    async def job_report(self, request: Request) -> Response:
        job = self._job(request)
        fmt = request.query.get("format", "md")
        if fmt not in ("md", "html"):
            raise HTTPError(400, "format must be md or html")
        share = self._share(job)
        if share is not None:
            from ..telemetry.report import load_share, render_report
            text = render_report(load_share(share), fmt=fmt)
            content_type = "text/html; charset=utf-8" \
                if fmt == "html" else "text/markdown; charset=utf-8"
            return Response.text(text, content_type=content_type)
        if fmt == "md" and job.report_digest \
                and self.store.has(job.report_digest):
            return Response.text(
                self.store.get(job.report_digest).decode("utf-8"),
                content_type="text/markdown; charset=utf-8")
        raise HTTPError(404, f"no report for job {job.id} yet")

    async def job_results(self, request: Request) -> Response:
        job = self._job(request)
        if not job.result_digest \
                or not self.store.has(job.result_digest):
            raise HTTPError(404,
                            f"no stored results for job {job.id} yet")
        return Response.binary(self.store.get(job.result_digest),
                               content_type="application/json")

    async def blob(self, request: Request) -> Response:
        digest = request.params["digest"]
        try:
            data = self.store.get(digest)
        except ValueError:
            raise HTTPError(400, f"not a digest: {digest}") from None
        except KeyError:
            raise HTTPError(404, f"no object {digest}") from None
        content_type = "application/json" \
            if data[:1] in (b"{", b"[") else "application/octet-stream"
        return Response.binary(data, content_type=content_type)

    async def job_dashboard(self, request: Request) -> Response:
        """One server-rendered watchdog frame for the job's share —
        ``gemfi dashboard --url`` polls this instead of needing
        filesystem access to the share."""
        job = self._job(request)
        share = self._share(job)
        payload = {"job": job.as_dict(), "text": None, "alerts": []}
        if share is not None:
            text, alerts = render_dashboard(share, self.watchdog_config,
                                            clock=self._clock)
            payload["text"] = text
            payload["alerts"] = [alert.as_dict() for alert in alerts]
        return Response.json(payload)

    async def job_coverage(self, request: Request) -> Response:
        """Fault-space coverage analytics for one job's share: space
        visited, per-dimension outcome heatmaps with Wilson-interval
        cells, margin convergence (repro.analysis.coverage)."""
        job = self._job(request)
        share = self._share(job)
        if share is None:
            raise HTTPError(404, f"no campaign share for job {job.id} "
                                 f"yet")
        from ..analysis.coverage import coverage_from_share
        payload = coverage_from_share(share).as_dict()
        return Response.json({"job": job.id, "coverage": payload})

    async def store_stats(self, request: Request) -> Response:
        return Response.json(self.store.stats())

    async def usage(self, request: Request) -> Response:
        tenant = request.query.get("tenant")
        return Response.json({"usage": self.queue.usage(tenant=tenant)})

    async def history_series(self, request: Request) -> Response:
        """Bounded time series sampled from the same registry that
        ``/metrics`` renders: ``?prefix=`` filters by series name,
        ``?since=`` by sample time, ``?limit=`` caps the newest
        samples per series.  ``meta.rounds`` is monotone across the
        recorder's life even though retention bounds the samples."""
        if self.history is None:
            raise HTTPError(404, "metrics history is not enabled on "
                                 "this service")
        try:
            since = float(request.query["since"]) \
                if "since" in request.query else None
            limit = int(request.query.get("limit", "0")) or None
        except ValueError:
            raise HTTPError(400, "since/limit must be numbers") \
                from None
        series = self.history.series(
            prefix=request.query.get("prefix") or None,
            since=since, limit=limit)
        meta = self.history.summary()
        meta["interval"] = self.history_interval
        return Response.json({"history": series, "meta": meta})

    # -- metrics --------------------------------------------------------------

    #: coverage.* gauges are computed for at most this many jobs
    #: (the newest ones with shares) per refresh, so scrape cost stays
    #: bounded no matter how long the job history grows.
    COVERAGE_GAUGE_JOBS = 3

    def _coverage_gauge_sets(self) -> list[tuple[str, dict]]:
        """(job id, coverage gauges) for the newest jobs with shares.

        Re-reading every result on every history beat would dwarf the
        scrape itself, so each share's gauges are cached against a
        cheap signature (result-file count + newest mtime) and only
        recomputed when new results have landed."""
        from ..analysis.coverage import (
            coverage_from_share,
            coverage_gauges,
        )
        jobs = [job for job in self.queue.list_jobs()
                if self._share(job) is not None]
        out = []
        for job in jobs[-self.COVERAGE_GAUGE_JOBS:]:
            share = self._share(job)
            results_dir = os.path.join(share, "results")
            count, newest = 0, 0.0
            try:
                with os.scandir(results_dir) as entries:
                    for entry in entries:
                        if not entry.name.endswith(".json"):
                            continue
                        count += 1
                        try:
                            newest = max(newest,
                                         entry.stat().st_mtime)
                        except OSError:
                            pass
            except OSError:
                pass
            signature = (count, newest)
            cached = self._coverage_cache.get(job.id)
            if cached is not None and cached[0] == signature:
                out.append((job.id, cached[1]))
                continue
            gauges = coverage_gauges(
                coverage_from_share(share).as_dict())
            self._coverage_cache[job.id] = (signature, gauges)
            out.append((job.id, gauges))
        # Forget shares that fell out of the window.
        keep = {job_id for job_id, _ in out}
        for job_id in list(self._coverage_cache):
            if job_id not in keep:
                del self._coverage_cache[job_id]
        return out

    def _refresh_gauges(self) -> None:
        """Point-in-time families recomputed at scrape time (counters
        and histograms accumulate where the events happen)."""
        observer = self.observer
        registry = observer.registry
        coverage_sets = self._coverage_gauge_sets()
        with observer._lock:
            for prefix in ("queue.depth", "queue.tenant_active",
                           "queue.tenant_quota", "store.objects",
                           "store.bytes", "usage.jobs",
                           "usage.experiments", "usage.instructions",
                           "usage.wall_seconds", "usage.kips",
                           "coverage"):
                registry.prune(prefix)
        for job_id, gauges in coverage_sets:
            for name, value in sorted(gauges.items()):
                observer.set_gauge(name, value, job=job_id)
        observer.set_gauge("queue.depth", self.queue.depth())
        for tenant, states in sorted(self.queue.tenant_counts().items()):
            active = states.get("queued", 0) + states.get("leased", 0)
            observer.set_gauge("queue.tenant_active", active,
                               tenant=tenant)
            observer.set_gauge("queue.tenant_quota",
                               self.queue.quota(tenant), tenant=tenant)
        stats = self.store.stats()
        observer.set_gauge("store.objects", stats["objects"])
        observer.set_gauge("store.bytes", stats["bytes"])
        for tenant, totals in sorted(self.queue.usage().items()):
            for field in USAGE_FIELDS:
                observer.set_gauge(f"usage.{field}", totals[field],
                                   tenant=tenant)
            # Aggregate sim rate per tenant (KIPS, the paper's unit),
            # derived from the persisted metering so the console's
            # trend chart works even across service restarts.
            wall = totals.get("wall_seconds") or 0.0
            if wall > 0:
                observer.set_gauge(
                    "usage.kips",
                    totals.get("instructions", 0) / wall / 1000.0,
                    tenant=tenant)

    async def metrics(self, request: Request) -> Response:
        if self.observer is None:
            raise HTTPError(404, "metrics are not enabled on this "
                                 "service")
        self._refresh_gauges()
        with self.observer._lock:
            text = render_openmetrics(self.observer.registry,
                                      help_texts=HELP_TEXTS)
        return Response.text(text,
                             content_type=OPENMETRICS_CONTENT_TYPE)


class Service:
    """queue + store + dispatcher + HTTP server, one data directory::

        data_dir/
          queue.db      the persistent job queue (SQLite WAL)
          store/        the content-addressed artifact store
          shares/<job>  one campaign share per job (telemetry plane)
          logs/         JSONL access + error logs (observability)
          history.db    bounded metrics time series (ring retention)

    *ui* registers the embedded web console under ``GET /ui``;
    *history_interval* (seconds; <= 0 disables the recorder beat) and
    *history_retention* (samples kept per series) size the metrics
    history.  Neither ever writes inside a job share, so same-seed
    campaign results stay byte-identical with the console enabled.
    """

    def __init__(self, data_dir: str, host: str = "127.0.0.1",
                 port: int = 0, default_quota: int = 0,
                 lease_seconds: float = 600.0,
                 poll_seconds: float = 0.5,
                 watchdog_config: WatchdogConfig | None = None,
                 ui: bool = False,
                 history_interval: float = DEFAULT_INTERVAL,
                 history_retention: int = DEFAULT_RETENTION,
                 clock=time.time) -> None:
        os.makedirs(data_dir, exist_ok=True)
        self.data_dir = data_dir
        self.host = host
        self.requested_port = port
        self.port: int | None = None
        self.observer = ServiceObserver(
            log_dir=os.path.join(data_dir, LOG_DIR), clock=clock)
        self.queue = JobQueue(os.path.join(data_dir, "queue.db"),
                              default_quota=default_quota,
                              observer=self.observer, clock=clock)
        self.store = ContentStore(os.path.join(data_dir, "store"),
                                  observer=self.observer)
        self.dispatcher = Dispatcher(
            self.queue, self.store, data_dir,
            lease_seconds=lease_seconds, poll_seconds=poll_seconds,
            observer=self.observer, clock=clock)
        self.history = HistoryStore(
            os.path.join(data_dir, "history.db"),
            retention=history_retention)
        self.app = ServiceApp(self.queue, self.store,
                              watchdog_config=watchdog_config,
                              observer=self.observer,
                              history=self.history,
                              history_interval=history_interval,
                              ui=ui, clock=clock)
        self.recorder = HistoryRecorder(
            self.observer.snapshot, self.history,
            interval=history_interval,
            refresh=self.app._refresh_gauges, clock=clock)
        self._stop = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._http_thread: threading.Thread | None = None
        self._dispatch_thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------------

    def start_http(self) -> "Service":
        """Bind and serve the API on a daemon thread with its own
        event loop; returns once the port is bound."""
        started = threading.Event()
        failure: list[BaseException] = []

        def _serve() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                server = loop.run_until_complete(start_http_server(
                    self.app.router, self.host, self.requested_port,
                    observer=self.observer, closing=self._stop))
            except BaseException as exc:
                failure.append(exc)
                started.set()
                loop.close()
                return
            self.port = bound_port(server)
            started.set()
            try:
                loop.run_forever()
            finally:
                server.close()
                loop.run_until_complete(server.wait_closed())
                # Keep-alive connections may still be parked in
                # read_request; cancel their handler tasks so the
                # transports close while the loop can still run.
                tasks = asyncio.all_tasks(loop)
                for task in tasks:
                    task.cancel()
                if tasks:
                    loop.run_until_complete(asyncio.gather(
                        *tasks, return_exceptions=True))
                loop.close()

        self._http_thread = threading.Thread(
            target=_serve, name="service-http", daemon=True)
        self._http_thread.start()
        started.wait(timeout=10.0)
        if failure:
            raise RuntimeError(
                f"could not bind {self.host}:{self.requested_port}: "
                f"{failure[0]}") from failure[0]
        if self.port is None:
            raise RuntimeError("HTTP server did not start")
        self.recorder.start()
        return self

    def start_dispatcher(self) -> "Service":
        """Run the dispatch loop on a background thread (tests and
        embedded use; `gemfi serve` dispatches on the main thread so
        worker processes fork from there)."""
        self._dispatch_thread = threading.Thread(
            target=self.dispatcher.run_forever, args=(self._stop,),
            name="service-dispatcher", daemon=True)
        self._dispatch_thread.start()
        return self

    def start(self) -> "Service":
        return self.start_http().start_dispatcher()

    def dispatch_forever(self) -> None:
        """Blocking dispatch loop for the CLI main thread."""
        self.dispatcher.run_forever(self._stop)

    def stop(self) -> None:
        self._stop.set()
        self.recorder.stop()
        if self._dispatch_thread is not None:
            self._dispatch_thread.join(timeout=30.0)
            self._dispatch_thread = None
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._http_thread is not None:
            self._http_thread.join(timeout=10.0)
            self._http_thread = None
        self.history.close()
