"""The campaign service API and its composition root.

ProFIPy-style FIaaS surface over the job queue, the dispatcher and the
content store::

    GET    /v1/healthz               liveness + queue/store summary
    POST   /v1/jobs                  submit a workload+fault-config job
    GET    /v1/jobs[?tenant=]        list jobs + per-tenant state counts
    GET    /v1/jobs/{id}             one job
    DELETE /v1/jobs/{id}             cancel (queued jobs only)
    GET    /v1/jobs/{id}/status      job + live campaign share status
    GET    /v1/jobs/{id}/events      chunked JSONL: status + watchdog
                                     alerts until the job is terminal
    GET    /v1/jobs/{id}/report      outcome report (md/html)
    GET    /v1/jobs/{id}/results     canonical result set (JSON)
    GET    /v1/jobs/{id}/dashboard   one rendered watchdog frame (for
                                     ``gemfi dashboard --url``)
    GET    /v1/jobs/{id}/summary    archived (or rebuilt) campaign
                                     summary digest
    GET    /v1/blobs/{digest}        any stored artifact by digest
    GET    /v1/store/stats           content-store object/byte counts
    GET    /v1/usage[?tenant=]       persisted per-tenant metering
    GET    /v1/history               bounded metrics time series
    GET    /v1/archive[?tenant=]     archived campaign summaries index
    GET    /v1/baselines             named baselines
    POST   /v1/baselines             tag an archived job as a baseline
    GET    /v1/compare?base=&head=   significance-tested campaign diff
                                     (operands: job ids or baselines)
    GET    /metrics                  OpenMetrics exposition
    GET    /ui/...                   the embedded web console (opt-in)

Status and event streams are the existing telemetry health plane —
``read_status`` and the watchdog rules — evaluated over the job's
private share directory; the service adds no second source of truth.
The same discipline holds for ``/metrics``: every counter is hung off
one shared :class:`~repro.service.observability.ServiceObserver` by
the layer that owns the event (HTTP handler, queue, store,
dispatcher), and the handler only refreshes the point-in-time gauges
(queue depth, store size, usage totals) at scrape time.

:class:`Service` wires queue + store + dispatcher + HTTP server into
one deployable unit (``gemfi serve``).
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time

from ..telemetry.campaign import read_status
from ..telemetry.export import (
    OPENMETRICS_CONTENT_TYPE,
    render_openmetrics,
)
from ..telemetry.history import (
    DEFAULT_INTERVAL,
    DEFAULT_RETENTION,
    HistoryRecorder,
    HistoryStore,
)
from ..telemetry.watchdog import (
    WatchdogConfig,
    evaluate_alerts,
    render_dashboard,
)
from .dispatcher import Dispatcher
from .http import (
    HTTPError,
    Request,
    Response,
    Router,
    bound_port,
    start_http_server,
)
from .jobs import JobSpec, JobSpecError
from .observability import HELP_TEXTS, LOG_DIR, ServiceObserver
from .queue import USAGE_FIELDS, JobQueue, QuotaExceeded, UnknownJobError
from .store import ContentStore


def _jsonl(obj) -> bytes:
    return (json.dumps(obj, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def _query_int(request: Request, name: str,
               default: int | None = None) -> int | None:
    """An integer query parameter, or a clean 400 (never an unhandled
    500) on garbage input."""
    raw = request.query.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise HTTPError(
            400, f"{name} must be an integer, got {raw!r}") from None


def _query_float(request: Request, name: str,
                 default: float | None = None) -> float | None:
    """A finite float query parameter, or a clean 400."""
    raw = request.query.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = float(raw)
    except ValueError:
        raise HTTPError(
            400, f"{name} must be a number, got {raw!r}") from None
    if value != value or value in (float("inf"), float("-inf")):
        raise HTTPError(400, f"{name} must be finite, got {raw!r}")
    return value


class ServiceApp:
    """Endpoint handlers over a queue + store pair."""

    def __init__(self, queue: JobQueue, store: ContentStore,
                 watchdog_config: WatchdogConfig | None = None,
                 observer: ServiceObserver | None = None,
                 history: HistoryStore | None = None,
                 history_interval: float = DEFAULT_INTERVAL,
                 ui: bool = False,
                 clock=time.time) -> None:
        self.queue = queue
        self.store = store
        self.watchdog_config = watchdog_config or WatchdogConfig()
        self.observer = observer
        self.history = history
        self.history_interval = history_interval
        self._clock = clock
        # share-signature cache for the coverage.* gauges: job id ->
        # ((result count, newest mtime), gauges).
        self._coverage_cache: dict[str, tuple[tuple, dict]] = {}
        # compare.* gauges mirror the most recent /v1/compare (or
        # console compare) computed on this service: (gauges, labels).
        self._compare_gauges: tuple[dict, dict] | None = None
        self.router = Router()
        add = self.router.add
        add("GET", "/v1/healthz", self.healthz)
        add("POST", "/v1/jobs", self.submit)
        add("GET", "/v1/jobs", self.list_jobs)
        add("GET", "/v1/jobs/{id}", self.job_detail)
        add("DELETE", "/v1/jobs/{id}", self.cancel)
        add("GET", "/v1/jobs/{id}/status", self.job_status)
        add("GET", "/v1/jobs/{id}/events", self.job_events)
        add("GET", "/v1/jobs/{id}/report", self.job_report)
        add("GET", "/v1/jobs/{id}/results", self.job_results)
        add("GET", "/v1/jobs/{id}/dashboard", self.job_dashboard)
        add("GET", "/v1/jobs/{id}/coverage", self.job_coverage)
        add("GET", "/v1/jobs/{id}/summary", self.job_summary)
        add("GET", "/v1/blobs/{digest}", self.blob)
        add("GET", "/v1/store/stats", self.store_stats)
        add("GET", "/v1/usage", self.usage)
        add("GET", "/v1/history", self.history_series)
        add("GET", "/v1/archive", self.archive_index)
        add("GET", "/v1/baselines", self.baselines_index)
        add("POST", "/v1/baselines", self.tag_baseline)
        add("GET", "/v1/compare", self.compare)
        add("GET", "/metrics", self.metrics)
        self.console = None
        if ui:
            from .console import Console
            self.console = Console(self)
            self.console.register(self.router)

    # -- helpers --------------------------------------------------------------

    def _job(self, request: Request):
        try:
            return self.queue.get(request.params["id"])
        except UnknownJobError:
            raise HTTPError(404,
                            f"no such job: {request.params['id']}") \
                from None

    @staticmethod
    def _share(job) -> str | None:
        if job.share_dir and os.path.isdir(job.share_dir):
            return job.share_dir
        return None

    # -- handlers -------------------------------------------------------------

    async def healthz(self, request: Request) -> Response:
        return Response.json({
            "ok": True,
            "queue_depth": self.queue.depth(),
            "tenants": self.queue.tenant_counts(),
            "store": self.store.stats(),
        })

    async def submit(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(400, "job submission must be a JSON "
                                 "object")
        tenant = request.headers.get("x-tenant") \
            or payload.pop("tenant", None) or "default"
        priority = payload.pop("priority", 0)
        reuse = bool(payload.pop("reuse", True))
        if not isinstance(priority, int):
            raise HTTPError(400, "priority must be an integer")
        try:
            spec = JobSpec.from_dict(payload)
        except JobSpecError as exc:
            raise HTTPError(400, str(exc)) from None
        try:
            job = self.queue.submit(spec, tenant=tenant,
                                    priority=priority, reuse=reuse,
                                    request_id=request.id or None)
        except QuotaExceeded as exc:
            raise HTTPError(429, str(exc)) from None
        # A dedup hit is born done (200); fresh submissions are 201.
        status = 200 if job.state == "done" else 201
        return Response.json({"job": job.as_dict()}, status=status)

    async def list_jobs(self, request: Request) -> Response:
        tenant = request.query.get("tenant")
        jobs = self.queue.list_jobs(tenant=tenant)
        return Response.json({
            "jobs": [job.as_dict() for job in jobs],
            "tenants": self.queue.tenant_counts(),
            "queue_depth": self.queue.depth(),
        })

    async def job_detail(self, request: Request) -> Response:
        return Response.json({"job": self._job(request).as_dict()})

    async def cancel(self, request: Request) -> Response:
        job = self._job(request)
        if not self.queue.cancel(job.id):
            raise HTTPError(
                409, f"job {job.id} is {job.state}; only queued jobs "
                     f"can be cancelled")
        return Response.json(
            {"job": self.queue.get(job.id).as_dict()})

    async def job_status(self, request: Request) -> Response:
        job = self._job(request)
        payload = {"job": job.as_dict()}
        share = self._share(job)
        if share is not None:
            payload["campaign"] = read_status(
                share, clock=self._clock).as_dict()
        return Response.json(payload)

    async def job_events(self, request: Request) -> Response:
        job = self._job(request)
        poll = max(0.05, _query_float(request, "poll", 0.5))
        limit = _query_int(request, "max", 0)
        queue = self.queue
        config = self.watchdog_config
        clock = self._clock

        async def stream():
            seen_alerts: set[tuple] = set()
            frames = 0
            while True:
                current = queue.get(job.id)
                frame = {"type": "status", "job": current.id,
                         "state": current.state, "time": clock()}
                share = self._share(current)
                if share is not None:
                    frame["campaign"] = read_status(
                        share, clock=clock).as_dict()
                yield _jsonl(frame)
                if share is not None:
                    _, alerts = evaluate_alerts(share, config,
                                                clock=clock)
                    for alert in alerts:
                        if alert.key in seen_alerts:
                            continue
                        seen_alerts.add(alert.key)
                        entry = alert.as_dict()
                        entry["type"] = "alert"
                        entry["job"] = current.id
                        yield _jsonl(entry)
                frames += 1
                if current.terminal:
                    yield _jsonl({"type": "end", "job": current.id,
                                  "state": current.state,
                                  "result_digest":
                                      current.result_digest})
                    return
                if limit and frames >= limit:
                    return
                await asyncio.sleep(poll)

        return Response.streaming(stream())

    async def job_report(self, request: Request) -> Response:
        job = self._job(request)
        fmt = request.query.get("format", "md")
        if fmt not in ("md", "html"):
            raise HTTPError(400, "format must be md or html")
        share = self._share(job)
        if share is not None:
            from ..telemetry.report import load_share, render_report
            text = render_report(load_share(share), fmt=fmt)
            content_type = "text/html; charset=utf-8" \
                if fmt == "html" else "text/markdown; charset=utf-8"
            return Response.text(text, content_type=content_type)
        if fmt == "md" and job.report_digest \
                and self.store.has(job.report_digest):
            return Response.text(
                self.store.get(job.report_digest).decode("utf-8"),
                content_type="text/markdown; charset=utf-8")
        raise HTTPError(404, f"no report for job {job.id} yet")

    async def job_results(self, request: Request) -> Response:
        job = self._job(request)
        if not job.result_digest \
                or not self.store.has(job.result_digest):
            raise HTTPError(404,
                            f"no stored results for job {job.id} yet")
        return Response.binary(self.store.get(job.result_digest),
                               content_type="application/json")

    async def blob(self, request: Request) -> Response:
        digest = request.params["digest"]
        try:
            data = self.store.get(digest)
        except ValueError:
            raise HTTPError(400, f"not a digest: {digest}") from None
        except KeyError:
            raise HTTPError(404, f"no object {digest}") from None
        content_type = "application/json" \
            if data[:1] in (b"{", b"[") else "application/octet-stream"
        return Response.binary(data, content_type=content_type)

    async def job_dashboard(self, request: Request) -> Response:
        """One server-rendered watchdog frame for the job's share —
        ``gemfi dashboard --url`` polls this instead of needing
        filesystem access to the share."""
        job = self._job(request)
        share = self._share(job)
        payload = {"job": job.as_dict(), "text": None, "alerts": []}
        if share is not None:
            text, alerts = render_dashboard(share, self.watchdog_config,
                                            clock=self._clock)
            payload["text"] = text
            payload["alerts"] = [alert.as_dict() for alert in alerts]
        return Response.json(payload)

    async def job_coverage(self, request: Request) -> Response:
        """Fault-space coverage analytics for one job's share: space
        visited, per-dimension outcome heatmaps with Wilson-interval
        cells, margin convergence (repro.analysis.coverage)."""
        job = self._job(request)
        share = self._share(job)
        if share is None:
            raise HTTPError(404, f"no campaign share for job {job.id} "
                                 f"yet")
        from ..analysis.coverage import coverage_from_share
        payload = coverage_from_share(share).as_dict()
        return Response.json({"job": job.id, "coverage": payload})

    # -- campaign archive + differential analytics ----------------------------

    def _summary_payload(self, ref: str) -> dict:
        """Resolve *ref* (a job id or baseline name) to a campaign
        summary payload: the archived row when present, else rebuilt
        from the job's share or its stored canonical results."""
        job_id = self.queue.resolve_baseline(ref) or ref
        payload = self.queue.archived_summary(job_id)
        if payload is not None:
            return payload
        try:
            job = self.queue.get(job_id)
        except UnknownJobError:
            raise HTTPError(
                404, f"no archived campaign, baseline or job: {ref}"
            ) from None
        from ..analysis.diff import CampaignSummary
        share = self._share(job)
        if share is not None:
            return CampaignSummary.from_share(share,
                                              name=job.id).payload
        if job.result_digest and self.store.has(job.result_digest):
            results = json.loads(
                self.store.get(job.result_digest).decode("utf-8"))
            return CampaignSummary.from_results(
                results, name=job.id,
                spec=job.spec.as_dict()).payload
        raise HTTPError(404,
                        f"no summary available for job {job_id} yet")

    async def job_summary(self, request: Request) -> Response:
        # The ref may be a baseline name, so resolve it the same way
        # /v1/compare does instead of requiring a literal job id.
        ref = request.params["id"]
        summary = self._summary_payload(ref)
        job_id = self.queue.resolve_baseline(ref) or ref
        return Response.json({"job": job_id, "summary": summary})

    async def archive_index(self, request: Request) -> Response:
        rows = self.queue.list_archive(
            tenant=request.query.get("tenant"))
        limit = _query_int(request, "limit", 0)
        if limit:
            rows = rows[-limit:]
        return Response.json({"archive": rows,
                              "baselines": self.queue.baselines()})

    async def baselines_index(self, request: Request) -> Response:
        return Response.json({"baselines": self.queue.baselines()})

    async def tag_baseline(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(400, "baseline tagging must be a JSON "
                                 "object")
        name = payload.get("name")
        job_id = payload.get("job")
        if not isinstance(name, str) or not name:
            raise HTTPError(400, "baseline needs a non-empty name")
        if not isinstance(job_id, str) or not job_id:
            raise HTTPError(400, "baseline needs a job id")
        try:
            self.queue.tag_baseline(name, job_id)
        except UnknownJobError:
            raise HTTPError(404, f"no such job: {job_id}") from None
        except ValueError as exc:
            raise HTTPError(409, str(exc)) from None
        return Response.json(
            {"baseline": {"name": name, "job": job_id}}, status=201)

    def compare_payload(self, base: str, head: str,
                        confidence: float, margin: float) -> dict:
        """One code path for `/v1/compare` and the console's compare
        page, so both always show exactly the same numbers.  Also
        refreshes the ``compare.*`` gauges with this diff."""
        from ..analysis.diff import (CampaignDiff, CampaignSummary,
                                     compare_gauges)
        try:
            diff = CampaignDiff(
                CampaignSummary.from_payload(
                    self._summary_payload(base)),
                CampaignSummary.from_payload(
                    self._summary_payload(head)),
                confidence=confidence, margin=margin)
        except ValueError as exc:
            raise HTTPError(400, str(exc)) from None
        self._compare_gauges = (compare_gauges(diff.payload),
                                {"base": base, "head": head})
        return diff.payload

    async def compare(self, request: Request) -> Response:
        base = request.query.get("base")
        head = request.query.get("head")
        if not base or not head:
            raise HTTPError(400, "compare needs base= and head= "
                                 "(job ids or baseline names)")
        confidence = _query_float(request, "confidence", 0.95)
        margin = _query_float(request, "margin", 0.02)
        return Response.json({"compare": self.compare_payload(
            base, head, confidence, margin)})

    async def store_stats(self, request: Request) -> Response:
        return Response.json(self.store.stats())

    async def usage(self, request: Request) -> Response:
        tenant = request.query.get("tenant")
        return Response.json({"usage": self.queue.usage(tenant=tenant)})

    async def history_series(self, request: Request) -> Response:
        """Bounded time series sampled from the same registry that
        ``/metrics`` renders: ``?prefix=`` filters by series name,
        ``?since=`` by sample time, ``?limit=`` caps the newest
        samples per series.  ``meta.rounds`` is monotone across the
        recorder's life even though retention bounds the samples."""
        if self.history is None:
            raise HTTPError(404, "metrics history is not enabled on "
                                 "this service")
        since = _query_float(request, "since")
        limit = _query_int(request, "limit", 0) or None
        series = self.history.series(
            prefix=request.query.get("prefix") or None,
            since=since, limit=limit)
        meta = self.history.summary()
        meta["interval"] = self.history_interval
        return Response.json({"history": series, "meta": meta})

    # -- metrics --------------------------------------------------------------

    #: coverage.* gauges are computed for at most this many jobs
    #: (the newest ones with shares) per refresh, so scrape cost stays
    #: bounded no matter how long the job history grows.
    COVERAGE_GAUGE_JOBS = 3

    def _coverage_gauge_sets(self) -> list[tuple[str, dict]]:
        """(job id, coverage gauges) for the newest jobs with shares.

        Re-reading every result on every history beat would dwarf the
        scrape itself, so each share's gauges are cached against a
        cheap signature (result-file count + newest mtime) and only
        recomputed when new results have landed."""
        from ..analysis.coverage import (
            coverage_from_share,
            coverage_gauges,
        )
        jobs = [job for job in self.queue.list_jobs()
                if self._share(job) is not None]
        out = []
        for job in jobs[-self.COVERAGE_GAUGE_JOBS:]:
            share = self._share(job)
            results_dir = os.path.join(share, "results")
            count, newest = 0, 0.0
            try:
                with os.scandir(results_dir) as entries:
                    for entry in entries:
                        if not entry.name.endswith(".json"):
                            continue
                        count += 1
                        try:
                            newest = max(newest,
                                         entry.stat().st_mtime)
                        except OSError:
                            pass
            except OSError:
                pass
            signature = (count, newest)
            cached = self._coverage_cache.get(job.id)
            if cached is not None and cached[0] == signature:
                out.append((job.id, cached[1]))
                continue
            gauges = coverage_gauges(
                coverage_from_share(share).as_dict())
            self._coverage_cache[job.id] = (signature, gauges)
            out.append((job.id, gauges))
        # Forget shares that fell out of the window.
        keep = {job_id for job_id, _ in out}
        for job_id in list(self._coverage_cache):
            if job_id not in keep:
                del self._coverage_cache[job_id]
        return out

    def _refresh_gauges(self) -> None:
        """Point-in-time families recomputed at scrape time (counters
        and histograms accumulate where the events happen)."""
        observer = self.observer
        registry = observer.registry
        coverage_sets = self._coverage_gauge_sets()
        compare_state = self._compare_gauges
        with observer._lock:
            for prefix in ("queue.depth", "queue.tenant_active",
                           "queue.tenant_quota", "store.objects",
                           "store.bytes", "usage.jobs",
                           "usage.experiments", "usage.instructions",
                           "usage.wall_seconds", "usage.kips",
                           "coverage", "compare"):
                registry.prune(prefix)
        for job_id, gauges in coverage_sets:
            for name, value in sorted(gauges.items()):
                observer.set_gauge(name, value, job=job_id)
        if compare_state is not None:
            # The most recent diff computed on this service; labelled
            # with its operands, so /v1/history keeps distinct series
            # per comparison pair.
            gauges, labels = compare_state
            for name, value in sorted(gauges.items()):
                observer.set_gauge(name, value, **labels)
        observer.set_gauge("queue.depth", self.queue.depth())
        for tenant, states in sorted(self.queue.tenant_counts().items()):
            active = states.get("queued", 0) + states.get("leased", 0)
            observer.set_gauge("queue.tenant_active", active,
                               tenant=tenant)
            observer.set_gauge("queue.tenant_quota",
                               self.queue.quota(tenant), tenant=tenant)
        stats = self.store.stats()
        observer.set_gauge("store.objects", stats["objects"])
        observer.set_gauge("store.bytes", stats["bytes"])
        for tenant, totals in sorted(self.queue.usage().items()):
            for field in USAGE_FIELDS:
                observer.set_gauge(f"usage.{field}", totals[field],
                                   tenant=tenant)
            # Aggregate sim rate per tenant (KIPS, the paper's unit),
            # derived from the persisted metering so the console's
            # trend chart works even across service restarts.
            wall = totals.get("wall_seconds") or 0.0
            if wall > 0:
                observer.set_gauge(
                    "usage.kips",
                    totals.get("instructions", 0) / wall / 1000.0,
                    tenant=tenant)

    async def metrics(self, request: Request) -> Response:
        if self.observer is None:
            raise HTTPError(404, "metrics are not enabled on this "
                                 "service")
        self._refresh_gauges()
        with self.observer._lock:
            text = render_openmetrics(self.observer.registry,
                                      help_texts=HELP_TEXTS)
        return Response.text(text,
                             content_type=OPENMETRICS_CONTENT_TYPE)


class Service:
    """queue + store + dispatcher + HTTP server, one data directory::

        data_dir/
          queue.db      the persistent job queue (SQLite WAL)
          store/        the content-addressed artifact store
          shares/<job>  one campaign share per job (telemetry plane)
          logs/         JSONL access + error logs (observability)
          history.db    bounded metrics time series (ring retention)

    *ui* registers the embedded web console under ``GET /ui``;
    *history_interval* (seconds; <= 0 disables the recorder beat) and
    *history_retention* (samples kept per series) size the metrics
    history.  Neither ever writes inside a job share, so same-seed
    campaign results stay byte-identical with the console enabled.
    """

    def __init__(self, data_dir: str, host: str = "127.0.0.1",
                 port: int = 0, default_quota: int = 0,
                 lease_seconds: float = 600.0,
                 poll_seconds: float = 0.5,
                 watchdog_config: WatchdogConfig | None = None,
                 ui: bool = False,
                 history_interval: float = DEFAULT_INTERVAL,
                 history_retention: int = DEFAULT_RETENTION,
                 clock=time.time) -> None:
        os.makedirs(data_dir, exist_ok=True)
        self.data_dir = data_dir
        self.host = host
        self.requested_port = port
        self.port: int | None = None
        self.observer = ServiceObserver(
            log_dir=os.path.join(data_dir, LOG_DIR), clock=clock)
        self.queue = JobQueue(os.path.join(data_dir, "queue.db"),
                              default_quota=default_quota,
                              observer=self.observer, clock=clock)
        self.store = ContentStore(os.path.join(data_dir, "store"),
                                  observer=self.observer)
        self.dispatcher = Dispatcher(
            self.queue, self.store, data_dir,
            lease_seconds=lease_seconds, poll_seconds=poll_seconds,
            observer=self.observer, clock=clock)
        self.history = HistoryStore(
            os.path.join(data_dir, "history.db"),
            retention=history_retention)
        self.app = ServiceApp(self.queue, self.store,
                              watchdog_config=watchdog_config,
                              observer=self.observer,
                              history=self.history,
                              history_interval=history_interval,
                              ui=ui, clock=clock)
        self.recorder = HistoryRecorder(
            self.observer.snapshot, self.history,
            interval=history_interval,
            refresh=self.app._refresh_gauges, clock=clock)
        self._stop = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._http_thread: threading.Thread | None = None
        self._dispatch_thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------------

    def start_http(self) -> "Service":
        """Bind and serve the API on a daemon thread with its own
        event loop; returns once the port is bound."""
        started = threading.Event()
        failure: list[BaseException] = []

        def _serve() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                server = loop.run_until_complete(start_http_server(
                    self.app.router, self.host, self.requested_port,
                    observer=self.observer, closing=self._stop))
            except BaseException as exc:
                failure.append(exc)
                started.set()
                loop.close()
                return
            self.port = bound_port(server)
            started.set()
            try:
                loop.run_forever()
            finally:
                server.close()
                loop.run_until_complete(server.wait_closed())
                # Keep-alive connections may still be parked in
                # read_request; cancel their handler tasks so the
                # transports close while the loop can still run.
                tasks = asyncio.all_tasks(loop)
                for task in tasks:
                    task.cancel()
                if tasks:
                    loop.run_until_complete(asyncio.gather(
                        *tasks, return_exceptions=True))
                loop.close()

        self._http_thread = threading.Thread(
            target=_serve, name="service-http", daemon=True)
        self._http_thread.start()
        started.wait(timeout=10.0)
        if failure:
            raise RuntimeError(
                f"could not bind {self.host}:{self.requested_port}: "
                f"{failure[0]}") from failure[0]
        if self.port is None:
            raise RuntimeError("HTTP server did not start")
        self.recorder.start()
        return self

    def start_dispatcher(self) -> "Service":
        """Run the dispatch loop on a background thread (tests and
        embedded use; `gemfi serve` dispatches on the main thread so
        worker processes fork from there)."""
        self._dispatch_thread = threading.Thread(
            target=self.dispatcher.run_forever, args=(self._stop,),
            name="service-dispatcher", daemon=True)
        self._dispatch_thread.start()
        return self

    def start(self) -> "Service":
        return self.start_http().start_dispatcher()

    def dispatch_forever(self) -> None:
        """Blocking dispatch loop for the CLI main thread."""
        self.dispatcher.run_forever(self._stop)

    def stop(self) -> None:
        self._stop.set()
        self.recorder.stop()
        if self._dispatch_thread is not None:
            self._dispatch_thread.join(timeout=30.0)
            self._dispatch_thread = None
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._http_thread is not None:
            self._http_thread.join(timeout=10.0)
            self._http_thread = None
        self.history.close()
