"""Campaign-as-a-service: HTTP API, job queue, content-addressed store.

ProFIPy frames software fault injection as-a-Service (submit / monitor
/ report endpoints); FINJ ships a client/server engine with task
queues for HPC fault-injection workloads.  This package is that layer
for the GemFI reproduction: campaigns stop being ad-hoc shared
directories and become **jobs** submitted to a long-lived service —

* :mod:`repro.service.http` — a minimal asyncio HTTP/1.1 layer
  (stdlib only: request parsing, routing, chunked JSONL streaming);
* :mod:`repro.service.queue` — a crash-safe persistent job queue
  (SQLite WAL) with per-tenant quotas, priorities and lease-based
  dispatch;
* :mod:`repro.service.store` — a content-addressed store (SHA-256 of
  canonical bytes) deduplicating results, reports and checkpoints;
* :mod:`repro.service.dispatcher` — leases jobs and runs them through
  the pluggable :class:`~repro.campaign.backend.CampaignBackend`
  (the paper's shared-dir NoW protocol by default);
* :mod:`repro.service.api` — the endpoint handlers plus the
  :class:`~repro.service.api.Service` composition root behind
  ``gemfi serve``;
* :mod:`repro.service.client` — the stdlib client behind
  ``gemfi submit`` / ``gemfi jobs`` / ``gemfi fetch``;
* :mod:`repro.service.observability` — the shared
  :class:`~repro.service.observability.ServiceObserver`: one metrics
  registry behind ``GET /metrics`` (OpenMetrics), request ids, and
  JSONL access/error logs;
* :mod:`repro.service.console` — the embedded web console
  (``gemfi serve --ui``): stdlib-rendered HTML pages at ``GET /ui``
  over the API — live job explorer, metrics-history charts
  (:mod:`repro.telemetry.history` behind ``GET /v1/history``),
  SVG timelines, the merged alerts feed and inlined reports.

The existing heartbeat/span/watchdog machinery is the service's
health plane: job status streams reuse ``read_status`` and the
watchdog rules over each job's private share directory.
"""

from .api import Service, ServiceApp
from .client import ServiceClient, ServiceError
from .console import Console
from .dispatcher import Dispatcher
from .jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobSpec,
    JobSpecError,
    canonical_results,
)
from .observability import ServiceObserver, new_request_id
from .queue import JobQueue, LeaseError, QuotaExceeded, UnknownJobError
from .store import ContentStore, canonical_json_bytes, digest_bytes

__all__ = [
    "Console", "ContentStore", "Dispatcher", "JOB_STATES", "Job",
    "JobQueue",
    "JobSpec", "JobSpecError", "LeaseError", "QuotaExceeded",
    "Service", "ServiceApp", "ServiceClient", "ServiceError",
    "ServiceObserver", "TERMINAL_STATES", "UnknownJobError",
    "canonical_json_bytes", "canonical_results", "digest_bytes",
    "new_request_id",
]
