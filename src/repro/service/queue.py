"""Crash-safe persistent job queue: SQLite WAL, quotas, priorities,
leases.

FINJ-style dispatch discipline over a single SQLite database:

* **submit** — validated specs enter ``queued`` unless the tenant is
  over its active-job quota; re-submitting a spec whose result is
  already stored short-circuits straight to ``done`` (content-store
  dedup, surfaced at the queue layer);
* **lease** — dispatchers atomically take the highest-priority oldest
  job (``BEGIN IMMEDIATE``, single winner even with several dispatcher
  processes on one queue) and must finish or extend the lease before
  it expires;
* **recovery** — a dispatcher that dies mid-job simply stops
  extending; :meth:`JobQueue.requeue_expired` returns its jobs to
  ``queued`` with the attempt recorded, so a crash loses no work.

The database lives in WAL mode, so the HTTP API (readers) and the
dispatcher (writer) share it without blocking each other, and
``gemfi status`` can read queue depth from any process that can see
the file.
"""

from __future__ import annotations

import json
import sqlite3
import time
import uuid
from contextlib import closing

from .jobs import Job, JobSpec

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id              TEXT PRIMARY KEY,
    tenant          TEXT NOT NULL,
    priority        INTEGER NOT NULL DEFAULT 0,
    state           TEXT NOT NULL,
    spec            TEXT NOT NULL,
    spec_digest     TEXT NOT NULL,
    submitted       REAL NOT NULL,
    started         REAL,
    finished        REAL,
    lease_owner     TEXT,
    lease_expires   REAL,
    attempts        INTEGER NOT NULL DEFAULT 0,
    result_digest   TEXT,
    report_digest   TEXT,
    checkpoint_digest TEXT,
    error           TEXT,
    share_dir       TEXT,
    reused_from     TEXT
);
CREATE INDEX IF NOT EXISTS jobs_dispatch
    ON jobs (state, priority DESC, submitted ASC);
CREATE INDEX IF NOT EXISTS jobs_spec ON jobs (spec_digest);
CREATE TABLE IF NOT EXISTS tenants (
    tenant      TEXT PRIMARY KEY,
    max_active  INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS usage (
    tenant       TEXT PRIMARY KEY,
    jobs         INTEGER NOT NULL DEFAULT 0,
    experiments  INTEGER NOT NULL DEFAULT 0,
    instructions INTEGER NOT NULL DEFAULT 0,
    wall_seconds REAL NOT NULL DEFAULT 0.0
);
CREATE TABLE IF NOT EXISTS archive (
    job_id          TEXT PRIMARY KEY,
    tenant          TEXT NOT NULL,
    spec_digest     TEXT NOT NULL,
    summary_digest  TEXT NOT NULL,
    summary         TEXT NOT NULL,
    archived        REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS archive_tenant ON archive (tenant);
CREATE TABLE IF NOT EXISTS baselines (
    name    TEXT PRIMARY KEY,
    job_id  TEXT NOT NULL,
    tagged  REAL NOT NULL
);
"""

USAGE_FIELDS = ("jobs", "experiments", "instructions", "wall_seconds")


class QuotaExceeded(Exception):
    """The tenant already has its quota of active (queued or leased)
    jobs."""


class UnknownJobError(KeyError):
    """No job with that id."""


class LeaseError(RuntimeError):
    """A lease-guarded transition found the job in another state (the
    lease expired and was re-dispatched, or the job was cancelled)."""


class JobQueue:
    """The persistent queue.  Every method opens its own short-lived
    connection, so one instance is safe to share across the API
    threads and the dispatcher (and across processes)."""

    def __init__(self, path: str, default_quota: int = 0,
                 observer=None, clock=time.time) -> None:
        self.path = path
        #: max active (queued+leased) jobs per tenant; 0 = unlimited.
        self.default_quota = default_quota
        #: optional ServiceObserver; every hook is a pointer test.
        self.observer = observer
        self._clock = clock
        with closing(self._connect()) as conn:
            conn.executescript(_SCHEMA)
            self._migrate(conn)
            conn.commit()

    @staticmethod
    def _migrate(conn: sqlite3.Connection) -> None:
        """Columns added after PR 6: ``CREATE TABLE IF NOT EXISTS``
        leaves pre-existing databases alone, so new columns need an
        explicit (idempotent) ALTER on open."""
        columns = {row[1] for row in
                   conn.execute("PRAGMA table_info(jobs)")}
        if "request_id" not in columns:
            conn.execute("ALTER TABLE jobs ADD COLUMN request_id TEXT")

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    # -- submission -----------------------------------------------------------

    def submit(self, spec: JobSpec, tenant: str = "default",
               priority: int = 0, reuse: bool = True,
               request_id: str | None = None) -> Job:
        """Enqueue *spec* for *tenant*.

        With *reuse* (the default), a spec whose digest already has a
        stored result — an identical campaign completed earlier —
        creates a job that is born ``done``, pointing at the existing
        artifacts (the content store holds exactly one copy).  Raises
        :class:`QuotaExceeded` when the tenant's active jobs are at
        quota (reused jobs are never active, so they always succeed).
        *request_id* records the HTTP request that created the job
        (request-to-campaign tracing).
        """
        spec.validate()
        now = self._clock()
        job_id = f"job-{uuid.uuid4().hex[:12]}"
        spec_digest = spec.digest()
        spec_json = json.dumps(spec.as_dict(), sort_keys=True)
        with closing(self._connect()) as conn:
            donor = None
            if reuse:
                donor = conn.execute(
                    "SELECT * FROM jobs WHERE spec_digest = ? AND "
                    "state = 'done' AND result_digest IS NOT NULL "
                    "ORDER BY finished DESC LIMIT 1",
                    (spec_digest,)).fetchone()
            if donor is not None:
                conn.execute(
                    "INSERT INTO jobs (id, tenant, priority, state, "
                    "spec, spec_digest, submitted, started, finished, "
                    "attempts, result_digest, report_digest, "
                    "checkpoint_digest, share_dir, reused_from, "
                    "request_id) "
                    "VALUES (?, ?, ?, 'done', ?, ?, ?, ?, ?, 0, "
                    "?, ?, ?, ?, ?, ?)",
                    (job_id, tenant, priority, spec_json, spec_digest,
                     now, now, now, donor["result_digest"],
                     donor["report_digest"],
                     donor["checkpoint_digest"], donor["share_dir"],
                     donor["id"], request_id))
                conn.commit()
                if self.observer is not None:
                    self.observer.inc("queue.dedup_hits")
                    self.observer.inc("queue.jobs_submitted",
                                      tenant=tenant)
                return self.get(job_id)
            quota = self._quota(conn, tenant)
            if quota > 0:
                active = conn.execute(
                    "SELECT COUNT(*) FROM jobs WHERE tenant = ? AND "
                    "state IN ('queued', 'leased')",
                    (tenant,)).fetchone()[0]
                if active >= quota:
                    if self.observer is not None:
                        self.observer.inc("queue.quota_rejections",
                                          tenant=tenant)
                    raise QuotaExceeded(
                        f"tenant '{tenant}' already has {active} "
                        f"active job(s) (quota {quota})")
            conn.execute(
                "INSERT INTO jobs (id, tenant, priority, state, spec, "
                "spec_digest, submitted, request_id) "
                "VALUES (?, ?, ?, 'queued', ?, ?, ?, ?)",
                (job_id, tenant, priority, spec_json, spec_digest,
                 now, request_id))
            conn.commit()
        if self.observer is not None:
            self.observer.inc("queue.jobs_submitted", tenant=tenant)
        return self.get(job_id)

    def _quota(self, conn: sqlite3.Connection, tenant: str) -> int:
        row = conn.execute(
            "SELECT max_active FROM tenants WHERE tenant = ?",
            (tenant,)).fetchone()
        return row[0] if row is not None else self.default_quota

    def set_quota(self, tenant: str, max_active: int) -> None:
        with closing(self._connect()) as conn:
            conn.execute(
                "INSERT INTO tenants (tenant, max_active) "
                "VALUES (?, ?) ON CONFLICT(tenant) "
                "DO UPDATE SET max_active = excluded.max_active",
                (tenant, max_active))
            conn.commit()

    def quota(self, tenant: str) -> int:
        with closing(self._connect()) as conn:
            return self._quota(conn, tenant)

    # -- dispatch -------------------------------------------------------------

    def lease(self, owner: str,
              lease_seconds: float = 600.0) -> Job | None:
        """Atomically take the next job: highest priority first, then
        oldest submission.  Returns None when the queue is drained."""
        now = self._clock()
        with closing(self._connect()) as conn:
            conn.isolation_level = None
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute(
                    "SELECT id FROM jobs WHERE state = 'queued' "
                    "ORDER BY priority DESC, submitted ASC, id ASC "
                    "LIMIT 1").fetchone()
                if row is None:
                    conn.execute("COMMIT")
                    return None
                conn.execute(
                    "UPDATE jobs SET state = 'leased', "
                    "lease_owner = ?, lease_expires = ?, "
                    "started = COALESCE(started, ?), "
                    "attempts = attempts + 1 WHERE id = ?",
                    (owner, now + lease_seconds, now, row["id"]))
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        if self.observer is not None:
            self.observer.inc("queue.leases")
        return self.get(row["id"])

    def extend_lease(self, job_id: str, owner: str,
                     lease_seconds: float = 600.0) -> bool:
        """Refresh a held lease; False when the lease is no longer
        ours (expired and re-dispatched, or the job was cancelled)."""
        now = self._clock()
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                "UPDATE jobs SET lease_expires = ? WHERE id = ? AND "
                "state = 'leased' AND lease_owner = ?",
                (now + lease_seconds, job_id, owner))
            conn.commit()
            return cursor.rowcount > 0

    def requeue_expired(self) -> list[str]:
        """Return expired leases to the queue (crash recovery): a
        dispatcher that died mid-job stops extending its lease, and
        its jobs become claimable again instead of being lost."""
        now = self._clock()
        with closing(self._connect()) as conn:
            conn.isolation_level = None
            conn.execute("BEGIN IMMEDIATE")
            try:
                rows = conn.execute(
                    "SELECT id FROM jobs WHERE state = 'leased' AND "
                    "lease_expires IS NOT NULL AND lease_expires < ? "
                    "ORDER BY id", (now,)).fetchall()
                ids = [row["id"] for row in rows]
                if ids:
                    conn.executemany(
                        "UPDATE jobs SET state = 'queued', "
                        "lease_owner = NULL, lease_expires = NULL "
                        "WHERE id = ? AND state = 'leased'",
                        [(job_id,) for job_id in ids])
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        if ids and self.observer is not None:
            self.observer.inc("queue.requeued", amount=len(ids))
        return ids

    # -- completion -----------------------------------------------------------

    def complete(self, job_id: str, owner: str | None = None,
                 result_digest: str | None = None,
                 report_digest: str | None = None,
                 checkpoint_digest: str | None = None) -> Job:
        """Mark a leased job done, recording its artifact digests."""
        return self._finish(job_id, owner, "done",
                            result_digest=result_digest,
                            report_digest=report_digest,
                            checkpoint_digest=checkpoint_digest)

    def fail(self, job_id: str, error: str,
             owner: str | None = None, retry: bool = False) -> Job:
        """Mark a leased job failed (or, with *retry*, requeue it)."""
        if retry:
            with closing(self._connect()) as conn:
                cursor = conn.execute(
                    "UPDATE jobs SET state = 'queued', "
                    "lease_owner = NULL, lease_expires = NULL, "
                    "error = ? WHERE id = ? AND state = 'leased'"
                    + ("" if owner is None else " AND lease_owner = ?"),
                    (error, job_id) + (() if owner is None
                                       else (owner,)))
                conn.commit()
                if cursor.rowcount == 0:
                    raise LeaseError(
                        f"job {job_id} is not leased"
                        + (f" by {owner}" if owner else ""))
            return self.get(job_id)
        return self._finish(job_id, owner, "failed", error=error)

    def _finish(self, job_id: str, owner: str | None, state: str,
                result_digest: str | None = None,
                report_digest: str | None = None,
                checkpoint_digest: str | None = None,
                error: str | None = None) -> Job:
        now = self._clock()
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = ?, finished = ?, "
                "result_digest = COALESCE(?, result_digest), "
                "report_digest = COALESCE(?, report_digest), "
                "checkpoint_digest = COALESCE(?, checkpoint_digest), "
                "error = ?, lease_owner = NULL, lease_expires = NULL "
                "WHERE id = ? AND state = 'leased'"
                + ("" if owner is None else " AND lease_owner = ?"),
                (state, now, result_digest, report_digest,
                 checkpoint_digest, error, job_id)
                + (() if owner is None else (owner,)))
            conn.commit()
            if cursor.rowcount == 0:
                self.get(job_id)  # raises UnknownJobError if absent
                raise LeaseError(
                    f"job {job_id} is not leased"
                    + (f" by {owner}" if owner else ""))
        if self.observer is not None:
            self.observer.inc("queue.jobs_finished", state=state)
        return self.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; running or finished jobs are left
        alone (False)."""
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = 'cancelled', finished = ? "
                "WHERE id = ? AND state = 'queued'",
                (self._clock(), job_id))
            conn.commit()
            if cursor.rowcount == 0:
                self.get(job_id)  # raises UnknownJobError if absent
                return False
        if self.observer is not None:
            self.observer.inc("queue.jobs_finished",
                              state="cancelled")
        return True

    # -- tenant usage metering ------------------------------------------------

    def record_usage(self, tenant: str, jobs: int = 0,
                     experiments: int = 0, instructions: int = 0,
                     wall_seconds: float = 0.0) -> None:
        """Accumulate metered work for *tenant*.  Lives in the queue
        database, so usage survives service restarts alongside the
        jobs it accounts for."""
        with closing(self._connect()) as conn:
            conn.execute(
                "INSERT INTO usage (tenant, jobs, experiments, "
                "instructions, wall_seconds) VALUES (?, ?, ?, ?, ?) "
                "ON CONFLICT(tenant) DO UPDATE SET "
                "jobs = jobs + excluded.jobs, "
                "experiments = experiments + excluded.experiments, "
                "instructions = instructions + excluded.instructions, "
                "wall_seconds = wall_seconds + excluded.wall_seconds",
                (tenant, jobs, experiments, instructions,
                 wall_seconds))
            conn.commit()

    def usage(self, tenant: str | None = None
              ) -> dict[str, dict[str, float]]:
        """Accumulated usage per tenant (or just *tenant*)."""
        query = "SELECT * FROM usage"
        params: tuple = ()
        if tenant is not None:
            query += " WHERE tenant = ?"
            params = (tenant,)
        query += " ORDER BY tenant"
        with closing(self._connect()) as conn:
            rows = conn.execute(query, params).fetchall()
        return {row["tenant"]: {
            "jobs": row["jobs"],
            "experiments": row["experiments"],
            "instructions": row["instructions"],
            "wall_seconds": round(row["wall_seconds"], 6),
        } for row in rows}

    # -- campaign archive -----------------------------------------------------

    def archive_summary(self, job_id: str, summary: dict,
                        summary_digest: str) -> None:
        """Persist a job's campaign summary (``repro.analysis.diff``
        payload) next to the jobs it digests, keyed by job id —
        differential analytics then need neither the share directory
        nor the stored results.  Idempotent: re-archiving replaces."""
        job = self.get(job_id)  # raises UnknownJobError
        with closing(self._connect()) as conn:
            conn.execute(
                "INSERT INTO archive (job_id, tenant, spec_digest, "
                "summary_digest, summary, archived) "
                "VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(job_id) DO UPDATE SET "
                "summary_digest = excluded.summary_digest, "
                "summary = excluded.summary, "
                "archived = excluded.archived",
                (job_id, job.tenant, job.spec.digest(),
                 summary_digest,
                 json.dumps(summary, sort_keys=True),
                 self._clock()))
            conn.commit()
        if self.observer is not None:
            self.observer.inc("queue.archived", tenant=job.tenant)

    def archived_summary(self, job_id: str) -> dict | None:
        """The archived summary payload for *job_id*, or None."""
        with closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT summary FROM archive WHERE job_id = ?",
                (job_id,)).fetchone()
        return json.loads(row["summary"]) if row is not None else None

    def list_archive(self, tenant: str | None = None) -> list[dict]:
        """Archived campaigns, oldest first, without the summary
        bodies (fetch those per job via :meth:`archived_summary`)."""
        query = ("SELECT job_id, tenant, spec_digest, summary_digest "
                 "FROM archive")
        params: tuple = ()
        if tenant is not None:
            query += " WHERE tenant = ?"
            params = (tenant,)
        query += " ORDER BY archived ASC, job_id ASC"
        baselines = {job_id: name for name, job_id
                     in self.baselines().items()}
        with closing(self._connect()) as conn:
            rows = conn.execute(query, params).fetchall()
        return [{"job": row["job_id"], "tenant": row["tenant"],
                 "spec_digest": row["spec_digest"],
                 "summary_digest": row["summary_digest"],
                 "baseline": baselines.get(row["job_id"])}
                for row in rows]

    def tag_baseline(self, name: str, job_id: str) -> None:
        """Name an archived campaign as a comparison baseline.
        Raises :class:`UnknownJobError` for an unknown job and
        :class:`ValueError` for a job with no archived summary yet."""
        self.get(job_id)  # raises UnknownJobError
        if self.archived_summary(job_id) is None:
            raise ValueError(
                f"job {job_id} has no archived summary yet")
        with closing(self._connect()) as conn:
            conn.execute(
                "INSERT INTO baselines (name, job_id, tagged) "
                "VALUES (?, ?, ?) ON CONFLICT(name) DO UPDATE SET "
                "job_id = excluded.job_id, tagged = excluded.tagged",
                (name, job_id, self._clock()))
            conn.commit()
        if self.observer is not None:
            self.observer.inc("queue.baselines_tagged")

    def baselines(self) -> dict[str, str]:
        """``{baseline name: job id}`` for every tagged baseline."""
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT name, job_id FROM baselines ORDER BY name"
            ).fetchall()
        return {row["name"]: row["job_id"] for row in rows}

    def resolve_baseline(self, name: str) -> str | None:
        """The job id a baseline name points at, or None."""
        with closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT job_id FROM baselines WHERE name = ?",
                (name,)).fetchone()
        return row["job_id"] if row is not None else None

    def record_share(self, job_id: str, share_dir: str) -> None:
        with closing(self._connect()) as conn:
            conn.execute("UPDATE jobs SET share_dir = ? WHERE id = ?",
                         (share_dir, job_id))
            conn.commit()

    # -- reading --------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with closing(self._connect()) as conn:
            row = conn.execute("SELECT * FROM jobs WHERE id = ?",
                               (job_id,)).fetchone()
        if row is None:
            raise UnknownJobError(job_id)
        return Job.from_row(row)

    def list_jobs(self, tenant: str | None = None,
                  states: tuple[str, ...] | None = None) -> list[Job]:
        query = "SELECT * FROM jobs"
        clauses, params = [], []
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if states:
            clauses.append(
                f"state IN ({', '.join('?' * len(states))})")
            params.extend(states)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY submitted ASC, id ASC"
        with closing(self._connect()) as conn:
            rows = conn.execute(query, params).fetchall()
        return [Job.from_row(row) for row in rows]

    def tenant_counts(self) -> dict[str, dict[str, int]]:
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT tenant, state, COUNT(*) AS n FROM jobs "
                "GROUP BY tenant, state").fetchall()
        counts: dict[str, dict[str, int]] = {}
        for row in rows:
            counts.setdefault(row["tenant"], {})[row["state"]] = \
                row["n"]
        return counts

    def depth(self) -> int:
        """Jobs waiting for a dispatcher."""
        with closing(self._connect()) as conn:
            return conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE state = 'queued'"
            ).fetchone()[0]
