"""The embedded web console: ``GET /ui`` over the service API.

DAVOS ships a web front-end over its fault-injection toolflow and
ProFIPy frames injection as a service you *operate* from a browser;
this module is that surface for the GemFI reproduction — with the
repo's standing constraint: **zero dependencies**.  No npm, no build
step, no static asset directory; every page is one self-contained
HTML document rendered by the same asyncio HTTP layer that serves the
JSON API, with inline CSS and a few hundred bytes of vanilla
JavaScript where liveness needs it.

The console is strictly a *view* over endpoints that already exist —
it never grows a second data plane:

* ``/ui`` — campaign explorer: the job table (tenant / priority /
  queue state) over ``GET /v1/jobs``, refreshed by polling;
* ``/ui/jobs/{id}`` — live job page: the browser consumes the
  chunked-JSONL ``GET /v1/jobs/{id}/events`` stream with a
  ``ReadableStream`` reader — the exact bytes ``curl -N`` sees;
* ``/ui/metrics`` — trend charts (KIPS, queue depth, HTTP latency,
  outcome mix) as inline SVG sparklines over ``GET /v1/history``;
* ``/ui/jobs/{id}/timeline`` — the Perfetto trace-event JSON rendered
  server-side as an SVG lane view plus the request-rooted span tree;
* ``/ui/alerts`` — the merged watchdog journal across every job share;
* ``/ui/jobs/{id}/report`` — the outcome report, inlined;
* ``/ui/compare`` — differential analytics: two job pickers,
  side-by-side outcome bars and delta heatmaps over the same
  ``compare_payload`` code path as ``GET /v1/compare``, so the page
  and the API can never disagree.

Every page embeds its initial payload as a JSON island
(``<script type="application/json" id="gemfi-data">``), so pages are
scriptable (CI parses them) and render useful content before — or
without — JavaScript.  All handlers are read-only: the console never
writes into a job share, so same-seed campaign results stay
byte-identical with the UI enabled.
"""

from __future__ import annotations

import html
import json

from ..telemetry.timeline import (
    build_timeline,
    render_span_tree,
    render_timeline_svg,
)
from ..telemetry.watchdog import alerts_feed
from .http import HTTPError, Request, Response

#: families the metrics page charts by default (prefix matches against
#: the history series names; everything else is one dropdown away).
DEFAULT_CHART_PREFIXES = (
    "usage.kips", "queue.depth", "http.requests_in_flight",
    "http.request_duration_seconds", "queue.jobs_finished",
    "jobs.executed", "coverage.max_half_width",
    "coverage.covered_fraction", "compare.verdict",
    "compare.max_abs_delta",
)

_CSS = """
:root { color-scheme: light; }
body { font-family: -apple-system, "Segoe UI", sans-serif; margin: 0;
       background: #f5f6f8; color: #1c2733; }
header { background: #1c2733; color: #f5f6f8; padding: 10px 20px;
         display: flex; gap: 18px; align-items: baseline; }
header a { color: #9fc2e8; text-decoration: none; }
header a:hover { text-decoration: underline; }
header .brand { font-weight: 700; letter-spacing: 0.06em; }
main { padding: 16px 20px; max-width: 1100px; }
h1 { font-size: 1.15rem; } h2 { font-size: 0.95rem; margin-top: 1.4em; }
table { border-collapse: collapse; width: 100%; background: #fff;
        font-size: 0.85rem; box-shadow: 0 1px 2px rgba(0,0,0,0.08); }
th, td { text-align: left; padding: 6px 10px;
         border-bottom: 1px solid #e4e7eb; }
th { background: #eef1f4; font-weight: 600; }
tr:hover td { background: #f2f7fc; }
a { color: #20598f; }
code, pre { font-family: ui-monospace, monospace; }
pre { background: #fff; padding: 12px; overflow-x: auto;
      border: 1px solid #e4e7eb; font-size: 0.8rem; }
.badge { display: inline-block; padding: 1px 8px; border-radius: 9px;
         font-size: 0.75rem; color: #fff; background: #8a97a5; }
.badge.queued { background: #b58a2a; }
.badge.leased, .badge.running { background: #2a6fb5; }
.badge.done { background: #2e8b57; }
.badge.failed, .badge.critical { background: #c0392b; }
.badge.cancelled { background: #6b7682; }
.badge.warning { background: #d07f2a; }
.badge.info { background: #5b8bb5; }
.kv { display: grid; grid-template-columns: max-content 1fr;
      gap: 2px 14px; background: #fff; padding: 10px 14px;
      border: 1px solid #e4e7eb; font-size: 0.85rem; }
.kv dt { font-weight: 600; } .kv dd { margin: 0; }
.muted { color: #6b7682; font-size: 0.8rem; }
.chart { background: #fff; border: 1px solid #e4e7eb; padding: 8px;
         margin-bottom: 12px; }
.chart .name { font-size: 0.78rem; font-family: ui-monospace,
               monospace; }
#events { max-height: 340px; overflow-y: auto; }
"""


def _nav() -> str:
    return ('<header><span class="brand">gemfi console</span>'
            '<a href="/ui">jobs</a>'
            '<a href="/ui/metrics">metrics</a>'
            '<a href="/ui/coverage">coverage</a>'
            '<a href="/ui/compare">compare</a>'
            '<a href="/ui/alerts">alerts</a>'
            '<span class="muted"><a href="/metrics">/metrics</a> · '
            '<a href="/v1/healthz">healthz</a></span>'
            '</header>')


def _island(data) -> str:
    """The page's initial payload as an inert JSON island.  ``</`` is
    escaped so payload content can never close the script element."""
    text = json.dumps(data, sort_keys=True).replace("</", "<\\/")
    return ('<script type="application/json" id="gemfi-data">'
            f"{text}</script>")


def _page(title: str, body: str, data, script: str = "") -> Response:
    doc = ("<!doctype html><html lang=\"en\"><head>"
           "<meta charset=\"utf-8\">"
           "<meta name=\"viewport\" "
           "content=\"width=device-width, initial-scale=1\">"
           f"<title>{html.escape(title)} · gemfi</title>"
           f"<style>{_CSS}</style></head><body>"
           f"{_nav()}<main>{body}</main>"
           f"{_island(data)}"
           + (f"<script>{script}</script>" if script else "")
           + "</body></html>")
    return Response.html(doc)


def _esc(value) -> str:
    return html.escape("" if value is None else str(value))


def _badge(text) -> str:
    return f'<span class="badge {_esc(text)}">{_esc(text)}</span>'


# -- client-side scripts ------------------------------------------------------

_INDEX_JS = """
'use strict';
function render(payload) {
  const rows = payload.jobs.map(function (job) {
    return '<tr>' +
      '<td><a href="/ui/jobs/' + job.id + '">' + job.id + '</a></td>' +
      '<td>' + job.tenant + '</td>' +
      '<td><span class="badge ' + job.state + '">' + job.state +
      '</span></td>' +
      '<td>' + job.priority + '</td>' +
      '<td>' + job.spec.workload + '/' + job.spec.scale + ' ×' +
      job.spec.experiments + ' seed=' + job.spec.seed + '</td>' +
      '<td>' + (job.result_digest ?
                job.result_digest.slice(0, 12) : '-') + '</td>' +
      '</tr>';
  }).join('');
  document.querySelector('#jobs tbody').innerHTML =
    rows || '<tr><td colspan="6" class="muted">no jobs yet</td></tr>';
  document.getElementById('depth').textContent = payload.queue_depth;
}
async function poll() {
  try {
    const res = await fetch('/v1/jobs');
    if (res.ok) { render(await res.json()); }
  } catch (err) { /* transient; keep the last table */ }
  setTimeout(poll, 3000);
}
render(JSON.parse(
  document.getElementById('gemfi-data').textContent));
setTimeout(poll, 3000);
"""

_JOB_JS = """
'use strict';
const data = JSON.parse(
  document.getElementById('gemfi-data').textContent);
const log = document.getElementById('events');
function set(id, text) {
  const el = document.getElementById(id);
  if (el) { el.textContent = text; }
}
function handle(frame) {
  const line = document.createElement('div');
  line.textContent = JSON.stringify(frame);
  log.appendChild(line);
  log.scrollTop = log.scrollHeight;
  if (frame.type === 'status') {
    set('state', frame.state);
    const el = document.getElementById('statebadge');
    if (el) { el.className = 'badge ' + frame.state; }
    if (frame.campaign) {
      set('progress', frame.campaign.completed + '/' +
          frame.campaign.total + ' done, ' + frame.campaign.claimed +
          ' running, ' + frame.campaign.todo + ' queued');
      set('kips', frame.campaign.kips.toFixed(1));
      set('outcomes', JSON.stringify(frame.campaign.outcomes));
    }
  } else if (frame.type === 'end') {
    set('state', frame.state);
    set('stream', 'stream ended (job ' + frame.state + ')');
  }
}
async function tail() {
  try {
    const res = await fetch('/v1/jobs/' + data.job.id +
                            '/events?poll=1');
    if (!res.ok || !res.body) {
      set('stream', 'event stream unavailable (HTTP ' + res.status +
          ')');
      return;
    }
    set('stream', 'live: streaming /v1/jobs/' + data.job.id +
        '/events');
    const reader = res.body.getReader();
    const decoder = new TextDecoder();
    let buffer = '';
    for (;;) {
      const chunk = await reader.read();
      if (chunk.done) { break; }
      buffer += decoder.decode(chunk.value, {stream: true});
      let cut;
      while ((cut = buffer.indexOf('\\n')) >= 0) {
        const line = buffer.slice(0, cut).trim();
        buffer = buffer.slice(cut + 1);
        if (line) { handle(JSON.parse(line)); }
      }
    }
  } catch (err) {
    set('stream', 'stream error: ' + err);
  }
}
tail();
"""

_METRICS_JS = """
'use strict';
const W = 360, H = 64, PAD = 4;
function spark(points) {
  if (!points.length) { return '<svg width="' + W + '" height="' +
                               H + '"></svg>'; }
  let lo = Infinity, hi = -Infinity;
  points.forEach(function (p) {
    lo = Math.min(lo, p[1]); hi = Math.max(hi, p[1]);
  });
  if (hi === lo) { hi = lo + 1; }
  const t0 = points[0][0];
  const t1 = Math.max(points[points.length - 1][0], t0 + 1e-9);
  const path = points.map(function (p, i) {
    const x = PAD + (p[0] - t0) / (t1 - t0) * (W - 2 * PAD);
    const y = H - PAD - (p[1] - lo) / (hi - lo) * (H - 2 * PAD);
    return (i ? 'L' : 'M') + x.toFixed(1) + ' ' + y.toFixed(1);
  }).join(' ');
  const last = points[points.length - 1][1];
  return '<svg width="' + W + '" height="' + H + '">' +
    '<path d="' + path + '" fill="none" stroke="#2a6fb5" ' +
    'stroke-width="1.5"/></svg>' +
    '<span class="muted"> min ' + lo.toPrecision(4) +
    ' · max ' + hi.toPrecision(4) +
    ' · last ' + last.toPrecision(4) + '</span>';
}
function render(payload) {
  const names = Object.keys(payload.history).sort();
  const box = document.getElementById('charts');
  document.getElementById('meta').textContent =
    names.length + ' series · ' + payload.meta.samples +
    ' samples · round ' + payload.meta.rounds +
    ' · every ' + payload.meta.interval + 's, keep ' +
    payload.meta.retention;
  if (!names.length) {
    box.innerHTML = '<p class="muted">no samples recorded yet — ' +
      'the recorder beats every ' + payload.meta.interval +
      's.</p>';
    return;
  }
  box.innerHTML = names.map(function (name) {
    return '<div class="chart"><div class="name">' + name +
      '</div>' + spark(payload.history[name]) + '</div>';
  }).join('');
}
async function refresh() {
  const prefix = document.getElementById('prefix').value.trim();
  const query = prefix ? '?prefix=' + encodeURIComponent(prefix) : '';
  try {
    const res = await fetch('/v1/history' + query);
    if (res.ok) { render(await res.json()); }
  } catch (err) { /* transient */ }
}
document.getElementById('prefix').addEventListener('change', refresh);
render(JSON.parse(
  document.getElementById('gemfi-data').textContent));
setInterval(refresh, 5000);
"""


class Console:
    """Read-only HTML views over a :class:`~repro.service.api.ServiceApp`."""

    def __init__(self, app) -> None:
        self.app = app

    def register(self, router) -> None:
        add = router.add
        add("GET", "/ui", self.index)
        add("GET", "/ui/metrics", self.metrics_page)
        add("GET", "/ui/coverage", self.coverage_page)
        add("GET", "/ui/compare", self.compare_page)
        add("GET", "/ui/alerts", self.alerts_page)
        add("GET", "/ui/jobs/{id}", self.job_page)
        add("GET", "/ui/jobs/{id}/timeline", self.timeline_page)
        add("GET", "/ui/jobs/{id}/report", self.report_page)

    # -- helpers --------------------------------------------------------------

    def _shares(self) -> dict[str, str]:
        """job id -> existing share directory, newest submissions
        first capped at a sane feed width."""
        shares: dict[str, str] = {}
        for job in self.app.queue.list_jobs():
            share = self.app._share(job)
            if share is not None:
                shares[job.id] = share
        return shares

    # -- pages ----------------------------------------------------------------

    async def index(self, request: Request) -> Response:
        tenant = request.query.get("tenant")
        jobs = self.app.queue.list_jobs(tenant=tenant)
        payload = {
            "jobs": [job.as_dict() for job in jobs],
            "tenants": self.app.queue.tenant_counts(),
            "queue_depth": self.app.queue.depth(),
        }
        tenants = " ".join(
            f"{_esc(name)}=<code>{_esc(states)}</code>"
            for name, states in sorted(payload["tenants"].items()))
        body = (
            "<h1>Campaign explorer</h1>"
            f'<p class="muted">queue depth <b id="depth">'
            f'{payload["queue_depth"]}</b>'
            + (f" · tenants: {tenants}" if tenants else "")
            + "</p>"
            '<table id="jobs"><thead><tr><th>job</th><th>tenant</th>'
            "<th>state</th><th>prio</th><th>spec</th>"
            "<th>results</th></tr></thead><tbody></tbody></table>"
            '<p class="muted">rows refresh every 3 s from '
            "<code>GET /v1/jobs</code>; click a job for the live "
            "view.</p>")
        return _page("jobs", body, payload, script=_INDEX_JS)

    async def job_page(self, request: Request) -> Response:
        job = self.app._job(request)
        payload = {"job": job.as_dict()}
        share = self.app._share(job)
        spec = job.spec
        rows = [
            ("state", f'<span id="statebadge" class="badge '
                      f'{_esc(job.state)}"><span id="state">'
                      f"{_esc(job.state)}</span></span>"),
            ("tenant", _esc(job.tenant)),
            ("spec", _esc(f"{spec.workload}/{spec.scale} "
                          f"×{spec.experiments} seed={spec.seed} "
                          f"workers={spec.workers}")),
            ("progress", '<span id="progress">-</span>'),
            ("KIPS", '<span id="kips">-</span>'),
            ("outcomes", '<span id="outcomes">-</span>'),
            ("results", _esc(job.result_digest or "-")),
            ("error", _esc(job.error or "-")),
        ]
        kv = "".join(f"<dt>{name}</dt><dd>{value}</dd>"
                     for name, value in rows)
        links = [f'<a href="/ui/jobs/{_esc(job.id)}/report">report</a>',
                 f'<a href="/v1/jobs/{_esc(job.id)}/status">status '
                 f"JSON</a>"]
        if share is not None:
            links.insert(
                0, f'<a href="/ui/coverage?job={_esc(job.id)}">'
                   f"coverage</a>")
            links.insert(
                0, f'<a href="/ui/jobs/{_esc(job.id)}/timeline">'
                   f"timeline</a>")
        body = (
            f"<h1>Job <code>{_esc(job.id)}</code></h1>"
            f'<dl class="kv">{kv}</dl>'
            f"<p>{' · '.join(links)}</p>"
            f'<h2>Event stream <span class="muted" id="stream">'
            f"connecting…</span></h2>"
            '<pre id="events"></pre>')
        return _page(f"job {job.id}", body, payload, script=_JOB_JS)

    async def metrics_page(self, request: Request) -> Response:
        if self.app.history is None:
            raise HTTPError(404, "metrics history is not enabled on "
                                 "this service")
        prefix = request.query.get("prefix", "")
        if prefix:
            series = self.app.history.series(prefix=prefix)
        else:
            series = {}
            for chart in DEFAULT_CHART_PREFIXES:
                series.update(self.app.history.series(prefix=chart))
        meta = self.app.history.summary()
        meta["interval"] = self.app.history_interval
        payload = {"history": series, "meta": meta}
        body = (
            "<h1>Metrics history</h1>"
            f'<p class="muted" id="meta"></p>'
            f'<p><label>series prefix <input id="prefix" '
            f'value="{_esc(prefix)}" '
            f'placeholder="queue. / http. / usage."></label> '
            f'<span class="muted">empty = the default charts '
            f"(KIPS, queue depth, HTTP latency, outcome mix); data "
            f"from <code>GET /v1/history</code></span></p>"
            '<div id="charts"></div>')
        return _page("metrics", body, payload, script=_METRICS_JS)

    async def coverage_page(self, request: Request) -> Response:
        """Fault-space coverage maps: per-dimension outcome heatmaps
        (SVG grids with Wilson-interval tooltips) and the convergence
        summary for one job's share (``?job=`` selects; default is
        the newest job with a share)."""
        from ..analysis.coverage import (
            DIMENSIONS,
            coverage_from_share,
            render_coverage_svg,
        )
        shares = self._shares()
        job_id = request.query.get("job")
        if job_id and job_id not in shares:
            raise HTTPError(404, f"no campaign share for job "
                                 f"{job_id}")
        if not job_id and shares:
            job_id = next(reversed(shares))  # newest submission
        payload = {"job": job_id, "jobs": sorted(shares),
                   "coverage": None}
        if job_id is None:
            body = ("<h1>Fault-space coverage</h1>"
                    '<p class="muted">no campaign shares yet — '
                    "submit a job and its coverage map appears "
                    "here.</p>")
            return _page("coverage", body, payload)
        coverage = coverage_from_share(shares[job_id]).as_dict()
        payload["coverage"] = coverage
        space = coverage["space"]
        convergence = coverage["convergence"]
        if space["total"]:
            visited = (f"{space['covered_sites']}/{space['total']} "
                       f"sites "
                       f"({space['covered_fraction'] * 100:.4g}%)")
        else:
            visited = (f"{space['covered_sites']} sites "
                       f"(space size unknown)")
        if convergence["margin_reached"]:
            margin = (f"±{convergence['margin'] * 100:g}% margin "
                      f"reached after "
                      f"{convergence['margin_reached_at']} "
                      f"experiments")
        else:
            margin = (f"±{convergence['margin'] * 100:g}% margin not "
                      f"reached (max half-width "
                      f"±{convergence['max_half_width'] * 100:.1f}%)")
        picker = " ".join(
            f"<b>{_esc(other)}</b>" if other == job_id else
            f'<a href="/ui/coverage?job={_esc(other)}">'
            f"{_esc(other)}</a>"
            for other in payload["jobs"])
        charts = "".join(
            f'<div class="chart">'
            f"{render_coverage_svg(coverage, dimension)}</div>"
            for dimension in DIMENSIONS)
        body = (
            f"<h1>Fault-space coverage "
            f"<code>{_esc(job_id)}</code></h1>"
            f'<p class="muted">jobs: {picker}</p>'
            f"<p>{_esc(visited)} · "
            f"{convergence['experiments']} experiments accounted "
            f"(effective n {convergence['effective_n']:g}) · "
            f"{_esc(margin)} at "
            f"{convergence['confidence'] * 100:g}% confidence · "
            f'<a href="/v1/jobs/{_esc(job_id)}/coverage">JSON</a> · '
            f"cells carry Wilson intervals (hover a box)</p>"
            + charts)
        return _page("coverage", body, payload)

    async def compare_page(self, request: Request) -> Response:
        """Differential analytics: pick a base and head campaign
        (``?base=&head=`` — job ids or baseline names; default is the
        two newest comparable jobs), rendered as side-by-side outcome
        bars and per-dimension delta heatmaps.  The numbers come from
        :meth:`~repro.service.api.ServiceApp.compare_payload` — the
        exact code path behind ``GET /v1/compare``."""
        from ..analysis.diff import (
            DIMENSIONS,
            render_diff_bars,
            render_diff_svg,
        )
        candidates = [row["job"] for row
                      in self.app.queue.list_archive()]
        for job_id in self._shares():
            if job_id not in candidates:
                candidates.append(job_id)
        baselines = self.app.queue.baselines()
        base = request.query.get("base")
        head = request.query.get("head")
        if not head and candidates:
            head = candidates[-1]
        if not base and len(candidates) >= 2:
            base = candidates[-2]
        elif not base:
            base = head
        payload = {"base": base, "head": head, "jobs": candidates,
                   "baselines": baselines, "compare": None}
        if base is None or head is None:
            body = ("<h1>Campaign compare</h1>"
                    '<p class="muted">nothing to compare yet — '
                    "finish two jobs (or one, for a self-compare) "
                    "and pick them here.</p>")
            return _page("compare", body, payload)
        diff = self.app.compare_payload(base, head, 0.95, 0.02)
        payload["compare"] = diff
        verdicts = [row["verdict"]
                    for row in diff["outcomes"].values()]

        def _picker(param: str, chosen: str) -> str:
            other = {"base": head, "head": base}[param]
            names = candidates + sorted(set(baselines)
                                        - set(candidates))
            links = []
            for name in names:
                if name == chosen:
                    links.append(f"<b>{_esc(name)}</b>")
                    continue
                query = {"base": f"base={_esc(name)}&head={_esc(other)}",
                         "head": f"base={_esc(other)}&head={_esc(name)}"}
                links.append(f'<a href="/ui/compare?{query[param]}">'
                             f"{_esc(name)}</a>")
            return " ".join(links)

        charts = "".join(
            f'<div class="chart">{render_diff_svg(diff, dimension)}'
            f"</div>"
            for dimension in DIMENSIONS
            if diff["heatmaps"][dimension]["cells"])
        body = (
            f"<h1>Campaign compare {_badge(diff['verdict'])}</h1>"
            f'<p class="muted">base: {_picker("base", base)}</p>'
            f'<p class="muted">head: {_picker("head", head)}</p>'
            f"<p>{verdicts.count('regressed')} regressed, "
            f"{verdicts.count('improved')} improved, "
            f"{verdicts.count('unchanged')} unchanged at "
            f"{diff['config']['confidence'] * 100:g}% confidence, "
            f"margin ±{diff['config']['margin'] * 100:g}% · "
            f'<a href="/v1/compare?base={_esc(base)}&amp;'
            f'head={_esc(head)}">JSON</a> · boxes carry Newcombe '
            f"intervals (hover)</p>"
            f'<div class="chart">{render_diff_bars(diff)}</div>'
            + charts)
        return _page("compare", body, payload)

    async def alerts_page(self, request: Request) -> Response:
        live = request.query.get("live", "1") != "0"
        feed = alerts_feed(self._shares(),
                           self.app.watchdog_config, live=live,
                           limit=200, clock=self.app._clock)
        payload = {"alerts": feed}
        if feed:
            rows = "".join(
                "<tr>"
                f"<td>{_badge(entry.get('severity'))}</td>"
                f"<td>{_esc(entry.get('rule'))}</td>"
                f'<td><a href="/ui/jobs/{_esc(entry.get("share"))}">'
                f"{_esc(entry.get('share'))}</a></td>"
                f"<td>{_esc(entry.get('worker') or '-')}</td>"
                f"<td>{_esc(entry.get('message'))}"
                + (' <span class="muted">(live, not yet '
                   "journalled)</span>" if entry.get("live") else "")
                + "</td></tr>"
                for entry in feed)
            table = ("<table><thead><tr><th>severity</th><th>rule</th>"
                     "<th>job</th><th>worker</th><th>message</th>"
                     f"</tr></thead><tbody>{rows}</tbody></table>")
        else:
            table = ('<p class="muted">no alerts — every share is '
                     "healthy.</p>")
        body = (
            "<h1>Alerts</h1>"
            '<p class="muted">the watchdog journal '
            "(<code>alerts.jsonl</code>) of every job share, merged; "
            f"{'live rules evaluated too' if live else 'journal only'}"
            f" — <a href=\"/ui/alerts?live={0 if live else 1}\">"
            f"{'journal only' if live else 'evaluate live'}</a></p>"
            + table)
        return _page("alerts", body, payload)

    async def timeline_page(self, request: Request) -> Response:
        job = self.app._job(request)
        share = self.app._share(job)
        if share is None:
            raise HTTPError(404, f"job {job.id} has no share "
                                 "directory (not dispatched yet, or "
                                 "answered from the store)")
        timebase = request.query.get("timebase", "host")
        try:
            trace = build_timeline(share, timebase=timebase)
        except ValueError as exc:
            raise HTTPError(400, str(exc)) from None
        svg = render_timeline_svg(trace)
        tree = render_span_tree(share)
        other = "ticks" if timebase == "host" else "host"
        payload = {"job": job.id, "otherData": trace["otherData"],
                   "events": len(trace["traceEvents"])}
        body = (
            f"<h1>Timeline <code>{_esc(job.id)}</code></h1>"
            f'<p class="muted">{payload["events"]} trace events, '
            f"timebase <b>{_esc(timebase)}</b> — "
            f'<a href="/ui/jobs/{_esc(job.id)}/timeline'
            f'?timebase={other}">switch to {other}</a> · the same '
            f"JSON loads in Perfetto via <code>gemfi timeline</code>"
            "</p>"
            f'<div class="chart">{svg}</div>'
            "<h2>Span tree</h2>"
            f"<pre>{html.escape(tree) or 'no spans recorded'}</pre>")
        return _page(f"timeline {job.id}", body, payload)

    async def report_page(self, request: Request) -> Response:
        job = self.app._job(request)
        share = self.app._share(job)
        payload = {"job": job.id}
        if share is not None:
            from ..telemetry.report import load_share, render_report
            text = render_report(load_share(share), fmt="md")
        elif job.report_digest \
                and self.app.store.has(job.report_digest):
            text = self.app.store.get(job.report_digest) \
                .decode("utf-8")
        else:
            raise HTTPError(404, f"no report for job {job.id} yet")
        body = (
            f"<h1>Report <code>{_esc(job.id)}</code></h1>"
            f'<p class="muted">the markdown outcome report, inlined '
            f'— <a href="/v1/jobs/{_esc(job.id)}/report?format=html">'
            f"standalone HTML</a></p>"
            f"<pre>{html.escape(text)}</pre>")
        return _page(f"report {job.id}", body, payload)
