"""The service's observability plane: metrics, request ids, logs.

One :class:`ServiceObserver` is shared by every layer of the service —
the HTTP connection handler, the endpoint handlers, the job queue, the
content store and the dispatcher all hang their counters off the same
:class:`~repro.telemetry.metrics.MetricsRegistry`, which ``GET
/metrics`` renders as OpenMetrics text
(:func:`repro.telemetry.export.render_openmetrics`).

Beyond metrics, the observer owns:

* **request ids** — every HTTP request gets one (inbound
  ``X-Request-Id`` is honoured, else a fresh ``req-...`` is minted),
  echoed in the response header, stamped into the access log, carried
  by 500 bodies, and — for traced jobs — seeded into the campaign
  trace so the job's span tree roots at the request that created it;
* **structured logs** — JSONL access and error logs under
  ``data_dir/logs/``; the error log carries the full traceback that
  the (deliberately generic) 500 response body does not.

Everything is optional: the HTTP layer and the queue accept
``observer=None`` / ``metrics=None`` and pay only a pointer test when
observability is off — the same zero-overhead-when-disabled discipline
as the tracer and the profiler.
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback
import uuid

from ..telemetry.export import labelled
from ..telemetry.history import numeric_snapshot
from ..telemetry.metrics import MetricsRegistry

LOG_DIR = "logs"
ACCESS_LOG = "access.jsonl"
ERROR_LOG = "error.jsonl"

#: request-latency buckets (seconds) — a control plane serving small
#: JSON documents, so sub-second resolution dominates.
LATENCY_BOUNDS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                  0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: job-phase buckets (seconds) — campaign phases run far longer.
PHASE_BOUNDS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
                120.0, 300.0, 600.0)

#: HELP text per rendered family name (post-sanitization).
HELP_TEXTS = {
    "http_requests": "HTTP requests served, by method/route/status "
                     "class.",
    "http_request_duration_seconds": "HTTP request latency by route.",
    "http_requests_in_flight": "Requests currently being handled.",
    "http_connections": "TCP connections accepted.",
    "http_connections_open": "TCP connections currently open.",
    "http_errors": "Requests that hit an unhandled exception (500).",
    "queue_jobs_submitted": "Jobs accepted into the queue, by tenant.",
    "queue_dedup_hits": "Submissions answered born-done from a stored "
                        "identical result.",
    "queue_quota_rejections": "Submissions rejected by tenant quota.",
    "queue_leases": "Jobs leased to a dispatcher.",
    "queue_requeued": "Expired leases returned to the queue.",
    "queue_jobs_finished": "Jobs reaching a terminal state, by state.",
    "queue_depth": "Jobs waiting for a dispatcher.",
    "queue_tenant_active": "Active (queued+leased) jobs, by tenant.",
    "queue_tenant_quota": "Active-job quota, by tenant (0 = "
                          "unlimited).",
    "store_writes": "Objects written to the content store.",
    "store_dedup_hits": "put() calls answered by an existing object.",
    "store_bytes_written": "Bytes written to the content store.",
    "store_reads": "Objects read from the content store.",
    "store_objects": "Objects currently in the content store.",
    "store_bytes": "Bytes currently in the content store.",
    "job_phase_seconds": "Wall seconds per dispatcher job phase.",
    "jobs_executed": "Jobs executed by this dispatcher, by outcome.",
    "usage_jobs": "Completed jobs, by tenant (persisted metering).",
    "usage_experiments": "Completed experiments, by tenant.",
    "usage_instructions": "Simulated instructions, by tenant.",
    "usage_wall_seconds": "Campaign wall seconds, by tenant.",
    "usage_kips": "Aggregate simulation rate (simulated kilo-"
                  "instructions per campaign wall second), by tenant.",
    "coverage_space_total": "Enumerated fault-space size (sites x "
                            "cycles x bits), by job.",
    "coverage_covered_sites": "Distinct fault sites visited, by job.",
    "coverage_covered_fraction": "Fraction of the fault space "
                                 "visited, by job.",
    "coverage_sampled_weight": "Equivalence-weighted experiment "
                               "mass accounted, by job.",
    "coverage_accounted": "Experiment results accounted into the "
                          "coverage map, by job.",
    "coverage_effective_n": "Kish effective sample size of the "
                            "weighted results, by job.",
    "coverage_max_half_width": "Widest Wilson-interval half-width "
                               "over the outcome rates, by job.",
    "coverage_margin_reached": "1 once every outcome-rate half-width "
                               "is inside the campaign margin.",
    "coverage_margin_reached_at": "Experiment count at which the "
                                  "margin was first reached, by job.",
    "queue_archived": "Campaign summaries archived on job "
                      "completion, by tenant.",
    "queue_baselines_tagged": "Baseline tags created or moved.",
    "compare_verdict": "Latest campaign-diff verdict on this service "
                       "(0 unchanged, 1 improved, 2 regressed), by "
                       "base/head.",
    "compare_classes_regressed": "Outcome classes judged regressed "
                                 "in the latest diff.",
    "compare_classes_improved": "Outcome classes judged improved in "
                                "the latest diff.",
    "compare_classes_unchanged": "Outcome classes with no "
                                 "significant shift in the latest "
                                 "diff.",
    "compare_max_abs_delta": "Largest absolute outcome-rate delta in "
                             "the latest diff.",
}


def new_request_id() -> str:
    return f"req-{uuid.uuid4().hex[:12]}"


class ServiceObserver:
    """Shared metrics registry + request-scoped logging.

    Thread-safe: the HTTP event loop, the dispatcher thread and test
    threads all report through one instance (the registry's own
    get-or-create is not locked, so the observer serialises it).
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 log_dir: str | None = None,
                 clock=time.time) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.log_dir = log_dir
        self._clock = clock
        self._lock = threading.Lock()
        self._in_flight = 0
        self._open_connections = 0

    # -- counters -------------------------------------------------------------

    def inc(self, name: str, amount: int = 1, **labels) -> None:
        with self._lock:
            self.registry.counter(labelled(name, **labels)).inc(amount)

    def observe(self, name: str, value: float,
                bounds: tuple[float, ...] = LATENCY_BOUNDS,
                **labels) -> None:
        with self._lock:
            self.registry.histogram(labelled(name, **labels),
                                    bounds).record(value)

    def set_gauge(self, name: str, value, **labels) -> None:
        with self._lock:
            self.registry.set(labelled(name, **labels), value)

    def snapshot(self) -> dict[str, float]:
        """Point-in-time numeric view of the registry for the metrics
        history recorder (histogram bucket lines filtered out; see
        :func:`repro.telemetry.history.numeric_snapshot`) — the same
        statistics ``GET /metrics`` renders, so history and exposition
        can never disagree."""
        with self._lock:
            flat = self.registry.as_flat_dict()
        return numeric_snapshot(flat)

    # -- HTTP lifecycle -------------------------------------------------------

    def connection_opened(self) -> None:
        with self._lock:
            self.registry.counter("http.connections").inc()
            self._open_connections += 1
            self.registry.set("http.connections_open",
                              self._open_connections)

    def connection_closed(self) -> None:
        with self._lock:
            self._open_connections = max(0, self._open_connections - 1)
            self.registry.set("http.connections_open",
                              self._open_connections)

    def request_started(self) -> None:
        with self._lock:
            self._in_flight += 1
            self.registry.set("http.requests_in_flight",
                              self._in_flight)

    def request_finished(self) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            self.registry.set("http.requests_in_flight",
                              self._in_flight)

    def observe_request(self, request_id: str, method: str, route: str,
                        status: int, seconds: float,
                        path: str | None = None,
                        tenant: str | None = None) -> None:
        """One served request: counters, latency histogram, access
        log.  *route* is the matched path template (``/v1/jobs/{id}``),
        keeping label cardinality bounded no matter what clients put
        in the URL."""
        code_class = f"{status // 100}xx"
        self.inc("http.requests", method=method.upper(), route=route,
                 code=code_class)
        self.observe("http.request_duration_seconds", seconds,
                     route=route)
        entry = {"time": self._clock(), "request_id": request_id,
                 "method": method.upper(), "route": route,
                 "status": status,
                 "seconds": round(seconds, 6)}
        if path is not None and path != route:
            entry["path"] = path
        if tenant:
            entry["tenant"] = tenant
        self._append(ACCESS_LOG, entry)

    def observe_error(self, request_id: str, exc: BaseException,
                      method: str = "?", path: str = "?") -> None:
        """An unhandled handler exception: counted, and journalled
        with its full traceback (the client sees only the generic 500
        body plus the request id to quote back at the operator)."""
        self.inc("http.errors", type=type(exc).__name__)
        self._append(ERROR_LOG, {
            "time": self._clock(), "request_id": request_id,
            "method": method, "path": path,
            "type": type(exc).__name__, "message": str(exc),
            "traceback": "".join(traceback.format_exception(
                type(exc), exc, exc.__traceback__)),
        })

    # -- logs -----------------------------------------------------------------

    def _append(self, name: str, entry: dict) -> None:
        if self.log_dir is None:
            return
        line = json.dumps(entry, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            try:
                os.makedirs(self.log_dir, exist_ok=True)
                with open(os.path.join(self.log_dir, name), "a",
                          encoding="utf-8") as handle:
                    handle.write(line)
            except OSError:
                pass  # a full disk must not take the service down

    def log_path(self, name: str) -> str | None:
        if self.log_dir is None:
            return None
        return os.path.join(self.log_dir, name)
