"""Lease-based job dispatch into campaign backends.

The dispatcher is the service's execution half: it drains the
persistent queue, runs each job as a campaign on a **private share**
under the service data directory (``shares/<job-id>``), and lands the
artifacts in the content store.  Execution goes through the pluggable
:class:`~repro.campaign.backend.CampaignBackend` registry — today
that means the paper's shared-dir NoW protocol, with workers either

* forked as real OS processes (``spec.workers >= 2``, the existing
  ``run_local`` path), or
* embedded in the dispatcher process (``spec.workers <= 1``), which
  wraps ``worker_loop`` directly and reuses a cached
  :class:`~repro.campaign.runner.CampaignRunner` — identical golden
  runs are computed once per (workload, scale) and their checkpoints
  deduplicated by the content store.

While a job runs, a :class:`~repro.telemetry.campaign.PeriodicBeat`
thread keeps extending the lease, so slow campaigns are not stolen;
if the dispatcher dies instead, the lease expires and
``requeue_expired`` hands the job to the next dispatcher — crash
recovery without a coordinator.

With an observer attached the dispatcher times every job phase
(golden run, publish, campaign, collect, report) into histograms and
meters completed work per tenant into the queue's persistent usage
table.  A job submitted with ``trace: true`` gets its span tree
rooted at the HTTP request that created it: the dispatcher writes a
``/request`` span (stamped with the request id recorded at submit
time) and hands the request's span id down through ``publish`` so the
campaign root — wherever it is opened — parents under it.
"""

from __future__ import annotations

import os
import threading
import time

from ..campaign import CampaignRunner, SEUGenerator, get_backend
from ..telemetry.campaign import SERVICE_FILE, PeriodicBeat
from ..telemetry.spans import (CAMPAIGN_PATH, JsonlSpanSink,
                               TraceContext, Tracer, span_log_path)
from ..workloads import build
from .jobs import Job, canonical_results
from .observability import PHASE_BOUNDS
from .queue import JobQueue, LeaseError
from .store import ContentStore, canonical_json_bytes

#: path of the originating-request span in a service-traced campaign.
REQUEST_PATH = "/request"


class Dispatcher:
    def __init__(self, queue: JobQueue, store: ContentStore,
                 data_dir: str, lease_seconds: float = 600.0,
                 poll_seconds: float = 0.5, owner: str | None = None,
                 observer=None, clock=time.time) -> None:
        self.queue = queue
        self.store = store
        self.data_dir = data_dir
        self.shares_dir = os.path.join(data_dir, "shares")
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        self.owner = owner or f"dispatcher-{os.getpid()}"
        self.observer = observer
        self._clock = clock
        # Golden runs are the expensive part of a job; identical
        # (workload, scale) pairs share one runner within this
        # process, and the checkpoint bytes dedupe in the store.
        self._runners: dict[tuple[str, str], CampaignRunner] = {}
        os.makedirs(self.shares_dir, exist_ok=True)

    # -- runners --------------------------------------------------------------

    def runner_for(self, workload: str, scale: str) -> CampaignRunner:
        key = (workload, scale)
        if key not in self._runners:
            self._runners[key] = CampaignRunner(build(workload, scale))
        return self._runners[key]

    # -- phase timing ---------------------------------------------------------

    def _phase_done(self, phase: str, started: float) -> None:
        if self.observer is not None:
            self.observer.observe("job.phase_seconds",
                                  time.monotonic() - started,
                                  bounds=PHASE_BOUNDS, phase=phase)

    # -- one job --------------------------------------------------------------

    def run_job(self, job: Job) -> dict:
        """Execute one leased job end to end; returns the artifact
        digests for :meth:`JobQueue.complete`."""
        spec = job.spec
        share_dir = os.path.join(self.shares_dir, job.id)
        phase_started = time.monotonic()
        runner = self.runner_for(spec.workload, spec.scale)
        backend_cls = get_backend(spec.backend)
        campaign = backend_cls(share_dir, spec.workload, spec.scale)
        self.queue.record_share(job.id, share_dir)
        self._mark_share(share_dir, job)

        checkpoint_digest = None
        if runner.golden.checkpoint is not None:
            checkpoint_digest = self.store.put_bytes(
                runner.golden.checkpoint)
        self._phase_done("golden", phase_started)

        location = None
        if spec.location is not None:
            from ..core import LocationKind
            location = LocationKind(spec.location)
        generator = SEUGenerator(runner.golden.profile, seed=spec.seed)
        faults = generator.batch(spec.experiments, location=location)
        phase_started = time.monotonic()
        trace_request = self._trace_request(job, share_dir)
        if spec.trace:
            # Extra kwargs only on traced jobs, so third-party
            # backends with the pre-trace publish signature keep
            # working for everything else.
            campaign.publish(runner, faults, seed=spec.seed,
                             trace=True, request=trace_request)
        else:
            campaign.publish(runner, faults, seed=spec.seed)
        self._phase_done("publish", phase_started)

        def _extend() -> None:
            try:
                self.queue.extend_lease(job.id, self.owner,
                                        self.lease_seconds)
            except Exception:
                pass  # queue hiccup; the next beat retries

        coordinator = None
        worker_tracer = None
        root = None
        results = None
        phase_started = time.monotonic()
        try:
            with PeriodicBeat(max(1.0, self.lease_seconds / 3.0),
                              _extend, name=f"lease-{job.id}"):
                if spec.workers >= 2:
                    # run_local's coordinator reads the published
                    # request context and roots the campaign itself.
                    campaign.run_local(workers=spec.workers)
                else:
                    worker_id = f"svc-{self.owner}"
                    if spec.trace:
                        # Embedded execution: this process is both the
                        # coordinator (owns /campaign, rooted under
                        # the request span) and the only worker.
                        coordinator, root, worker_tracer = \
                            self._embedded_tracers(
                                job, share_dir, worker_id,
                                trace_request)
                        runner.enable_tracing(worker_tracer)
                    campaign.worker_loop(worker_id, runner,
                                         tracer=worker_tracer)
            self._phase_done("campaign", phase_started)
            phase_started = time.monotonic()
            results = campaign.collect()
            self._phase_done("collect", phase_started)
        finally:
            if worker_tracer is not None:
                # The runner outlives this job (cached per workload/
                # scale), so the tracer must not.
                runner.tracer = None
                worker_tracer.close()
            if coordinator is not None:
                coordinator.finish(
                    root, results=len(results) if results else 0)
                coordinator.close()
        if len(results) != spec.experiments:
            raise RuntimeError(
                f"job {job.id}: {len(results)} results for "
                f"{spec.experiments} experiments")
        self._record_usage(job, results)
        phase_started = time.monotonic()
        result_digest = self.store.put_bytes(
            canonical_json_bytes(canonical_results(results)))
        report_digest = self._store_report(share_dir)
        self._archive_summary(job, share_dir)
        self._phase_done("report", phase_started)
        return {"result_digest": result_digest,
                "report_digest": report_digest,
                "checkpoint_digest": checkpoint_digest}

    # -- request-rooted tracing -----------------------------------------------

    def _trace_request(self, job: Job, share_dir: str) -> dict | None:
        """For a traced job, write the originating-request span and
        return the context (``{"span", "id"}``) that ``publish`` hands
        to whoever opens the campaign root."""
        if not job.spec.trace:
            return None
        context = TraceContext(job.spec.seed)
        request = {"span": context.span_id(REQUEST_PATH)}
        if job.request_id:
            request["id"] = job.request_id
        tracer = Tracer(context,
                        sink=JsonlSpanSink(
                            span_log_path(share_dir, "service")),
                        worker="service")
        attrs = {"kind": "request", "job": job.id,
                 "tenant": job.tenant}
        if job.request_id:
            attrs["request_id"] = job.request_id
        # Retro-recorded: the request span covers submit -> lease,
        # timestamps the queue already persisted.
        tracer.record("request", t0=job.submitted,
                      t1=job.started if job.started is not None
                      else self._clock(), **attrs)
        tracer.close()
        return request

    def _embedded_tracers(self, job: Job, share_dir: str,
                          worker_id: str, trace_request: dict):
        """Coordinator + worker tracers for the in-process execution
        path — the same span identities ``run_local`` would produce,
        with the campaign root parented under the request span."""
        spec = job.spec
        coordinator = Tracer(
            TraceContext(spec.seed),
            sink=JsonlSpanSink(
                span_log_path(share_dir, "coordinator")),
            worker="coordinator",
            root_parent=trace_request["span"])
        attrs = {"workload": spec.workload, "scale": spec.scale,
                 "workers": 1}
        if job.request_id:
            attrs["request_id"] = job.request_id
        root = coordinator.start("campaign", kind="campaign", **attrs)
        worker_tracer = Tracer(
            TraceContext(spec.seed),
            sink=JsonlSpanSink(span_log_path(share_dir, worker_id)),
            worker=worker_id, base_path=CAMPAIGN_PATH)
        return coordinator, root, worker_tracer

    # -- usage metering -------------------------------------------------------

    def _record_usage(self, job: Job, results: list[dict]) -> None:
        """Meter the completed campaign against its tenant, from the
        *raw* results (canonicalisation strips wall_seconds)."""
        try:
            self.queue.record_usage(
                job.tenant, jobs=1, experiments=len(results),
                instructions=sum(int(entry.get("instructions", 0))
                                 for entry in results),
                wall_seconds=sum(
                    float(entry.get("wall_seconds", 0.0) or 0.0)
                    for entry in results))
        except Exception:
            pass  # metering must never fail the job

    def _mark_share(self, share_dir: str, job: Job) -> None:
        """Write the service marker so ``gemfi status`` on this share
        shows the owning job/tenant and live queue numbers."""
        os.makedirs(share_dir, exist_ok=True)
        import json
        path = os.path.join(share_dir, SERVICE_FILE)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"job": job.id, "tenant": job.tenant,
                       "queue_db": os.path.abspath(self.queue.path)},
                      handle)
        os.replace(tmp, path)

    def _archive_summary(self, job: Job, share_dir: str) -> None:
        """Digest the finished campaign into the queue's archive (and
        the content store), keyed by job id — `gemfi compare` and
        `/v1/compare` then work long after the share is gone."""
        try:
            from ..analysis.diff import CampaignSummary
            summary = CampaignSummary.from_share(share_dir,
                                                 name=job.id)
            digest = self.store.put_bytes(summary.canonical_bytes())
            self.queue.archive_summary(job.id, summary.payload,
                                       digest)
        except Exception:
            pass  # archival must never fail the job

    def _store_report(self, share_dir: str) -> str | None:
        from ..telemetry.report import load_share, render_report
        try:
            report = render_report(load_share(share_dir), fmt="md")
        except Exception:
            return None  # a report failure must not fail the job
        return self.store.put_text(report)

    # -- the dispatch loop ----------------------------------------------------

    def poll_once(self) -> bool:
        """Recover expired leases, then lease and run at most one job.
        Returns True when a job was processed."""
        self.queue.requeue_expired()
        job = self.queue.lease(self.owner,
                               lease_seconds=self.lease_seconds)
        if job is None:
            return False
        try:
            digests = self.run_job(job)
        except Exception as exc:
            if self.observer is not None:
                self.observer.inc("jobs.executed", outcome="failed")
            try:
                self.queue.fail(job.id,
                                error=f"{type(exc).__name__}: {exc}",
                                owner=self.owner)
            except LeaseError:
                pass  # lease already reassigned; its holder decides
            return True
        if self.observer is not None:
            self.observer.inc("jobs.executed", outcome="done")
        try:
            self.queue.complete(job.id, owner=self.owner, **digests)
        except LeaseError:
            pass  # ran past our lease; the re-run's verdict wins
        return True

    def run_forever(self, stop: threading.Event) -> None:
        while not stop.is_set():
            if not self.poll_once():
                stop.wait(self.poll_seconds)
