"""Lease-based job dispatch into campaign backends.

The dispatcher is the service's execution half: it drains the
persistent queue, runs each job as a campaign on a **private share**
under the service data directory (``shares/<job-id>``), and lands the
artifacts in the content store.  Execution goes through the pluggable
:class:`~repro.campaign.backend.CampaignBackend` registry — today
that means the paper's shared-dir NoW protocol, with workers either

* forked as real OS processes (``spec.workers >= 2``, the existing
  ``run_local`` path), or
* embedded in the dispatcher process (``spec.workers <= 1``), which
  wraps ``worker_loop`` directly and reuses a cached
  :class:`~repro.campaign.runner.CampaignRunner` — identical golden
  runs are computed once per (workload, scale) and their checkpoints
  deduplicated by the content store.

While a job runs, a :class:`~repro.telemetry.campaign.PeriodicBeat`
thread keeps extending the lease, so slow campaigns are not stolen;
if the dispatcher dies instead, the lease expires and
``requeue_expired`` hands the job to the next dispatcher — crash
recovery without a coordinator.
"""

from __future__ import annotations

import os
import threading
import time

from ..campaign import CampaignRunner, SEUGenerator, get_backend
from ..telemetry.campaign import SERVICE_FILE, PeriodicBeat
from ..workloads import build
from .jobs import Job, canonical_results
from .queue import JobQueue, LeaseError
from .store import ContentStore, canonical_json_bytes


class Dispatcher:
    def __init__(self, queue: JobQueue, store: ContentStore,
                 data_dir: str, lease_seconds: float = 600.0,
                 poll_seconds: float = 0.5, owner: str | None = None,
                 clock=time.time) -> None:
        self.queue = queue
        self.store = store
        self.data_dir = data_dir
        self.shares_dir = os.path.join(data_dir, "shares")
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        self.owner = owner or f"dispatcher-{os.getpid()}"
        self._clock = clock
        # Golden runs are the expensive part of a job; identical
        # (workload, scale) pairs share one runner within this
        # process, and the checkpoint bytes dedupe in the store.
        self._runners: dict[tuple[str, str], CampaignRunner] = {}
        os.makedirs(self.shares_dir, exist_ok=True)

    # -- runners --------------------------------------------------------------

    def runner_for(self, workload: str, scale: str) -> CampaignRunner:
        key = (workload, scale)
        if key not in self._runners:
            self._runners[key] = CampaignRunner(build(workload, scale))
        return self._runners[key]

    # -- one job --------------------------------------------------------------

    def run_job(self, job: Job) -> dict:
        """Execute one leased job end to end; returns the artifact
        digests for :meth:`JobQueue.complete`."""
        spec = job.spec
        share_dir = os.path.join(self.shares_dir, job.id)
        runner = self.runner_for(spec.workload, spec.scale)
        backend_cls = get_backend(spec.backend)
        campaign = backend_cls(share_dir, spec.workload, spec.scale)
        self.queue.record_share(job.id, share_dir)
        self._mark_share(share_dir, job)

        checkpoint_digest = None
        if runner.golden.checkpoint is not None:
            checkpoint_digest = self.store.put_bytes(
                runner.golden.checkpoint)

        location = None
        if spec.location is not None:
            from ..core import LocationKind
            location = LocationKind(spec.location)
        generator = SEUGenerator(runner.golden.profile, seed=spec.seed)
        faults = generator.batch(spec.experiments, location=location)
        campaign.publish(runner, faults, seed=spec.seed)

        def _extend() -> None:
            try:
                self.queue.extend_lease(job.id, self.owner,
                                        self.lease_seconds)
            except Exception:
                pass  # queue hiccup; the next beat retries

        with PeriodicBeat(max(1.0, self.lease_seconds / 3.0), _extend,
                          name=f"lease-{job.id}"):
            if spec.workers >= 2:
                campaign.run_local(workers=spec.workers)
            else:
                campaign.worker_loop(f"svc-{self.owner}", runner)

        results = campaign.collect()
        if len(results) != spec.experiments:
            raise RuntimeError(
                f"job {job.id}: {len(results)} results for "
                f"{spec.experiments} experiments")
        result_digest = self.store.put_bytes(
            canonical_json_bytes(canonical_results(results)))
        report_digest = self._store_report(share_dir)
        return {"result_digest": result_digest,
                "report_digest": report_digest,
                "checkpoint_digest": checkpoint_digest}

    def _mark_share(self, share_dir: str, job: Job) -> None:
        """Write the service marker so ``gemfi status`` on this share
        shows the owning job/tenant and live queue numbers."""
        os.makedirs(share_dir, exist_ok=True)
        import json
        path = os.path.join(share_dir, SERVICE_FILE)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"job": job.id, "tenant": job.tenant,
                       "queue_db": os.path.abspath(self.queue.path)},
                      handle)
        os.replace(tmp, path)

    def _store_report(self, share_dir: str) -> str | None:
        from ..telemetry.report import load_share, render_report
        try:
            report = render_report(load_share(share_dir), fmt="md")
        except Exception:
            return None  # a report failure must not fail the job
        return self.store.put_text(report)

    # -- the dispatch loop ----------------------------------------------------

    def poll_once(self) -> bool:
        """Recover expired leases, then lease and run at most one job.
        Returns True when a job was processed."""
        self.queue.requeue_expired()
        job = self.queue.lease(self.owner,
                               lease_seconds=self.lease_seconds)
        if job is None:
            return False
        try:
            digests = self.run_job(job)
        except Exception as exc:
            try:
                self.queue.fail(job.id,
                                error=f"{type(exc).__name__}: {exc}",
                                owner=self.owner)
            except LeaseError:
                pass  # lease already reassigned; its holder decides
            return True
        try:
            self.queue.complete(job.id, owner=self.owner, **digests)
        except LeaseError:
            pass  # ran past our lease; the re-run's verdict wins
        return True

    def run_forever(self, stop: threading.Event) -> None:
        while not stop.is_set():
            if not self.poll_once():
                stop.wait(self.poll_seconds)
