#!/usr/bin/env python3
"""A fault-injection campaign on one of the paper's benchmarks.

Reproduces the Section IV.B methodology on a chosen workload: golden
run + checkpoint, statistically-sized SEU sampling (Leveugle DATE'09),
per-experiment restore, outcome classification, and a Fig. 5-style
per-location breakdown.

Run:  python examples/fault_campaign.py [workload] [experiments]
      python examples/fault_campaign.py dct 60
"""

import sys

from repro.campaign import (
    CampaignRunner,
    SEUGenerator,
    render_location_table,
    sample_size,
)
from repro.workloads import WORKLOAD_NAMES, build


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "dct"
    experiments = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    if name not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {name!r}; "
                         f"choose from {WORKLOAD_NAMES}")

    print(f"building '{name}' (tiny scale) and running the golden "
          "reference...")
    runner = CampaignRunner(build(name, "tiny"), detailed_model="o3")
    golden = runner.golden
    print(f"  FI window: {golden.profile.committed} instructions; "
          f"checkpoint skips {golden.boot_instructions} boot/init "
          "instructions")

    generator = SEUGenerator(golden.profile, seed=1234)
    population = generator.fault_space_size()
    needed = sample_size(population, confidence=0.99, error_margin=0.01)
    print(f"  fault space |N| = {population}; the paper's 99%/1% "
          f"criterion would need {needed} experiments "
          f"(running {experiments} here — pass a second argument to "
          "scale up)")

    print(f"\nrunning {experiments} single-event-upset experiments "
          "(O3 until the fault commits, then atomic)...")
    faults = generator.batch(experiments)
    results = runner.run_campaign(
        faults,
        progress=lambda done, total: print(f"  {done}/{total}", end="\r"))
    print()

    print(render_location_table(
        results, title=f"\n{name}: outcome by fault location "
                       f"(n={len(results)})"))

    crashes = [r for r in results if r.outcome.value == "crashed"]
    if crashes:
        example = crashes[0]
        print("\nexample crash postmortem:")
        print(f"  {example.fault.describe()}")
        print(f"  injected at pc {example.injection_pc:#x} "
              f"({example.injection_detail}); {example.crash_reason}")


if __name__ == "__main__":
    main()
