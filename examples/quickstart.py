#!/usr/bin/env python3
"""Quickstart: compile a program, run it, and inject one fault.

Mirrors the paper's Listing 1 + Listing 2 flow:

1. write an application that brackets its kernel with
   ``fi_activate_inst`` calls (and checkpoints with
   ``fi_read_init_all``);
2. describe a fault in the Listing-1 input format;
3. simulate and inspect the postmortem injection report.

Run:  python examples/quickstart.py
"""

from repro.compiler import compile_source
from repro.core import FaultInjector
from repro.sim import SimConfig, Simulator

# A small MiniC application (Python-syntax, statically typed subset).
PROGRAM = """
TABLE = iarray(16)

def fill():
    for i in range(16):
        TABLE[i] = (i * 7 + 3) % 32

def checksum() -> int:
    total = 0
    for i in range(16):
        total += TABLE[i] * (i + 1)
    return total

def main():
    fill()
    fi_read_init_all()       # checkpoint here in campaign runs
    fi_activate_inst(0)      # start fault injection for thread 0
    result = checksum()
    fi_activate_inst(0)      # stop fault injection
    print_str("checksum ")
    print_int(result)
    print_char(10)
    exit(0)
"""

# Listing-1 style fault description: flip bit 4 of integer register r3
# when the thread has executed 25 instructions inside the FI window.
FAULT = "RegisterInjectedFault Inst:25 Flip:4 Threadid:0 system.cpu0 occ:1 int 3"


def run(fault_text: str = ""):
    injector = FaultInjector.from_text(fault_text)
    sim = Simulator(SimConfig(cpu_model="atomic"), injector=injector)
    sim.load(compile_source(PROGRAM), "quickstart")
    result = sim.run(max_instructions=1_000_000)
    return sim, injector, result


def main():
    golden_sim, _, _ = run()
    print(f"golden output : {golden_sim.console_text().strip()}")

    faulty_sim, injector, result = run(FAULT)
    process = faulty_sim.process(0)
    print(f"faulty output : {process.console_text().strip() or '(none)'}")
    print(f"process state : {process.state.value}"
          + (f" ({process.crash_reason})" if process.crash_reason else ""))

    print("\npostmortem injection report:")
    for record in injector.records:
        print(f"  fault      : {record.fault.describe()}")
        print(f"  at pc      : {record.pc:#x}  "
              f"(window instruction #{record.instruction_count})")
        print(f"  target     : {record.detail}")
        print(f"  value      : {record.before:#x} -> {record.after:#x}")
        print(f"  propagated : {record.propagated}")

    identical = golden_sim.console_text() == process.console_text()
    print(f"\noutput identical to golden: {identical}")


if __name__ == "__main__":
    main()
