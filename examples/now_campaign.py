#!/usr/bin/env python3
"""Campaign on a (simulated) network of workstations — Section III.E.

Demonstrates both halves of the paper's NoW support:

* the **shared-directory protocol**: experiments and the checkpoint are
  published to a share; worker processes claim experiments atomically,
  run them locally from the checkpointed state and write results back
  (steps 1-6 of Section III.E) — executed here with real OS processes;
* the **makespan arithmetic** behind Fig. 8's ~108x: the measured
  per-experiment durations replayed over 27 workstations x 4 slots.

Run:  python examples/now_campaign.py [experiments] [workers]
"""

import sys
import tempfile

from repro.campaign import (
    CampaignRunner,
    NoWConfig,
    SEUGenerator,
    SharedDirCampaign,
    now_speedup,
    outcome_counts,
    simulate_makespan,
)
from repro.workloads import build


def main():
    experiments = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    print("preparing golden run + checkpoint for 'pi' (tiny scale)...")
    runner = CampaignRunner(build("pi", "tiny"))
    generator = SEUGenerator(runner.golden.profile, seed=77)
    faults = [generator.batch(1) for _ in range(experiments)]

    with tempfile.TemporaryDirectory(prefix="gemfi_share_") as share:
        campaign = SharedDirCampaign(share, "pi", "tiny")
        campaign.publish(runner, faults)
        print(f"published {experiments} experiment files + checkpoint "
              f"to the share; launching {workers} worker process(es)...")
        results = campaign.run_local(workers=workers)

    print(f"collected {len(results)} results: "
          f"{outcome_counts(results)}")

    durations = [entry["wall_seconds"] for entry in results]
    serial = sum(durations)
    for workstations, slots in ((2, 2), (8, 4), (27, 4)):
        config = NoWConfig(workstations, slots)
        scale = max(1, 2500 // len(durations))
        scaled = durations * scale
        makespan = simulate_makespan(scaled, config)
        speedup = now_speedup(scaled, config)
        print(f"  {workstations:2d} workstations x {slots} slots: "
              f"paper-sized campaign makespan {makespan:7.1f}s, "
              f"speedup {speedup:6.1f}x (slots={config.total_slots})")
    print(f"\n(the paper's 27x4 cluster measured ~108x — consistent "
          "with the slot count)")
    print(f"serial time of this campaign: {serial:.1f}s")


if __name__ == "__main__":
    main()
