#!/usr/bin/env python3
"""Voltage-vs-correctness study — the paper's stated future work.

Section VII: "we plan to enhance it with realistic fault models,
associating the supply voltage (Vdd) with the error rate in different
system components.  Our goal is to study the limits of aggressively
reducing power consumption at the expense of correctness."

This example uses :class:`VddScaledGenerator`: the expected number of
upsets per run grows exponentially as Vdd drops below nominal; each run
draws a Poisson count of SEUs.  The output is the fraction of runs per
voltage that remain acceptable (strictly/relaxed correct) — the
power/correctness trade-off curve.

Run:  python examples/voltage_scaling.py [runs_per_voltage]
"""

import sys

from repro.campaign import CampaignRunner, Outcome, VddScaledGenerator
from repro.workloads import build

VOLTAGES = (1.00, 0.90, 0.85, 0.80, 0.75, 0.70)


def main():
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 15

    print("golden run for 'jacobi' (tiny scale)...")
    runner = CampaignRunner(build("jacobi", "tiny"))

    print(f"\n{'Vdd':>5s}  {'E[upsets]':>9s}  {'acceptable':>10s}  "
          f"{'crashed':>7s}  {'sdc':>5s}")
    previous_acceptable = 1.0
    for vdd in VOLTAGES:
        generator = VddScaledGenerator(
            runner.golden.profile, seed=int(vdd * 1000), vdd=vdd,
            base_rate=0.3, alpha=10.0)
        outcomes = []
        for _ in range(runs):
            faults = generator.faults_for_run()
            if not faults:
                outcomes.append(Outcome.NON_PROPAGATED)  # clean run
                continue
            outcomes.append(runner.run_experiment(faults).outcome)
        acceptable = sum(
            1 for o in outcomes
            if o.acceptable or o is Outcome.NON_PROPAGATED) / runs
        crashed = sum(1 for o in outcomes if o is Outcome.CRASHED) / runs
        sdc = sum(1 for o in outcomes if o is Outcome.SDC) / runs
        print(f"{vdd:5.2f}  {generator.expected_upsets:9.3f}  "
              f"{acceptable:10.0%}  {crashed:7.0%}  {sdc:5.0%}")
        previous_acceptable = acceptable

    print("\nLower Vdd -> exponentially more upsets -> correctness "
          "erodes; the application's\ninherent tolerance (Jacobi "
          "re-converges) sets how far voltage can drop.")


if __name__ == "__main__":
    main()
