#!/usr/bin/env python3
"""Thread-targeted fault injection in a multithreaded application.

GemFI identifies threads by their PCB address and lets
``fi_activate_inst(id)`` assign each one a numeric id, so faults can be
aimed at one worker of a parallel application while its siblings run
untouched (paper Sections III.A.2 and III.C).

This example runs a two-worker parallel reduction, then repeats it
injecting the same fault description first into worker 1, then into
worker 2, and shows that only the targeted worker's partial sum is
corrupted.

Run:  python examples/multithreaded.py
"""

import struct

from repro.compiler import compile_source
from repro.core import FaultInjector
from repro.sim import SimConfig, Simulator

PROGRAM = """
PARTIAL = iarray(2)

def worker(which):
    fi_activate_inst(which + 1)      # thread id = 1 or 2
    total = 0
    base = which * 500
    for i in range(500):
        total += (base + i) * 3
    PARTIAL[which] = total
    fi_activate_inst(which + 1)
    return 0

def main():
    t1 = spawn(worker, 0)
    t2 = spawn(worker, 1)
    while join(t1) == 0 or join(t2) == 0:
        sched_yield()
    print_str("sum ")
    print_int(PARTIAL[0] + PARTIAL[1])
    print_char(10)
    exit(0)
"""

FAULT = ("ExecutionStageInjectedFault Inst:600 Flip:9 Threadid:{tid} "
         "system.cpu0 occ:1")


def run(fault_text=""):
    injector = FaultInjector.from_text(fault_text)
    sim = Simulator(SimConfig(quantum=200), injector=injector)
    sim.load(compile_source(PROGRAM), "reduce")
    sim.run(max_instructions=5_000_000)
    main_proc = sim.system.processes[0]
    base = main_proc.symbol("g_PARTIAL")
    partials = struct.unpack("<2q", sim.memory.peek_bytes(base, 16))
    return sim, partials


def main():
    golden_sim, golden = run()
    print(f"golden partial sums : {golden}  "
          f"console: {golden_sim.console_text().strip()}")

    for tid in (1, 2):
        sim, partials = run(FAULT.format(tid=tid))
        marks = ["corrupted" if p != g else "intact"
                 for p, g in zip(partials, golden)]
        print(f"fault -> thread {tid} : partials {partials} "
              f"({marks[0]}/{marks[1]})  "
              f"console: {sim.console_text().strip() or '(crashed)'}")

    print("\nOnly the targeted thread's partial sum changes — the "
          "injector follows the PCB\nacross context switches and leaves "
          "sibling threads untouched.")


if __name__ == "__main__":
    main()
