"""KIPS regression gate over two ``BENCH_perf.json`` files.

Usage (the CI ``perf`` job)::

    python benchmarks/perf/check_regression.py \
        --baseline /tmp/BENCH_perf.baseline.json \
        --current BENCH_perf.json --tolerance 0.25

Per case present in BOTH files, fails (exit 1) when the current
``kips_mean`` fell more than ``--tolerance`` below the baseline.  Cases
present on only one side are reported but never fail the gate, so a
partial CI run (``-k "atomic or o3"``) gates against the matching
subset of the committed 8-case baseline.  Improvements are reported,
not gated — ratcheting the baseline up is a deliberate commit.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from bench_schema import load_bench  # noqa: E402


def check(baseline: dict, current: dict,
          tolerance: float) -> tuple[list[str], list[str]]:
    """Returns (report lines, regression lines)."""
    lines: list[str] = []
    regressions: list[str] = []
    base_cases = baseline.get("cases", {})
    cur_cases = current.get("cases", {})
    shared = sorted(set(base_cases) & set(cur_cases))
    for key in sorted(set(base_cases) | set(cur_cases)):
        if key not in shared:
            side = "baseline" if key in base_cases else "current"
            lines.append(f"~ {key}: only in {side}, not gated")
            continue
        base = float(base_cases[key].get("kips_mean", 0.0))
        cur = float(cur_cases[key].get("kips_mean", 0.0))
        if base <= 0:
            lines.append(f"~ {key}: baseline kips_mean {base}, "
                         f"not gated")
            continue
        delta = cur / base - 1.0
        stdev = float(cur_cases[key].get("kips_stdev", 0.0))
        noise = f" (stdev {stdev:.1f})" if stdev else ""
        if delta < -tolerance:
            regressions.append(
                f"FAIL {key}: {base:.1f} -> {cur:.1f} KIPS "
                f"({delta:+.1%}, tolerance -{tolerance:.0%}){noise}")
        else:
            lines.append(f"ok   {key}: {base:.1f} -> {cur:.1f} KIPS "
                         f"({delta:+.1%}){noise}")
    if not shared:
        regressions.append(
            "FAIL no case is present in both baseline and current — "
            "nothing was gated")
    return lines, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on KIPS regression between two "
                    "BENCH_perf.json files")
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional KIPS drop "
                             "(default 0.25)")
    args = parser.parse_args(argv)
    baseline = load_bench(args.baseline)
    current = load_bench(args.current)
    lines, regressions = check(baseline, current, args.tolerance)
    for line in lines:
        print(line)
    for line in regressions:
        print(line)
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%}")
        return 1
    print(f"no KIPS regression beyond {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
