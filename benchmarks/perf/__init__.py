# Package marker: gives benchmarks/perf/conftest.py the module name
# "perf.conftest" so it cannot shadow the parent suite's conftest.py
# (both would otherwise import as a bare "conftest").
