"""Determinism harness for the perf suite (``benchmarks/perf/``).

Everything that could make two invocations measure *different work* is
pinned here, so the only run-to-run variation left is genuine host
noise — which the suite then **measures** (stddev across
:data:`REPEATS` repeats, reported per case in ``BENCH_perf.json``)
instead of silently folding into the CI regression gate:

* ``PERF_SEED`` seeds ``random`` before every test (autouse fixture) —
  nothing in the measured path may consume unseeded entropy;
* :data:`REPEATS` fixes the repeat count at 3 (not environment-tunable:
  a gate comparing a 3-repeat baseline against a 20-repeat run would be
  comparing different estimators);
* the simulated instruction budgets live in ``perf_common.py`` as
  constants, so every case simulates the exact same instruction stream
  (asserted: committed instructions and ticks must be identical across
  repeats).

CI additionally exports ``PYTHONHASHSEED=0`` so dict/set iteration
cannot reorder work between runs.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

# bench_schema lives one directory up; tests import it directly.  The
# pins themselves (PERF_SEED, REPEATS) live in perf_common.py — a
# uniquely-named module, so imports stay unambiguous next to the
# parent suite's own conftest.py.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_common import PERF_SEED  # noqa: E402


@pytest.fixture(autouse=True)
def _pin_rng():
    """Reseed the global RNG before every perf test."""
    random.seed(PERF_SEED)
    yield
