"""The pinned-seed perf suite: the repo's continuous perf trajectory.

Measures sim-rate (KIPS) and host-time attribution for every
``<workload>/<model>`` case and writes ``BENCH_perf.json`` at the repo
root (schema ``gemfi-bench-v1``).  The committed copy of that file is
the baseline the CI ``perf`` job gates against (>25% KIPS regression
fails the build; see ``check_regression.py``).

Cases are parametrized by CPU model so CI can run a host-noise-friendly
subset (``-k "atomic or o3"``); the session-scoped collector writes
whichever cases actually ran, and the regression gate compares the
intersection with the baseline.
"""

from __future__ import annotations

import pytest

from perf_common import MODELS, REPEATS, SCALE, WORKLOADS, measure_case

COVERAGE_FLOOR = 0.90   # acceptance: buckets sum to >= 90% of wall

_CASES: dict[str, dict] = {}


@pytest.fixture(scope="session", autouse=True)
def _write_bench():
    """Write BENCH_perf.json from every case measured this session."""
    yield
    if not _CASES:
        return
    from bench_schema import write_bench
    kips = [case["kips_mean"] for case in _CASES.values()]
    coverage = [case["coverage"] for case in _CASES.values()]
    path = write_bench(
        "perf", scale=SCALE, repeats=REPEATS, cases=dict(_CASES),
        summary={
            "kips_min": min(kips),
            "kips_max": max(kips),
            "coverage_min": min(coverage),
            "models": sorted({key.split("/", 1)[1] for key in _CASES}),
            "workloads": sorted({key.split("/", 1)[0]
                                 for key in _CASES}),
        })
    print(f"\n# wrote {path}")


@pytest.mark.parametrize("model", MODELS)
def test_perf_model(model):
    """Measure both workloads on one CPU model; assert the profiler's
    attribution covers >= 90% of the measured wall time."""
    for workload in WORKLOADS:
        case = measure_case(workload, model, REPEATS)
        assert case["coverage"] >= COVERAGE_FLOOR, \
            f"{workload}/{model}: attribution covers only " \
            f"{case['coverage']:.1%} of wall time"
        assert case["kips_mean"] > 0
        _CASES[f"{workload}/{model}"] = case
