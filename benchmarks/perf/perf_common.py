"""Measurement helpers for the perf suite.

One *case* is ``<workload>/<model>``.  Per case the suite takes:

* ``REPEATS`` **unprofiled** timed runs over a fixed instruction budget
  — these give the true sim-rate (KIPS mean + stddev, the CI-gated
  number; scoped timers would distort it);
* one **profiled** run over a smaller budget — this gives the
  per-component host-time attribution shares and the bucket-coverage
  figure (the acceptance bar: buckets sum to >= 90% of wall time).

The two example workloads deliberately stress different subsystems: pi
is FP/ALU-bound, dct is memory/loop-bound.
"""

from __future__ import annotations

import time

from repro.compiler import compile_source
from repro.core import FaultInjector
from repro.sim import SimConfig, Simulator
from repro.telemetry.profiler import Profiler, sim_rates
from repro.workloads import build

MODELS = ("atomic", "timing", "inorder", "o3")
WORKLOADS = ("pi", "dct")
SCALE = "tiny"
# Determinism pins (see conftest.py): the RNG seed planted before every
# test and the fixed repeat count whose spread the suite reports.
PERF_SEED = 0x5EED
REPEATS = 3
# Fixed simulated-instruction budgets: every repeat of a case executes
# the identical instruction stream (asserted in test_perf.py).
TIMED_INSTRUCTIONS = 60_000
PROFILED_INSTRUCTIONS = 20_000

_ASM_CACHE: dict[str, str] = {}


def workload_asm(name: str) -> str:
    if name not in _ASM_CACHE:
        _ASM_CACHE[name] = compile_source(build(name, SCALE).source)
    return _ASM_CACHE[name]


def _fresh_sim(workload: str, model: str) -> Simulator:
    sim = Simulator(SimConfig(cpu_model=model),
                    injector=FaultInjector())
    sim.load(workload_asm(workload), workload)
    return sim


def timed_run(workload: str, model: str,
              budget: int = TIMED_INSTRUCTIONS
              ) -> tuple[float, int, int]:
    """One unprofiled run; returns (wall, instructions, ticks)."""
    sim = _fresh_sim(workload, model)
    start = time.perf_counter()
    result = sim.run(max_instructions=budget)
    wall = time.perf_counter() - start
    return wall, result.instructions, result.ticks


def profiled_run(workload: str, model: str,
                 budget: int = PROFILED_INSTRUCTIONS) -> dict:
    """One profiled run; returns attribution shares + coverage."""
    sim = _fresh_sim(workload, model)
    profiler = Profiler().install(sim)
    result = sim.run(max_instructions=budget)
    wall = profiler.wall_seconds
    attribution = {
        bucket: (seconds / wall if wall > 0 else 0.0)
        for bucket, seconds in sorted(profiler.attribution().items())}
    coverage = profiler.coverage()
    profiler.uninstall()
    return {"instructions": result.instructions,
            "wall_seconds": wall,
            "attribution": attribution,
            "coverage": coverage}


def measure_case(workload: str, model: str, repeats: int) -> dict:
    """The full BENCH_perf.json record for one case."""
    timed_run(workload, model)  # warm allocator / caches
    walls: list[float] = []
    instructions = ticks = None
    for _ in range(repeats):
        wall, ran_instructions, ran_ticks = timed_run(workload, model)
        if instructions is None:
            instructions, ticks = ran_instructions, ran_ticks
        else:
            # Pinned seeds + fixed budgets => identical work per repeat;
            # anything else means the measurement itself is broken.
            assert (instructions, ticks) == (ran_instructions,
                                             ran_ticks), \
                f"{workload}/{model}: nondeterministic run " \
                f"({instructions},{ticks}) != " \
                f"({ran_instructions},{ran_ticks})"
        walls.append(wall)
    from bench_schema import mean_stdev
    wall_mean, wall_stdev = mean_stdev(walls)
    kips_values = [instructions / wall / 1e3 for wall in walls]
    kips_mean, kips_stdev = mean_stdev(kips_values)
    rates = sim_rates(instructions, ticks, wall_mean)
    profile = profiled_run(workload, model)
    return {
        "instructions": instructions,
        "ticks": ticks,
        "wall_seconds_runs": walls,
        "wall_seconds_mean": wall_mean,
        "wall_seconds_stdev": wall_stdev,
        "kips_runs": kips_values,
        "kips_mean": kips_mean,
        "kips_stdev": kips_stdev,
        "ticks_per_second": rates["ticks_per_second"],
        "host_seconds_per_instruction":
            rates["host_seconds_per_instruction"],
        "attribution": profile["attribution"],
        "coverage": profile["coverage"],
    }
