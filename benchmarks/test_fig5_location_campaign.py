"""Fig. 5 — application behaviour when fault-injecting different
architectural components.

One SEU campaign per application, stratified by fault Location (integer
registers, FP registers, PC, fetch, decode, execute, memory
transactions).  The paper's qualitative findings checked here:

* highest resiliency for FP-register faults (small live subset, data
  only); Deblocking — no FP code — shows 100% strict correctness;
* integer-register faults crash more (SP/GP/RA/iterators live long);
* PC faults are almost always fatal;
* load/store-value faults are highly resilient (78% correct-ish in the
  paper);
* decode faults mostly lead to SDC or crash, rarely to silent masking.
"""

from __future__ import annotations

from repro.campaign import (
    Outcome,
    SEUGenerator,
    by_location,
    render_location_table,
    summary,
)
from repro.core import LocationKind

from conftest import publish, runner_for, runs_setting

RUNS_PER_LOCATION = runs_setting(10)

LOCATIONS = (LocationKind.INT_REG, LocationKind.FP_REG, LocationKind.PC,
             LocationKind.FETCH, LocationKind.DECODE,
             LocationKind.EXECUTE, LocationKind.MEM)

WORKLOADS = ("dct", "jacobi", "pi", "knapsack", "deblocking", "canneal")


def _campaign(name: str):
    runner = runner_for(name)
    generator = SEUGenerator(runner.golden.profile, seed=hash(name) & 0xFFFF)
    faults = []
    for location in LOCATIONS:
        faults.extend(generator.batch(RUNS_PER_LOCATION,
                                      location=location))
    return runner.run_campaign(faults)


def _fraction(dist, *outcomes) -> float:
    return sum(dist.fraction(o) for o in outcomes)


def test_fig5_outcome_by_location(benchmark):
    results = benchmark.pedantic(
        lambda: {name: _campaign(name) for name in WORKLOADS},
        rounds=1, iterations=1)

    sections = []
    for name, campaign in results.items():
        sections.append(render_location_table(
            campaign, title=f"--- {name} (n={len(campaign)}) ---"))
    text = ("Fig. 5 — outcome distribution per fault location "
            f"({RUNS_PER_LOCATION} SEU/location/app; paper used ~2500 "
            "total per app):\n\n" + "\n\n".join(sections))

    survivors = (Outcome.NON_PROPAGATED, Outcome.STRICTLY_CORRECT,
                 Outcome.CORRECT)

    # -- paper shape assertions, aggregated across all apps ---------------
    merged = [r for campaign in results.values() for r in campaign]
    groups = by_location(merged)

    fp_survive = _fraction(groups[LocationKind.FP_REG], *survivors)
    int_survive = _fraction(groups[LocationKind.INT_REG], *survivors)
    assert fp_survive >= int_survive, \
        "FP-register faults must be at least as survivable as integer"

    pc_crash = groups[LocationKind.PC].fraction(Outcome.CRASHED)
    assert pc_crash >= 0.6, \
        f"PC faults should be almost always fatal, got {pc_crash:.0%}"
    assert pc_crash >= max(
        groups[loc].fraction(Outcome.CRASHED)
        for loc in LOCATIONS if loc is not LocationKind.PC) - 1e-9, \
        "PC must be the most crash-prone location"

    mem_survive = _fraction(groups[LocationKind.MEM], *survivors)
    assert mem_survive >= 0.5, \
        f"load/store-value faults are resilient in the paper (78%), " \
        f"got {mem_survive:.0%}"

    # Deblocking has no FP instructions: FP-register faults are 100%
    # strictly masked (paper: "demonstrating 100% strict correctness").
    deblock = by_location(results["deblocking"])
    deblock_fp = _fraction(deblock[LocationKind.FP_REG],
                           Outcome.NON_PROPAGATED,
                           Outcome.STRICTLY_CORRECT)
    assert deblock_fp == 1.0, \
        f"deblocking FP-reg faults must never matter, got {deblock_fp:.0%}"

    # Every application sees at least some crashes overall.
    for name, campaign in results.items():
        total = summary(campaign)
        assert total.fraction(Outcome.CRASHED) > 0.0 or \
            name == "deblocking"

    text += (
        "\n\nPaper-shape checks (aggregate):\n"
        f"  FP-reg survivable {fp_survive:.0%} >= int-reg "
        f"{int_survive:.0%}  [paper: highest resiliency for FP regs]\n"
        f"  PC crash rate {pc_crash:.0%} — most fatal location  "
        "[paper: almost always fatal]\n"
        f"  mem-transaction survivable {mem_survive:.0%}  "
        "[paper: 78% correct]\n"
        f"  deblocking FP-reg masked {deblock_fp:.0%}  "
        "[paper: 100% strict correct]\n")
    publish("fig5_location_campaign", text)
