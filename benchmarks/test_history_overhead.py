"""Metrics-history recorder overhead guard (``BENCH_history.json``).

The service samples its whole metrics registry into SQLite every
``--history-interval`` seconds (default 5 s).  The guard here pins the
satellite claim that this costs **under 1% of wall time at the default
interval**: a benchmark run is too short to span even one default-rate
beat, so the recorder is driven at an *aggressive* interval (many
samples per run) against a realistically populated registry, the
per-sample cost is measured from paired runs, and the default-rate
duty cycle is projected as ``per_sample_cost / DEFAULT_INTERVAL``.
That projection — not the aggressive-rate figure — is what the <1%
ceiling gates; the aggressive rate gets its own looser sanity bound.
"""

from __future__ import annotations

import time

from repro.compiler import compile_source
from repro.service import ServiceObserver
from repro.sim import SimConfig, Simulator
from repro.telemetry import DEFAULT_INTERVAL, HistoryRecorder, HistoryStore
from repro.workloads import build

from bench_schema import mean_stdev, write_bench
from conftest import SCALE, publish, runs_setting

REPEATS = runs_setting(5)
WORKLOADS = ("pi", "dct")
#: recorder beat used during the measurement — 100x denser than the
#: 5 s default, so every run collects a meaningful sample count.
AGGRESSIVE_INTERVAL = 0.05
#: the satellite claim: sampling at the default interval costs <1%.
DEFAULT_RATE_CEILING = 0.01
#: sanity bound for the 100x-denser measurement rate itself; the
#: simulator is pure Python, so every sample the beat thread takes is
#: GIL time stolen from it — measured ~5-15% at this density.
AGGRESSIVE_CEILING = 0.35


def _populated_observer() -> ServiceObserver:
    """A registry shaped like a busy service's: per-route counters and
    latency histograms, per-tenant gauges — so each snapshot walks a
    realistic number of series."""
    observer = ServiceObserver(log_dir=None)
    routes = ("/v1/jobs", "/v1/jobs/{id}", "/v1/jobs/{id}/events",
              "/v1/healthz", "/v1/usage", "/v1/history", "/metrics",
              "/ui", "/ui/metrics", "/ui/jobs/{id}")
    for route in routes:
        for code in ("2xx", "4xx", "5xx"):
            observer.inc("http.requests", method="GET", route=route,
                         code=code)
        for sample in range(20):
            observer.observe("http.request_duration_seconds",
                             0.001 * (sample + 1), route=route)
    for index in range(8):
        tenant = f"tenant{index}"
        observer.set_gauge("queue.tenant_active", 3, tenant=tenant)
        observer.set_gauge("usage.kips", 120.0, tenant=tenant)
        observer.inc("queue.jobs_submitted", tenant=tenant)
    observer.set_gauge("queue.depth", 5)
    observer.set_gauge("store.objects", 400)
    observer.set_gauge("store.bytes", 1 << 20)
    return observer


def _timed_run(asm: str, recorder: HistoryRecorder | None = None
               ) -> float:
    sim = Simulator(SimConfig())
    sim.load(asm, "bench")
    if recorder is not None:
        recorder.start()
    start = time.perf_counter()
    result = sim.run(max_instructions=50_000_000)
    elapsed = time.perf_counter() - start
    if recorder is not None:
        recorder.stop()
    assert result.status == "completed"
    return elapsed


def test_history_recorder_overhead(benchmark, tmp_path):
    sources = {name: compile_source(build(name, SCALE).source)
               for name in WORKLOADS}
    observer = _populated_observer()
    store = HistoryStore(str(tmp_path / "history.db"), retention=256)

    def measure():
        rows = {}
        for name, asm in sources.items():
            _timed_run(asm)             # warm caches / allocator
            aggressive, projected = [], []
            for _ in range(REPEATS):
                plain = _timed_run(asm)
                recorder = HistoryRecorder(
                    observer.snapshot, store,
                    interval=AGGRESSIVE_INTERVAL)
                before = store.rounds
                sampled = _timed_run(asm, recorder=recorder)
                samples = store.rounds - before
                assert samples > 0, \
                    "run too short to measure sampling cost"
                aggressive.append(sampled / plain - 1.0)
                per_sample = max(0.0, sampled - plain) / samples
                projected.append(per_sample / DEFAULT_INTERVAL)
            rows[name] = {
                "aggressive": mean_stdev(aggressive),
                "projected": mean_stdev(projected),
                "samples_per_run": samples,
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    store.close()

    lines = [f"workload      @{AGGRESSIVE_INTERVAL}s overhead   "
             f"projected @{DEFAULT_INTERVAL:.0f}s"]
    for name, row in rows.items():
        agg_mean, agg_sd = row["aggressive"]
        proj_mean, proj_sd = row["projected"]
        lines.append(f"{name:12s}  {agg_mean:+9.1%}          "
                     f"{proj_mean:+9.3%}")
        assert agg_mean < AGGRESSIVE_CEILING, \
            f"{name}: {agg_mean:.1%} overhead at the aggressive " \
            f"measurement rate"
        assert proj_mean < DEFAULT_RATE_CEILING, \
            f"{name}: projected default-interval cost " \
            f"{proj_mean:.3%} breaks the <1% claim"

    text = ("Metrics-history recorder overhead — simulation runs with "
            f"a {AGGRESSIVE_INTERVAL}s recorder beat vs none "
            f"({REPEATS} paired runs), projected to the "
            f"{DEFAULT_INTERVAL:.0f}s default interval:\n\n"
            + "\n".join(lines)
            + f"\n\nceiling: <{DEFAULT_RATE_CEILING:.0%} of wall time "
              "at the default interval.\nEach sample snapshots the "
              "full registry under its lock and writes one\nSQLite "
              "transaction; the duty cycle at 5 s is the per-sample "
              "cost / 5 s.")
    publish("history_overhead", text)

    write_bench(
        "history", scale=SCALE, repeats=REPEATS,
        cases={name: {
            "aggressive_overhead_mean": row["aggressive"][0],
            "aggressive_overhead_stdev": row["aggressive"][1],
            "projected_default_rate_mean": row["projected"][0],
            "projected_default_rate_stdev": row["projected"][1],
            "samples_per_run": row["samples_per_run"],
        } for name, row in rows.items()},
        summary={"interval_measured": AGGRESSIVE_INTERVAL,
                 "interval_default": DEFAULT_INTERVAL,
                 "ceiling_default_rate": DEFAULT_RATE_CEILING,
                 "ceiling_aggressive": AGGRESSIVE_CEILING})
