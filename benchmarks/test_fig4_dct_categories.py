"""Fig. 4 — result categories for the DCT benchmark.

The paper shows four panels: (a) a strictly correct result, (b) a relaxed
correct result, (c) an SDC, and (d) the loss-of-quality difference
between (a) and (b).  This bench hunts (with a seeded generator) for one
experiment of each category, reports the decoded-image PSNR of each, and
checks the ordering strict > correct > SDC in quality.
"""

from __future__ import annotations

from repro.campaign import Outcome, SEUGenerator
from repro.workloads import dct, extract_outputs
from repro.workloads.quality import psnr

from conftest import SCALE, publish, runner_for, runs_setting

MAX_ATTEMPTS = runs_setting(120)


def test_fig4_dct_result_categories(benchmark):
    runner = runner_for("dct")
    width = dct.SCALES[SCALE]["width"]
    height = dct.SCALES[SCALE]["height"]
    original = dct.input_image(width, height)
    generator = SEUGenerator(runner.golden.profile, seed=404)

    def hunt():
        found = {}
        for _ in range(MAX_ATTEMPTS):
            result = runner.run_experiment(generator.generate())
            if result.outcome in found:
                continue
            found[result.outcome] = result
            if {Outcome.STRICTLY_CORRECT, Outcome.CORRECT,
                    Outcome.SDC} <= set(found):
                break
        return found

    found = benchmark.pedantic(hunt, rounds=1, iterations=1)

    def quality_of(outcome) -> float:
        # Replay the experiment and decode its coefficients: PSNR of the
        # decoded image against the original input.
        result = found[outcome]
        sim = runner._fresh_simulator([result.fault])
        sim.run(max_instructions=sim.instructions
                + runner.golden.instructions * 4)
        outputs = extract_outputs(runner.spec, sim, sim.process(0))
        decoded = dct.decode(outputs.arrays["OUT"], width, height)
        return psnr(original, decoded)

    rows = ["category           found  decoded-PSNR (dB) vs input"]
    qualities = {}
    for outcome in (Outcome.STRICTLY_CORRECT, Outcome.CORRECT,
                    Outcome.SDC):
        if outcome in found:
            quality = quality_of(outcome)
            qualities[outcome] = quality
            rows.append(f"{outcome.value:18s} yes    {quality:8.2f}")
        else:
            rows.append(f"{outcome.value:18s} no     (not sampled in "
                        f"{MAX_ATTEMPTS} tries)")

    # Categories must exist and order by quality like the paper's Fig. 4.
    assert Outcome.STRICTLY_CORRECT in found, \
        "no strictly-correct experiment sampled"
    if Outcome.CORRECT in qualities:
        assert qualities[Outcome.CORRECT] > dct.PSNR_THRESHOLD_DB
        assert qualities[Outcome.STRICTLY_CORRECT] >= \
            qualities[Outcome.CORRECT]
    if Outcome.SDC in qualities:
        assert qualities[Outcome.SDC] <= dct.PSNR_THRESHOLD_DB

    publish("fig4_dct_categories",
            "Fig. 4 — DCT result categories (decoded-image PSNR):\n"
            f"acceptance threshold: {dct.PSNR_THRESHOLD_DB} dB "
            "(paper: lossy-compression PSNR 30-50 dB)\n\n"
            + "\n".join(rows)
            + "\n\nPaper shape: strict-correct image == golden; relaxed-"
              "correct above 30 dB;\nSDC visibly corrupted below "
              "threshold.  Reproduced: same ordering.")
