"""Ablation benches for the design choices called out in DESIGN.md.

1. **Decode cache** — memoised word->Decoded mapping.  Disabling it
   re-decodes every fetched word.
2. **Detailed-until-commit** (Section IV.B.1) — campaigns start in the
   O3 model and drop to AtomicSimple once the injected fault has
   committed; the ablation keeps O3 for the whole run.  Outcomes must be
   identical; only time differs.
3. **Checkpoint fast-forward granularity** — covered by Fig. 8; here we
   additionally check that a restored run is bit-identical to a straight
   run (no accuracy cost for the speedup).
"""

from __future__ import annotations

import time

from repro.campaign import SEUGenerator
from repro.compiler import compile_source
from repro.sim import SimConfig, Simulator
from repro.workloads import build

from conftest import SCALE, publish, runner_for, runs_setting

RUNS = runs_setting(8)


def _run_once(asm: str, decode_cache: bool) -> float:
    sim = Simulator(SimConfig(decode_cache=decode_cache))
    sim.load(asm, "bench")
    start = time.perf_counter()
    result = sim.run(max_instructions=50_000_000)
    assert result.status == "completed"
    return time.perf_counter() - start


def test_ablation_decode_cache(benchmark):
    asm = compile_source(build("pi", SCALE).source)

    def measure():
        _run_once(asm, True)
        with_cache = min(_run_once(asm, True) for _ in range(3))
        without_cache = min(_run_once(asm, False) for _ in range(3))
        return with_cache, without_cache

    with_cache, without_cache = benchmark.pedantic(measure, rounds=1,
                                                   iterations=1)
    slowdown = without_cache / with_cache
    assert slowdown > 1.0, \
        "decoding every word must not be faster than the decode cache"
    publish("ablation_decode_cache",
            "Ablation — decode cache:\n\n"
            f"with cache:    {with_cache:.3f}s\n"
            f"without cache: {without_cache:.3f}s\n"
            f"slowdown when disabled: {slowdown:.2f}x")


def test_ablation_o3_until_commit(benchmark):
    """Campaigns in O3-until-commit mode vs full-O3: same outcomes,
    less time (the paper's methodology exists for exactly this)."""
    switching = runner_for("pi", detailed_model="o3")
    from repro.campaign import CampaignRunner
    full_o3 = CampaignRunner(build("pi", SCALE),
                             config=SimConfig(cpu_model="o3"),
                             detailed_model=None)
    # Architecturally-timed locations only: FETCH/DECODE faults strike
    # the *speculative* stream, which legitimately depends on predictor
    # warm-up state and thus may hit different (possibly wrong-path)
    # instructions under different microarchitectural histories — the
    # squash-masking behaviour the paper calls out.
    from repro.core import LocationKind
    generator = SEUGenerator(
        switching.golden.profile, seed=999,
        locations=(LocationKind.INT_REG, LocationKind.FP_REG,
                   LocationKind.PC, LocationKind.EXECUTE,
                   LocationKind.MEM))
    faults = generator.batch(RUNS)

    def measure():
        t0 = time.perf_counter()
        switched = switching.run_campaign(faults)
        switched_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        full = full_o3.run_campaign(faults)
        full_time = time.perf_counter() - t0
        return switched, switched_time, full, full_time

    switched, switched_time, full, full_time = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    agree = sum(1 for a, b in zip(switched, full)
                if a.outcome == b.outcome)
    assert agree >= len(faults) - 1, \
        f"model switching changed outcomes: {agree}/{len(faults)} agree"
    publish("ablation_o3_until_commit",
            "Ablation — O3-until-commit vs full-O3 campaigns "
            f"({RUNS} experiments, pi):\n\n"
            f"O3 -> atomic after fault commit: {switched_time:.2f}s\n"
            f"full O3 for the whole run:       {full_time:.2f}s\n"
            f"speedup from switching: {full_time / switched_time:.2f}x\n"
            f"outcome agreement: {agree}/{len(faults)}")


def test_ablation_checkpoint_fidelity(benchmark):
    """Restoring from the campaign checkpoint is bit-identical to
    running straight through (Fig. 3's fast-forward has no accuracy
    cost)."""
    runner = runner_for("jacobi")

    def measure():
        straight = runner.golden.outputs
        from repro.sim.checkpoint import restore_checkpoint
        sim = restore_checkpoint(runner.golden.checkpoint, faults=[])
        sim.run(max_instructions=sim.instructions
                + runner.golden.instructions * 2)
        from repro.workloads import extract_outputs
        restored = extract_outputs(runner.spec, sim, sim.process(0))
        return straight, restored

    straight, restored = benchmark.pedantic(measure, rounds=1,
                                            iterations=1)
    assert restored == straight
    publish("ablation_checkpoint_fidelity",
            "Ablation — checkpoint fast-forward fidelity:\n\n"
            "outputs of a restored run == outputs of the straight "
            "golden run: True\n(bit-identical console and arrays)")


def test_ablation_pcb_tracking_vs_hash_lookup(benchmark):
    """Section III.C: 'Monitoring context switches allows GemFI to
    eliminate the overhead of checking the fault injection status of
    the executing thread in the hash table on each simulated clock
    tick.'  The ablation re-enables the per-instruction hash lookup."""
    import time as _time
    from repro.core import FaultInjector

    asm = compile_source(build("pi", SCALE).source)

    def timed(hash_lookup: bool) -> float:
        sim = Simulator(
            SimConfig(fi_hash_lookup_per_instruction=hash_lookup),
            injector=FaultInjector())
        sim.load(asm, "bench")
        start = _time.perf_counter()
        result = sim.run(max_instructions=50_000_000)
        assert result.status == "completed"
        return _time.perf_counter() - start

    def measure():
        timed(False)
        pointer = min(timed(False) for _ in range(3))
        hashed = min(timed(True) for _ in range(3))
        return pointer, hashed

    pointer, hashed = benchmark.pedantic(measure, rounds=1, iterations=1)
    slowdown = hashed / pointer
    assert slowdown > 1.0, \
        "per-instruction hash lookups must cost more than the pointer"
    publish("ablation_pcb_tracking",
            "Ablation — PCB-pointer tracking vs per-instruction hash "
            "lookup (Section III.C):\n\n"
            f"context-switch-maintained pointer: {pointer:.3f}s\n"
            f"hash lookup every instruction:     {hashed:.3f}s\n"
            f"slowdown of the naive design: {slowdown:.2f}x")
