"""Section IV.A — validation in the absence of faults.

"The execution of each application was simulated both with our tool and
the original Gem5 simulator ... For all benchmarks the results were
identical.  This indicates that GemFI does not corrupt the simulation
process."

Here: every workload runs once on the plain simulator (no injector — the
unmodified-gem5 configuration) and once with GemFI attached and activated
but with an empty fault list.  Application output AND the simulator
statistics dump must match bit-for-bit.
"""

from __future__ import annotations

from repro.compiler import compile_source
from repro.core import FaultInjector
from repro.sim import SimConfig, Simulator
from repro.workloads import build

from conftest import SCALE, publish


def _run(asm: str, name: str, with_fi: bool):
    injector = FaultInjector() if with_fi else None
    sim = Simulator(SimConfig(), injector=injector)
    sim.load(asm, name)
    result = sim.run(max_instructions=50_000_000)
    assert result.status == "completed"
    process = sim.process(0)
    assert process.state.value == "exited", process.crash_reason
    return sim.console_text(), sim.stats_dump()


def test_validation_no_faults(benchmark, all_workload_names):
    rows = ["workload      console_identical  stats_identical"]
    specs = {name: compile_source(build(name, SCALE).source)
             for name in all_workload_names}

    def campaign():
        outcomes = {}
        for name, asm in specs.items():
            plain_console, plain_stats = _run(asm, name, with_fi=False)
            gemfi_console, gemfi_stats = _run(asm, name, with_fi=True)
            outcomes[name] = (plain_console == gemfi_console,
                              plain_stats == gemfi_stats)
        return outcomes

    outcomes = benchmark.pedantic(campaign, rounds=1, iterations=1)
    for name, (console_ok, stats_ok) in outcomes.items():
        rows.append(f"{name:12s}  {str(console_ok):17s}  {stats_ok}")
        assert console_ok, f"{name}: GemFI corrupted application output"
        assert stats_ok, f"{name}: GemFI perturbed simulator statistics"
    publish("validation_nofault",
            "Validation in the absence of faults (paper Section IV.A):\n"
            "GemFI with an empty fault list vs unmodified simulator.\n\n"
            + "\n".join(rows)
            + "\n\nPaper: 'For all benchmarks the results were "
              "identical.'  Reproduced: identical for all workloads.")
